//! The crash-tolerance contract, end to end against the real binary:
//! `kill -9` the daemon mid-solve, restart it on the same checkpoint,
//! and the resumed solve must converge to the **bit-identical** result
//! (centrality vector and message/bit fingerprint) an uninterrupted run
//! produces.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rwbc::distributed::{SolvePhase, StepSolver};
use rwbc_serve::{Client, Response, SolverConfig};

const N: usize = 64;
const SEED: u64 = 13;

fn workload() -> SolverConfig {
    SolverConfig::new(N, SEED)
}

fn spawn_daemon(ckpt: &Path, trace: &Path, slow_ms: u64) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rwbc-serve"))
        .args([
            "run",
            "--addr",
            "127.0.0.1:0",
            "--n",
            &N.to_string(),
            "--seed",
            &SEED.to_string(),
            "--checkpoint",
            &ckpt.display().to_string(),
            "--checkpoint-every",
            "2",
            "--trace",
            &trace.display().to_string(),
            "--slow-ms",
            &slow_ms.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn rwbc-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("rwbc-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    (child, addr)
}

fn wait_until_ready(addr: &str) -> rwbc_serve::HealthReport {
    let client = Client::new(addr);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(Response::Health(h)) = client.health() {
            if h.ready {
                return h;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not become ready in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rwbc-crash-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn kill_nine_mid_solve_resumes_bit_identical() {
    let dir = temp_dir("resume");
    let ckpt = dir.join("solve.ckpt");
    let trace = dir.join("solve-trace.jsonl");

    // Ground truth: the uninterrupted solve, computed in-process.
    let config = workload();
    let graph = config.graph.build();
    let mut reference =
        StepSolver::new(&graph, config.distributed_config()).expect("reference solver");
    reference.run_to_completion().expect("reference solve");
    let expected_fingerprint = reference.fingerprint().expect("finished fingerprint");
    let expected = reference.into_result().expect("finished run");

    // Run 1: slow rounds so the kill lands mid-solve; checkpoint every
    // 2 rounds.
    let (mut child, _addr) = spawn_daemon(&ckpt, &trace, 25);
    std::thread::sleep(Duration::from_millis(900));
    child.kill().expect("SIGKILL the daemon");
    let status = child.wait().expect("reap");
    assert!(!status.success(), "the daemon must have died by signal");

    // The crash left a valid mid-solve image behind (rename is atomic).
    let image = std::fs::read(&ckpt).expect("checkpoint survives the crash");
    let restored =
        StepSolver::restore(&graph, config.distributed_config(), &image).expect("valid image");
    assert!(
        !matches!(restored.phase(), SolvePhase::Done),
        "kill must land mid-solve, not after completion (rounds={})",
        restored.rounds_completed()
    );
    let resume_round = restored.rounds_completed();
    assert!(resume_round > 0, "at least one periodic checkpoint landed");

    // Run 2: restart on the same image at full speed.
    let (mut child, addr) = spawn_daemon(&ckpt, &trace, 0);
    let health = wait_until_ready(&addr);
    assert!(
        health.slo.resumed,
        "the restarted daemon must report it resumed from a checkpoint"
    );

    // Every served value is bit-identical to the uninterrupted run.
    let client = Client::new(&addr).with_jitter_seed(17);
    for node in [0usize, 1, N / 2, N - 1] {
        match client.centrality(node, 5000).expect("served") {
            Response::Value { value, slo, .. } => {
                assert_eq!(
                    value.to_bits(),
                    expected.centrality.get(node).unwrap().to_bits(),
                    "node {node} centrality diverged after resume"
                );
                assert!(slo.resumed);
                assert!(!slo.degraded);
            }
            other => panic!("expected Value, got {other:?}"),
        }
    }

    // Drain: final checkpoint flushed, clean exit.
    match client.drain().expect("drain ack") {
        Response::AdminOk => {}
        other => panic!("expected AdminOk, got {other:?}"),
    }
    let status = child.wait().expect("reap");
    assert!(status.success(), "drained daemon must exit cleanly");

    // The final image carries the finished run; full equality covers the
    // centrality vector, both phase stats, and the degradation report —
    // and the message/bit fingerprint must match exactly.
    let image = std::fs::read(&ckpt).expect("final checkpoint");
    let finished =
        StepSolver::restore(&graph, config.distributed_config(), &image).expect("final image");
    assert!(finished.is_done());
    assert_eq!(
        finished.fingerprint().expect("finished fingerprint"),
        expected_fingerprint,
        "rounds/messages/bits fingerprint diverged after resume"
    );
    assert_eq!(*finished.result().expect("finished run"), expected);

    // The trace the resumed run wrote is intact (closed on drain) and
    // records the resume round.
    let trace_text = std::fs::read_to_string(&trace).expect("trace file");
    assert!(trace_text.contains("resumed-from-checkpoint"));
    assert!(trace_text.contains("serve-solve"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_free_daemon_still_serves_and_drains() {
    // Without --checkpoint the daemon must still solve, serve, and exit
    // cleanly on drain — crash tolerance is opt-in, not load-bearing.
    let dir = temp_dir("nockpt");
    let trace = dir.join("trace.jsonl");
    let mut child = Command::new(env!("CARGO_BIN_EXE_rwbc-serve"))
        .args([
            "run",
            "--addr",
            "127.0.0.1:0",
            "--n",
            &N.to_string(),
            "--seed",
            &SEED.to_string(),
            "--trace",
            &trace.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn rwbc-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner")
        .expect("readable");
    let addr = banner
        .strip_prefix("rwbc-serve listening on ")
        .expect("banner format")
        .to_string();

    let health = wait_until_ready(&addr);
    assert!(!health.slo.resumed);
    let client = Client::new(&addr);
    match client.centrality(0, 5000).expect("served") {
        Response::Value { node: 0, .. } => {}
        other => panic!("expected Value, got {other:?}"),
    }
    match client.drain().expect("drain ack") {
        Response::AdminOk => {}
        other => panic!("expected AdminOk, got {other:?}"),
    }
    assert!(child.wait().expect("reap").success());
    let _ = std::fs::remove_dir_all(&dir);
}
