//! Deadline, overload, and backoff behavior — the load-shedding
//! contract: under pressure the daemon answers typed
//! `Timeout`/`Overloaded` with bounded memory, and the client backs off
//! and gives up typed instead of spinning.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use rwbc_serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestEnvelope, Response,
};
use rwbc_serve::{Client, ClientError, Daemon, ServeConfig, SolverConfig};

/// A daemon whose solve never finishes during the test (slow rounds) —
/// every query path is exercised against a stable `Solving` state.
fn slow_daemon(queue_depth: usize, workers: usize, work_delay_ms: u64) -> Daemon {
    let mut solver = SolverConfig::new(64, 5);
    solver.slow_ms = 1000;
    let mut config = ServeConfig::new(solver);
    config.queue_depth = queue_depth;
    config.workers = workers;
    config.work_delay_ms = work_delay_ms;
    config.retry_after_ms = 7;
    Daemon::start(config).expect("bind loopback")
}

/// Raw exchange: one request frame, one response frame, no retries.
fn raw_request(addr: std::net::SocketAddr, env: &RequestEnvelope) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, &encode_request(env)).expect("send");
    let payload = read_frame(&mut stream).expect("receive");
    decode_response(&payload).expect("decode")
}

fn stats_request(deadline_ms: u32) -> RequestEnvelope {
    RequestEnvelope {
        deadline_ms,
        request: Request::Stats,
    }
}

#[test]
fn slow_worker_produces_typed_timeout() {
    // One worker that takes 400 ms per request; a 30 ms deadline must
    // come back as a typed Timeout, well before the worker finishes.
    let daemon = slow_daemon(8, 1, 400);
    let t0 = Instant::now();
    let response = raw_request(daemon.local_addr(), &stats_request(30));
    let elapsed = t0.elapsed();
    assert_eq!(response, Response::Timeout { deadline_ms: 30 });
    assert!(
        elapsed < Duration::from_millis(350),
        "timeout must fire at the deadline, not when the worker finishes ({elapsed:?})"
    );
    daemon.drain();
    daemon.wait();
}

#[test]
fn full_queue_sheds_with_typed_overloaded() {
    // Queue depth 1, one worker busy for 600 ms per request: the first
    // request occupies the worker, the second fills the queue, the
    // third must be shed immediately with the configured hint.
    let daemon = slow_daemon(1, 1, 600);
    let addr = daemon.local_addr();
    // Staggered, so the first is already *on* the worker (not in the
    // queue) before the second arrives to fill the queue slot.
    let mut busy = Vec::new();
    for _ in 0..2 {
        busy.push(std::thread::spawn(move || {
            raw_request(addr, &stats_request(2000))
        }));
        std::thread::sleep(Duration::from_millis(100));
    }
    let t0 = Instant::now();
    let response = raw_request(addr, &stats_request(2000));
    let elapsed = t0.elapsed();
    assert_eq!(response, Response::Overloaded { retry_after_ms: 7 });
    assert!(
        elapsed < Duration::from_millis(200),
        "shedding must be immediate, not queued ({elapsed:?})"
    );
    for handle in busy {
        handle.join().unwrap();
    }
    daemon.drain();
    daemon.wait();
}

#[test]
fn queries_before_the_solve_finishes_get_not_ready() {
    let daemon = slow_daemon(8, 2, 0);
    let response = raw_request(
        daemon.local_addr(),
        &RequestEnvelope {
            deadline_ms: 500,
            request: Request::Centrality { node: 0 },
        },
    );
    assert_eq!(response, Response::NotReady { retry_after_ms: 7 });
    daemon.drain();
    daemon.wait();
}

#[test]
fn client_backs_off_and_gives_up_typed() {
    // The solve never finishes, so every retry sees NotReady; the
    // client must walk the 4-8-16... backoff schedule and then give up
    // with the typed error instead of spinning forever.
    let daemon = slow_daemon(8, 2, 0);
    let client = Client::new(daemon.local_addr().to_string())
        .with_max_attempts(3)
        .with_jitter_seed(11);
    let t0 = Instant::now();
    match client.centrality(0, 200) {
        Err(ClientError::GaveUp { attempts: 3, last }) => {
            assert!(last.contains("NotReady"), "last attempt saw: {last}");
        }
        other => panic!("expected GaveUp, got {other:?}"),
    }
    // Two sleeps happen (after attempts 1 and 2): at least
    // base + doubled = 4 + 8 ms even before jitter and hints.
    assert!(
        t0.elapsed() >= Duration::from_millis(12),
        "backoff must actually wait"
    );
    daemon.drain();
    daemon.wait();
}

#[test]
fn draining_daemon_refuses_queries_typed() {
    let daemon = slow_daemon(8, 2, 0);
    let addr = daemon.local_addr();
    // Open the connection before the drain: admission stops, but
    // established connections get the typed refusal.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    daemon.drain();
    write_frame(&mut stream, &encode_request(&stats_request(100))).expect("send");
    let payload = read_frame(&mut stream).expect("receive");
    assert_eq!(decode_response(&payload).unwrap(), Response::Draining);
    daemon.wait();
}

#[test]
fn malformed_frames_get_typed_errors_not_disconnects() {
    let daemon = slow_daemon(8, 2, 0);
    let mut stream = TcpStream::connect(daemon.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A well-framed but undecodable payload: typed Error response, and
    // the connection stays usable for a correct follow-up.
    write_frame(&mut stream, &[0xFF, 0xEE, 0xDD]).expect("send garbage");
    let payload = read_frame(&mut stream).expect("receive");
    match decode_response(&payload).unwrap() {
        Response::Error { reason } => assert!(reason.contains("malformed")),
        other => panic!("expected Error, got {other:?}"),
    }
    write_frame(&mut stream, &encode_request(&stats_request(500))).expect("send");
    let payload = read_frame(&mut stream).expect("receive");
    assert!(matches!(
        decode_response(&payload).unwrap(),
        Response::Stats(_)
    ));
    daemon.drain();
    daemon.wait();
}

#[test]
fn served_results_carry_slo_flags_and_health_transitions() {
    // A fast solve: wait for readiness, then check flags and ranking.
    let solver = SolverConfig::new(48, 9);
    let mut config = ServeConfig::new(solver);
    config.retry_after_ms = 5;
    let daemon = Daemon::start(config).expect("bind loopback");
    let client = Client::new(daemon.local_addr().to_string())
        .with_max_attempts(40)
        .with_jitter_seed(3);
    // Retries ride NotReady until the solve lands.
    match client.centrality(0, 2000).expect("eventually served") {
        Response::Value { node: 0, slo, .. } => {
            assert!(!slo.degraded, "clean solve must not be flagged");
            assert!(!slo.resumed);
            assert_eq!(slo.walks_lost, 0);
        }
        other => panic!("expected Value, got {other:?}"),
    }
    match client.health().expect("health") {
        Response::Health(h) => {
            assert!(h.ready);
            assert_eq!(h.phase, 2, "done phase");
        }
        other => panic!("expected Health, got {other:?}"),
    }
    match client.top_k(5, 2000).expect("ranking") {
        Response::Ranking { top, .. } => {
            assert_eq!(top.len(), 5);
            // Highest first.
            for pair in top.windows(2) {
                assert!(pair[0].1 >= pair[1].1);
            }
        }
        other => panic!("expected Ranking, got {other:?}"),
    }
    // Out-of-range node: typed error, not a panic or a wrong answer.
    match client.centrality(10_000, 2000).expect("typed") {
        Response::Error { reason } => assert!(reason.contains("out of range")),
        other => panic!("expected Error, got {other:?}"),
    }
    daemon.drain();
    daemon.wait();
}
