//! Live telemetry over the wire — the observability contract: a
//! daemon under load answers `Request::Metrics` inline (never queued,
//! never shed), the request counters partition exactly, SLO burn rates
//! respond to deadline pressure, and a drain leaves a flight-recorder
//! dump on disk that is a valid JSONL trace.

use std::net::TcpStream;
use std::time::Duration;

use congest_sim::trace::jsonl::decode_trace;
use congest_sim::TraceEvent;
use rwbc_serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, MetricsReport, Request,
    RequestEnvelope, Response,
};
use rwbc_serve::{Client, Daemon, ServeConfig, SolverConfig};

/// A daemon whose solve never finishes during the test (slow rounds) —
/// load-shedding behavior stays stable while we poke at it.
fn slow_daemon(mut config_fn: impl FnMut(&mut ServeConfig)) -> Daemon {
    let mut solver = SolverConfig::new(64, 5);
    solver.slow_ms = 1000;
    let mut config = ServeConfig::new(solver);
    config.retry_after_ms = 5;
    config_fn(&mut config);
    Daemon::start(config).expect("bind loopback")
}

/// Raw exchange: one request frame, one response frame, no retries.
fn raw_request(addr: std::net::SocketAddr, request: Request, deadline_ms: u32) -> Response {
    let env = RequestEnvelope {
        deadline_ms,
        request,
    };
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, &encode_request(&env)).expect("send");
    let payload = read_frame(&mut stream).expect("receive");
    decode_response(&payload).expect("decode")
}

fn scrape(addr: std::net::SocketAddr) -> Box<MetricsReport> {
    let client = Client::new(addr.to_string());
    match client.metrics().expect("metrics scrape") {
        Response::Metrics(report) => report,
        other => panic!("expected Metrics, got {other:?}"),
    }
}

#[test]
fn counters_partition_exactly_under_mixed_load() {
    // Queue depth 1 and one worker busy 300 ms per request: a long-
    // deadline request is answered, a short-deadline one times out, and
    // with the worker pinned + queue full a third is shed.
    let daemon = slow_daemon(|c| {
        c.queue_depth = 1;
        c.workers = 1;
        c.work_delay_ms = 300;
    });
    let addr = daemon.local_addr();

    // Answered: generous deadline, nothing else in flight.
    let answered = raw_request(addr, Request::Stats, 5_000);
    assert!(matches!(answered, Response::Stats(_)), "{answered:?}");

    // Timed out: 30 ms deadline against a 300 ms worker.
    let timed_out = raw_request(addr, Request::Stats, 30);
    assert!(matches!(timed_out, Response::Timeout { .. }));

    // Shed: occupy the worker and the single queue slot, then one more.
    let mut busy = Vec::new();
    for _ in 0..2 {
        busy.push(std::thread::spawn(move || {
            raw_request(addr, Request::Stats, 3_000)
        }));
        std::thread::sleep(Duration::from_millis(80));
    }
    let mut shed_seen = false;
    for _ in 0..4 {
        if matches!(
            raw_request(addr, Request::Stats, 3_000),
            Response::Overloaded { .. }
        ) {
            shed_seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(shed_seen, "queue depth 1 with a pinned worker must shed");
    for handle in busy {
        let _ = handle.join().expect("busy thread");
    }

    // Let in-flight `finish` paths land before scraping.
    std::thread::sleep(Duration::from_millis(50));
    let report = scrape(addr);
    let snap = &report.snapshot;
    let total = snap.counter("serve_requests_total").unwrap_or(0);
    let answered = snap.counter("serve_requests_answered_total").unwrap_or(0);
    let timed_out = snap.counter("serve_requests_timed_out_total").unwrap_or(0);
    let shed = snap.counter("serve_requests_shed_total").unwrap_or(0);
    assert!(answered >= 1, "at least one answered request");
    assert!(timed_out >= 1, "at least one timed-out request");
    assert!(shed >= 1, "at least one shed request");
    assert_eq!(
        total,
        answered + timed_out + shed,
        "every admitted request finishes as exactly one of answered/timed_out/shed"
    );
    // Every finished request recorded one latency sample.
    let latency = snap
        .histogram("serve_request_latency_us")
        .expect("latency histogram registered");
    assert_eq!(latency.samples(), total);

    // Timeouts and sheds are SLO errors: the fast burn window reacts.
    assert!(
        report.burn_fast > 0.0,
        "deadline pressure must show up in the fast burn rate, got {}",
        report.burn_fast
    );
    assert!(report.uptime_ms > 0);

    daemon.drain();
    daemon.wait();
}

#[test]
fn metrics_scrape_is_never_shed() {
    // Worker pinned, queue full: Stats sheds, but Metrics (like Health)
    // is answered inline — an overloaded daemon is exactly when the
    // scraper must still see it.
    let daemon = slow_daemon(|c| {
        c.queue_depth = 1;
        c.workers = 1;
        c.work_delay_ms = 500;
    });
    let addr = daemon.local_addr();
    let mut busy = Vec::new();
    for _ in 0..2 {
        busy.push(std::thread::spawn(move || {
            raw_request(addr, Request::Stats, 3_000)
        }));
        std::thread::sleep(Duration::from_millis(80));
    }
    for _ in 0..3 {
        let report = scrape(addr);
        assert!(report.uptime_ms > 0);
    }
    for handle in busy {
        let _ = handle.join().expect("busy thread");
    }
    daemon.drain();
    daemon.wait();
}

#[test]
fn drain_dumps_a_valid_flight_trace() {
    let dir = std::env::temp_dir().join(format!("rwbc-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let flight_path = dir.join("flight.jsonl");
    let daemon = slow_daemon(|c| {
        c.flight_path = Some(flight_path.clone());
        c.flight_dump_every_ms = 100;
    });
    let addr = daemon.local_addr();
    let stats = raw_request(addr, Request::Stats, 2_000);
    assert!(matches!(stats, Response::Stats(_)));
    daemon.drain();
    daemon.wait();

    let text = std::fs::read_to_string(&flight_path).expect("flight dump written on drain");
    let events = decode_trace(&text).expect("dump is a valid JSONL trace");
    assert!(
        matches!(events.first(), Some(TraceEvent::Meta { .. })),
        "dump opens with a Meta header"
    );
    // The drain itself was recorded by the serve subsystem.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::App { key, .. } if key == "drain")),
        "serve ring records the drain request"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
