//! The wire protocol: length-prefixed, CRC-framed request/response
//! messages encoded with the `congest_sim::wire` bit codecs.
//!
//! A frame on the socket is `u32 payload length (BE) + u32 CRC-32 (BE) +
//! payload`; the payload is a [`WireState`]-encoded [`RequestEnvelope`]
//! or [`Response`]. Every decode surface returns a typed
//! [`ProtocolError`] on malformed input — truncation, an oversized
//! length prefix, a checksum mismatch, or an unknown tag never panics
//! and never silently yields garbage.

use std::fmt;
use std::io::{Read, Write};

use congest_sim::wire::{crc32, BitReader, BitWriter, WireState};
use congest_sim::MetricsSnapshot;

/// Protocol version, carried in every request envelope so mismatched
/// peers fail typed instead of mis-decoding. Version 2 added the
/// [`Request::Metrics`] / [`Response::Metrics`] pair and the uptime /
/// checkpoint-age / burn-rate fields on [`HealthReport`] and
/// [`ServeStats`].
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a frame payload. Anything larger is rejected before a
/// single byte of it is buffered — the admission-control guarantee that a
/// malicious or broken peer cannot make the daemon allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Typed protocol failure.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The advertised payload length.
        len: usize,
    },
    /// The payload did not match its CRC-32.
    ChecksumMismatch,
    /// The payload decoded to nothing sensible.
    Malformed {
        /// Which structure failed to decode.
        what: &'static str,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
            ProtocolError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            ProtocolError::ChecksumMismatch => write!(f, "frame failed its CRC-32"),
            ProtocolError::Malformed { what } => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

/// A client request plus its per-request deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEnvelope {
    /// Milliseconds the client is willing to wait once the request is
    /// admitted; the daemon answers [`Response::Timeout`] past this.
    pub deadline_ms: u32,
    /// The request proper.
    pub request: Request,
}

/// What a client can ask the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// One node's centrality value.
    Centrality {
        /// The node queried.
        node: usize,
    },
    /// The `k` highest-centrality nodes with their values.
    TopK {
        /// How many nodes to return.
        k: usize,
    },
    /// Daemon service counters.
    Stats,
    /// Health / readiness probe (never shed, never queued).
    Health,
    /// Admin: stop accepting queries, flush a final checkpoint, close
    /// the trace, and exit cleanly.
    Drain,
    /// Admin: like drain, without waiting for queued work.
    Shutdown,
    /// Full live-metrics snapshot (never shed, never queued — like
    /// [`Request::Health`], scrapers must see an overloaded daemon).
    Metrics,
}

impl Request {
    fn tag(&self) -> u8 {
        match self {
            Request::Centrality { .. } => 0,
            Request::TopK { .. } => 1,
            Request::Stats => 2,
            Request::Health => 3,
            Request::Drain => 4,
            Request::Shutdown => 5,
            Request::Metrics => 6,
        }
    }
}

/// Staleness / coverage flags attached to every served result, derived
/// from the solve's `DegradationReport` — a degraded solve is served
/// with these set, never silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloFlags {
    /// The solve lost something (`!DegradationReport::is_clean()`).
    pub degraded: bool,
    /// The solve resumed from a checkpoint after a crash.
    pub resumed: bool,
    /// Walk tokens unaccounted for.
    pub walks_lost: u64,
    /// Phase-2 count cells that never arrived.
    pub count_cells_missing: u64,
}

/// Daemon service counters, served on [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Queries answered with a result.
    pub requests_served: u64,
    /// Queries shed with [`Response::Overloaded`].
    pub requests_overloaded: u64,
    /// Queries that missed their deadline.
    pub requests_timed_out: u64,
    /// CONGEST rounds the background solve has completed.
    pub solve_rounds: u64,
    /// Checkpoints written so far.
    pub checkpoints_written: u64,
    /// Total microseconds spent writing checkpoints.
    pub checkpoint_overhead_us: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Milliseconds since the last checkpoint landed, on the daemon's
    /// uptime clock (the same one deadlines use); `None` before the
    /// first checkpoint or with checkpointing disabled.
    pub last_checkpoint_age_ms: Option<u64>,
}

/// Daemon lifecycle state, served in [`HealthReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonState {
    /// Building or loading the graph.
    Loading,
    /// The background solve is running; queries get
    /// [`Response::NotReady`].
    Solving,
    /// A result is available and being served.
    Serving,
    /// Draining: admin-initiated shutdown in progress.
    Draining,
}

impl DaemonState {
    fn tag(self) -> u8 {
        match self {
            DaemonState::Loading => 0,
            DaemonState::Solving => 1,
            DaemonState::Serving => 2,
            DaemonState::Draining => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<DaemonState> {
        Some(match tag {
            0 => DaemonState::Loading,
            1 => DaemonState::Solving,
            2 => DaemonState::Serving,
            3 => DaemonState::Draining,
            _ => return None,
        })
    }

    /// Lower-case display name (`loading`, `solving`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            DaemonState::Loading => "loading",
            DaemonState::Solving => "solving",
            DaemonState::Serving => "serving",
            DaemonState::Draining => "draining",
        }
    }
}

/// Health / readiness report, served on [`Request::Health`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Lifecycle state.
    pub state: DaemonState,
    /// `true` once queries can be answered from a finished solve.
    pub ready: bool,
    /// Pipeline phase tag (0 walk, 1 count, 2 done, 3 failed).
    pub phase: u8,
    /// CONGEST rounds completed by the solve.
    pub rounds_completed: u64,
    /// Degradation-derived flags (meaningful once `ready`).
    pub slo: SloFlags,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Milliseconds since the last checkpoint landed; `None` before the
    /// first one or with checkpointing disabled.
    pub last_checkpoint_age_ms: Option<u64>,
    /// Fast-window (1 min) SLO burn rate — 1.0 burns the error budget
    /// exactly at the availability target, > 1.0 burns it faster.
    pub burn_fast: f64,
    /// Slow-window (10 min) SLO burn rate.
    pub burn_slow: f64,
}

/// Full live-metrics report, served on [`Request::Metrics`].
///
/// The structured [`MetricsSnapshot`] is the single source of truth; the
/// client renders it as versioned JSON
/// ([`MetricsSnapshot::to_json`]) or Prometheus text exposition
/// ([`MetricsSnapshot::to_prometheus`]) locally, so the wire carries one
/// canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Every counter, gauge, and histogram in the daemon's registry.
    pub snapshot: MetricsSnapshot,
    /// Milliseconds since the daemon started (its deadline clock).
    pub uptime_ms: u64,
    /// Milliseconds since the last checkpoint landed, on that same
    /// clock; `None` before the first one or with checkpointing off.
    pub last_checkpoint_age_ms: Option<u64>,
    /// Fast-window (1 min) SLO burn rate.
    pub burn_fast: f64,
    /// Slow-window (10 min) SLO burn rate.
    pub burn_slow: f64,
}

impl MetricsReport {
    /// Versioned JSON rendering: the report-level fields plus the
    /// registry snapshot (with its own `schema_version`) under
    /// `"metrics"`.
    pub fn to_json(&self) -> congest_sim::trace::json::Json {
        use congest_sim::trace::json::Json;
        Json::Obj(vec![
            ("uptime_ms".to_string(), Json::Int(self.uptime_ms as i64)),
            (
                "last_checkpoint_age_ms".to_string(),
                self.last_checkpoint_age_ms
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            ("burn_fast".to_string(), Json::Float(self.burn_fast)),
            ("burn_slow".to_string(), Json::Float(self.burn_slow)),
            ("metrics".to_string(), self.snapshot.to_json()),
        ])
    }

    /// Prometheus text exposition: the snapshot's rendering plus the
    /// report-level values as gauges, all under the `rwbc_` prefix.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.snapshot.to_prometheus();
        let mut gauge = |name: &str, value: String| {
            let _ = writeln!(out, "# TYPE rwbc_{name} gauge");
            let _ = writeln!(out, "rwbc_{name} {value}");
        };
        gauge("uptime_ms", self.uptime_ms.to_string());
        if let Some(age) = self.last_checkpoint_age_ms {
            gauge("checkpoint_age_ms", age.to_string());
        }
        gauge("slo_burn_rate_fast", format!("{}", self.burn_fast));
        gauge("slo_burn_rate_slow", format!("{}", self.burn_slow));
        out
    }
}

/// What the daemon answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One node's centrality.
    Value {
        /// The node queried.
        node: usize,
        /// Its estimated centrality.
        value: f64,
        /// Staleness / coverage flags.
        slo: SloFlags,
    },
    /// Top-k ranking, highest first.
    Ranking {
        /// `(node, value)` pairs.
        top: Vec<(usize, f64)>,
        /// Staleness / coverage flags.
        slo: SloFlags,
    },
    /// Service counters.
    Stats(ServeStats),
    /// Health / readiness.
    Health(HealthReport),
    /// Full live-metrics snapshot (boxed: much larger than the others).
    Metrics(Box<MetricsReport>),
    /// Admin command acknowledged.
    AdminOk,
    /// The solve has not finished yet; retry after the hint.
    NotReady {
        /// Suggested client back-off floor, milliseconds.
        retry_after_ms: u32,
    },
    /// Load shed: the admission queue is full; retry after the hint.
    Overloaded {
        /// Suggested client back-off floor, milliseconds.
        retry_after_ms: u32,
    },
    /// The request missed its deadline.
    Timeout {
        /// The deadline that was missed, milliseconds.
        deadline_ms: u32,
    },
    /// The daemon is draining and no longer answers queries.
    Draining,
    /// Typed failure (bad node id, malformed request, ...).
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

impl Response {
    fn tag(&self) -> u8 {
        match self {
            Response::Value { .. } => 0,
            Response::Ranking { .. } => 1,
            Response::Stats(_) => 2,
            Response::Health(_) => 3,
            Response::AdminOk => 4,
            Response::NotReady { .. } => 5,
            Response::Overloaded { .. } => 6,
            Response::Timeout { .. } => 7,
            Response::Draining => 8,
            Response::Error { .. } => 9,
            Response::Metrics(_) => 10,
        }
    }
}

fn encode_str(s: &str, w: &mut BitWriter) {
    s.as_bytes().to_vec().encode_state(w);
}

fn decode_str(r: &mut BitReader<'_>) -> Option<String> {
    String::from_utf8(Vec::<u8>::decode_state(r)?).ok()
}

impl WireState for SloFlags {
    fn encode_state(&self, w: &mut BitWriter) {
        self.degraded.encode_state(w);
        self.resumed.encode_state(w);
        self.walks_lost.encode_state(w);
        self.count_cells_missing.encode_state(w);
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<SloFlags> {
        Some(SloFlags {
            degraded: bool::decode_state(r)?,
            resumed: bool::decode_state(r)?,
            walks_lost: u64::decode_state(r)?,
            count_cells_missing: u64::decode_state(r)?,
        })
    }
}

impl WireState for ServeStats {
    fn encode_state(&self, w: &mut BitWriter) {
        self.requests_served.encode_state(w);
        self.requests_overloaded.encode_state(w);
        self.requests_timed_out.encode_state(w);
        self.solve_rounds.encode_state(w);
        self.checkpoints_written.encode_state(w);
        self.checkpoint_overhead_us.encode_state(w);
        self.uptime_ms.encode_state(w);
        self.last_checkpoint_age_ms.encode_state(w);
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<ServeStats> {
        Some(ServeStats {
            requests_served: u64::decode_state(r)?,
            requests_overloaded: u64::decode_state(r)?,
            requests_timed_out: u64::decode_state(r)?,
            solve_rounds: u64::decode_state(r)?,
            checkpoints_written: u64::decode_state(r)?,
            checkpoint_overhead_us: u64::decode_state(r)?,
            uptime_ms: u64::decode_state(r)?,
            last_checkpoint_age_ms: Option::decode_state(r)?,
        })
    }
}

impl WireState for HealthReport {
    fn encode_state(&self, w: &mut BitWriter) {
        self.state.tag().encode_state(w);
        self.ready.encode_state(w);
        self.phase.encode_state(w);
        self.rounds_completed.encode_state(w);
        self.slo.encode_state(w);
        self.uptime_ms.encode_state(w);
        self.last_checkpoint_age_ms.encode_state(w);
        self.burn_fast.encode_state(w);
        self.burn_slow.encode_state(w);
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<HealthReport> {
        Some(HealthReport {
            state: DaemonState::from_tag(u8::decode_state(r)?)?,
            ready: bool::decode_state(r)?,
            phase: u8::decode_state(r)?,
            rounds_completed: u64::decode_state(r)?,
            slo: SloFlags::decode_state(r)?,
            uptime_ms: u64::decode_state(r)?,
            last_checkpoint_age_ms: Option::decode_state(r)?,
            burn_fast: f64::decode_state(r)?,
            burn_slow: f64::decode_state(r)?,
        })
    }
}

impl WireState for MetricsReport {
    fn encode_state(&self, w: &mut BitWriter) {
        self.snapshot.encode_state(w);
        self.uptime_ms.encode_state(w);
        self.last_checkpoint_age_ms.encode_state(w);
        self.burn_fast.encode_state(w);
        self.burn_slow.encode_state(w);
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<MetricsReport> {
        Some(MetricsReport {
            snapshot: MetricsSnapshot::decode_state(r)?,
            uptime_ms: u64::decode_state(r)?,
            last_checkpoint_age_ms: Option::decode_state(r)?,
            burn_fast: f64::decode_state(r)?,
            burn_slow: f64::decode_state(r)?,
        })
    }
}

impl WireState for RequestEnvelope {
    fn encode_state(&self, w: &mut BitWriter) {
        PROTOCOL_VERSION.encode_state(w);
        self.deadline_ms.encode_state(w);
        self.request.encode_state(w);
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<RequestEnvelope> {
        if u32::decode_state(r)? != PROTOCOL_VERSION {
            return None;
        }
        Some(RequestEnvelope {
            deadline_ms: u32::decode_state(r)?,
            request: Request::decode_state(r)?,
        })
    }
}

impl WireState for Request {
    fn encode_state(&self, w: &mut BitWriter) {
        self.tag().encode_state(w);
        match self {
            Request::Centrality { node } => node.encode_state(w),
            Request::TopK { k } => k.encode_state(w),
            Request::Stats
            | Request::Health
            | Request::Drain
            | Request::Shutdown
            | Request::Metrics => {}
        }
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<Request> {
        Some(match u8::decode_state(r)? {
            0 => Request::Centrality {
                node: usize::decode_state(r)?,
            },
            1 => Request::TopK {
                k: usize::decode_state(r)?,
            },
            2 => Request::Stats,
            3 => Request::Health,
            4 => Request::Drain,
            5 => Request::Shutdown,
            6 => Request::Metrics,
            _ => return None,
        })
    }
}

impl WireState for Response {
    fn encode_state(&self, w: &mut BitWriter) {
        self.tag().encode_state(w);
        match self {
            Response::Value { node, value, slo } => {
                node.encode_state(w);
                value.encode_state(w);
                slo.encode_state(w);
            }
            Response::Ranking { top, slo } => {
                top.encode_state(w);
                slo.encode_state(w);
            }
            Response::Stats(stats) => stats.encode_state(w),
            Response::Health(report) => report.encode_state(w),
            Response::Metrics(report) => report.encode_state(w),
            Response::AdminOk | Response::Draining => {}
            Response::NotReady { retry_after_ms } | Response::Overloaded { retry_after_ms } => {
                retry_after_ms.encode_state(w);
            }
            Response::Timeout { deadline_ms } => deadline_ms.encode_state(w),
            Response::Error { reason } => encode_str(reason, w),
        }
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<Response> {
        Some(match u8::decode_state(r)? {
            0 => Response::Value {
                node: usize::decode_state(r)?,
                value: f64::decode_state(r)?,
                slo: SloFlags::decode_state(r)?,
            },
            1 => Response::Ranking {
                top: Vec::decode_state(r)?,
                slo: SloFlags::decode_state(r)?,
            },
            2 => Response::Stats(ServeStats::decode_state(r)?),
            3 => Response::Health(HealthReport::decode_state(r)?),
            4 => Response::AdminOk,
            5 => Response::NotReady {
                retry_after_ms: u32::decode_state(r)?,
            },
            6 => Response::Overloaded {
                retry_after_ms: u32::decode_state(r)?,
            },
            7 => Response::Timeout {
                deadline_ms: u32::decode_state(r)?,
            },
            8 => Response::Draining,
            9 => Response::Error {
                reason: decode_str(r)?,
            },
            10 => Response::Metrics(Box::new(MetricsReport::decode_state(r)?)),
            _ => return None,
        })
    }
}

/// Encodes a request envelope into a frame payload.
pub fn encode_request(env: &RequestEnvelope) -> Vec<u8> {
    let mut w = BitWriter::new();
    env.encode_state(&mut w);
    w.finish().to_vec()
}

/// Decodes a frame payload into a request envelope.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on truncation, an unknown tag, or a
/// version mismatch.
pub fn decode_request(payload: &[u8]) -> Result<RequestEnvelope, ProtocolError> {
    let mut r = BitReader::new(payload);
    RequestEnvelope::decode_state(&mut r).ok_or(ProtocolError::Malformed { what: "request" })
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = BitWriter::new();
    resp.encode_state(&mut w);
    w.finish().to_vec()
}

/// Decodes a frame payload into a response.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on truncation or an unknown tag.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut r = BitReader::new(payload);
    Response::decode_state(&mut r).ok_or(ProtocolError::Malformed { what: "response" })
}

/// Writes one `length + CRC-32 + payload` frame.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] past [`MAX_FRAME_BYTES`];
/// [`ProtocolError::Io`] on socket failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge { len: payload.len() });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&crc32(payload).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, verifying the length cap before buffering and the
/// CRC-32 before returning.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] when the prefix exceeds the cap
/// (nothing past the header is read); [`ProtocolError::ChecksumMismatch`]
/// on a failed CRC; [`ProtocolError::Io`] on socket failure or EOF.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, ProtocolError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let sum = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != sum {
        return Err(ProtocolError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(env: RequestEnvelope) {
        let payload = encode_request(&env);
        assert_eq!(decode_request(&payload).unwrap(), env);
    }

    fn roundtrip_response(resp: Response) {
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        for request in [
            Request::Centrality { node: 7 },
            Request::TopK { k: 10 },
            Request::Stats,
            Request::Health,
            Request::Drain,
            Request::Shutdown,
            Request::Metrics,
        ] {
            roundtrip_request(RequestEnvelope {
                deadline_ms: 250,
                request,
            });
        }
    }

    #[test]
    fn responses_roundtrip() {
        let slo = SloFlags {
            degraded: true,
            resumed: true,
            walks_lost: 3,
            count_cells_missing: 9,
        };
        for resp in [
            Response::Value {
                node: 4,
                value: 0.125,
                slo,
            },
            Response::Ranking {
                top: vec![(1, 0.5), (0, 0.25)],
                slo: SloFlags::default(),
            },
            Response::Stats(ServeStats {
                requests_served: 10,
                requests_overloaded: 2,
                requests_timed_out: 1,
                solve_rounds: 640,
                checkpoints_written: 10,
                checkpoint_overhead_us: 1234,
                uptime_ms: 9000,
                last_checkpoint_age_ms: Some(125),
            }),
            Response::Health(HealthReport {
                state: DaemonState::Serving,
                ready: true,
                phase: 2,
                rounds_completed: 640,
                slo,
                uptime_ms: 9000,
                last_checkpoint_age_ms: None,
                burn_fast: 1.5,
                burn_slow: 0.25,
            }),
            Response::Metrics(Box::new(MetricsReport {
                snapshot: {
                    let registry = congest_sim::Registry::new();
                    registry.counter("serve_requests_total").add(17);
                    registry.gauge("serve_queue_depth").set(3);
                    registry.histogram("serve_request_latency_us").record(800);
                    registry.snapshot()
                },
                uptime_ms: 1234,
                last_checkpoint_age_ms: Some(77),
                burn_fast: 2.0,
                burn_slow: 0.125,
            })),
            Response::AdminOk,
            Response::NotReady { retry_after_ms: 8 },
            Response::Overloaded { retry_after_ms: 16 },
            Response::Timeout { deadline_ms: 100 },
            Response::Draining,
            Response::Error {
                reason: "node 99 out of range".to_string(),
            },
        ] {
            roundtrip_response(resp);
        }
    }

    #[test]
    fn frames_roundtrip_and_catch_corruption() {
        let payload = encode_request(&RequestEnvelope {
            deadline_ms: 100,
            request: Request::Stats,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(read_frame(&mut &buf[..]).unwrap(), payload);
        // Flip one payload bit: the CRC catches it.
        let mut mangled = buf.clone();
        let last = mangled.len() - 1;
        mangled[last] ^= 1;
        assert!(matches!(
            read_frame(&mut &mangled[..]),
            Err(ProtocolError::ChecksumMismatch)
        ));
        // An oversized length prefix is rejected before any allocation.
        let mut huge = (u32::MAX).to_be_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 4]);
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
        // Truncation is a typed I/O error, not a panic.
        assert!(matches!(
            read_frame(&mut &buf[..buf.len() - 2]),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn malformed_payloads_fail_typed() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[0xFF; 3]).is_err());
        // Unknown request tag.
        let mut w = BitWriter::new();
        PROTOCOL_VERSION.encode_state(&mut w);
        10u32.encode_state(&mut w);
        200u8.encode_state(&mut w);
        assert!(decode_request(&w.finish()).is_err());
    }
}
