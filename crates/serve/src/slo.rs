//! SLO burn-rate tracking: per-second outcome buckets folded into a
//! fast (1 min) and a slow (10 min) window, Google-SRE style.
//!
//! Every admitted query is recorded as ok or as an error (shed, timed
//! out, or answered slower than the latency objective). The burn rate
//! over a window is `error_rate / error_budget` where the budget is
//! `1 - availability_target`: a burn of 1.0 spends the budget exactly
//! at the target pace, 2.0 spends it twice as fast. Alerting on *both*
//! windows (fast catches a cliff, slow catches a slow leak) is the
//! standard multi-window pattern; the daemon surfaces both in
//! [`HealthReport`](crate::protocol::HealthReport) and
//! [`MetricsReport`](crate::protocol::MetricsReport).
//!
//! All timestamps are milliseconds on the daemon's uptime clock (the
//! `Instant` it also uses for request deadlines), passed in by the
//! caller — the tracker never reads a clock itself, which keeps it
//! deterministic under test.

use std::sync::Mutex;

/// Fast burn-rate window, seconds.
pub const FAST_WINDOW_S: u64 = 60;
/// Slow burn-rate window, seconds.
pub const SLOW_WINDOW_S: u64 = 600;

/// The service-level objectives a daemon tracks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// A query answered slower than this counts against the budget.
    pub latency_objective_ms: u64,
    /// Target fraction of queries answered in time (e.g. `0.999`);
    /// the error budget is `1 -` this.
    pub availability_target: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            latency_objective_ms: 250,
            availability_target: 0.999,
        }
    }
}

impl SloConfig {
    /// The error budget, clamped away from zero so a target of 1.0
    /// yields huge-but-finite burn rates instead of dividing by zero.
    pub fn error_budget(&self) -> f64 {
        (1.0 - self.availability_target.clamp(0.0, 1.0)).max(1e-9)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    /// Which second this bucket currently holds (buckets are reused
    /// ring-style; a stale stamp means the bucket is from a lap ago).
    stamp: u64,
    total: u64,
    errors: u64,
}

/// Per-second outcome ring covering the slow window.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    buckets: Mutex<Vec<Bucket>>,
}

impl SloTracker {
    /// An empty tracker for the given objectives.
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker {
            config,
            buckets: Mutex::new(vec![Bucket::default(); SLOW_WINDOW_S as usize]),
        }
    }

    /// The objectives this tracker enforces.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Records one query outcome at `now_ms` on the daemon clock.
    /// `error` means shed, timed out, or answered past the latency
    /// objective — the caller classifies, the tracker just counts.
    pub fn record(&self, now_ms: u64, error: bool) {
        let second = now_ms / 1000;
        let mut buckets = self.buckets.lock().expect("slo tracker poisoned");
        let slot = (second % SLOW_WINDOW_S) as usize;
        let bucket = &mut buckets[slot];
        if bucket.stamp != second {
            *bucket = Bucket {
                stamp: second,
                ..Bucket::default()
            };
        }
        bucket.total += 1;
        bucket.errors += u64::from(error);
    }

    /// The burn rate over the trailing `window_s` seconds ending at
    /// `now_ms`. No traffic in the window burns nothing (0.0).
    pub fn burn_rate(&self, now_ms: u64, window_s: u64) -> f64 {
        let now_s = now_ms / 1000;
        let oldest = now_s.saturating_sub(window_s.min(SLOW_WINDOW_S).saturating_sub(1));
        let buckets = self.buckets.lock().expect("slo tracker poisoned");
        let (mut total, mut errors) = (0u64, 0u64);
        for bucket in buckets.iter() {
            if bucket.stamp >= oldest && bucket.stamp <= now_s {
                total += bucket.total;
                errors += bucket.errors;
            }
        }
        if total == 0 {
            return 0.0;
        }
        (errors as f64 / total as f64) / self.config.error_budget()
    }

    /// `(fast, slow)` burn rates at `now_ms`.
    pub fn burn_rates(&self, now_ms: u64) -> (f64, f64) {
        (
            self.burn_rate(now_ms, FAST_WINDOW_S),
            self.burn_rate(now_ms, SLOW_WINDOW_S),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(target: f64) -> SloTracker {
        SloTracker::new(SloConfig {
            latency_objective_ms: 100,
            availability_target: target,
        })
    }

    #[test]
    fn no_traffic_burns_nothing() {
        let t = tracker(0.999);
        assert_eq!(t.burn_rates(5_000_000), (0.0, 0.0));
    }

    #[test]
    fn burn_of_one_matches_the_budget_exactly() {
        // Target 0.9 → budget 0.1; 1 error in 10 queries burns at 1.0.
        let t = tracker(0.9);
        for i in 0..10 {
            t.record(1000 * i, i == 0);
        }
        let (fast, slow) = t.burn_rates(9_999);
        assert!((fast - 1.0).abs() < 1e-9, "fast={fast}");
        assert!((slow - 1.0).abs() < 1e-9, "slow={slow}");
    }

    #[test]
    fn fast_window_reacts_and_slow_window_smooths() {
        let t = tracker(0.9);
        // 9 minutes of clean traffic, then a minute of pure errors.
        for s in 0..540 {
            t.record(1000 * s, false);
        }
        for s in 540..600 {
            t.record(1000 * s, true);
        }
        let now = 599_999;
        let fast = t.burn_rate(now, FAST_WINDOW_S);
        let slow = t.burn_rate(now, SLOW_WINDOW_S);
        // Fast window is all errors (burn 10 at a 0.1 budget); slow
        // window dilutes the same minute across ten.
        assert!((fast - 10.0).abs() < 1e-9, "fast={fast}");
        assert!((slow - 1.0).abs() < 1e-9, "slow={slow}");
        assert!(fast > slow);
    }

    #[test]
    fn ring_reuse_forgets_old_laps() {
        let t = tracker(0.9);
        t.record(0, true);
        // A full lap later the slot is reused; the old error is gone.
        let lap = SLOW_WINDOW_S * 1000;
        t.record(lap, false);
        assert_eq!(t.burn_rate(lap, SLOW_WINDOW_S), 0.0);
    }

    #[test]
    fn perfect_availability_target_stays_finite() {
        let t = tracker(1.0);
        t.record(0, true);
        assert!(t.burn_rate(500, FAST_WINDOW_S).is_finite());
    }
}
