//! `rwbc-serve` — run and poke the centrality daemon.
//!
//! ```text
//! rwbc-serve run    [--addr A] [--n N] [--seed S] [--walks K] [--length L]
//!                   [--threads T] [--checkpoint FILE] [--checkpoint-every R]
//!                   [--trace FILE] [--queue-depth D] [--workers W]
//!                   [--deadline-ms MS] [--retry-after-ms MS]
//!                   [--slow-ms MS] [--work-delay-ms MS]
//! rwbc-serve query  --addr A (--node V | --topk K | --stats)
//!                   [--deadline-ms MS] [--attempts N]
//! rwbc-serve health --addr A
//! rwbc-serve drain  --addr A
//! rwbc-serve check  --checkpoint FILE --n N --seed S [--walks K] [--length L]
//! ```
//!
//! `run` prints `rwbc-serve listening on ADDR` once the socket is bound
//! (so harnesses binding port 0 can discover the port) and blocks until
//! an admin drain. `check` restores a checkpoint image offline and
//! reports its phase/round — the CI gate for "the final checkpoint is
//! valid".

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use rwbc::distributed::StepSolver;
use rwbc_serve::protocol::Request;
use rwbc_serve::{Client, Daemon, RequestEnvelope, Response, ServeConfig, SolverConfig};

struct Options {
    command: String,
    addr: Option<String>,
    n: usize,
    seed: u64,
    walks: usize,
    length: usize,
    threads: usize,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    trace: Option<PathBuf>,
    queue_depth: usize,
    workers: usize,
    deadline_ms: u32,
    retry_after_ms: u32,
    slow_ms: u64,
    work_delay_ms: u64,
    node: Option<usize>,
    topk: Option<usize>,
    stats: bool,
    attempts: u32,
}

fn usage() -> &'static str {
    "usage: rwbc-serve run    [--addr A] [--n N] [--seed S] [--walks K] [--length L]\n       \
     \t[--threads T] [--checkpoint FILE] [--checkpoint-every R] [--trace FILE]\n       \
     \t[--queue-depth D] [--workers W] [--deadline-ms MS] [--retry-after-ms MS]\n       \
     \t[--slow-ms MS] [--work-delay-ms MS]\n       \
     rwbc-serve query  --addr A (--node V | --topk K | --stats) [--deadline-ms MS] [--attempts N]\n       \
     rwbc-serve health --addr A\n       \
     rwbc-serve drain  --addr A\n       \
     rwbc-serve check  --checkpoint FILE --n N --seed S [--walks K] [--length L]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| usage().to_string())?;
    let mut opts = Options {
        command,
        addr: None,
        n: 256,
        seed: 42,
        walks: 4,
        length: 64,
        threads: 1,
        checkpoint: None,
        checkpoint_every: 64,
        trace: None,
        queue_depth: 64,
        workers: 2,
        deadline_ms: 1000,
        retry_after_ms: 10,
        slow_ms: 0,
        work_delay_ms: 0,
        node: None,
        topk: None,
        stats: false,
        attempts: 6,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        fn num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("{flag}: bad value `{raw}`"))
        }
        match arg.as_str() {
            "--addr" => opts.addr = Some(value("--addr")?),
            "--n" => opts.n = num("--n", &value("--n")?)?,
            "--seed" => opts.seed = num("--seed", &value("--seed")?)?,
            "--walks" => opts.walks = num("--walks", &value("--walks")?)?,
            "--length" => opts.length = num("--length", &value("--length")?)?,
            "--threads" => opts.threads = num("--threads", &value("--threads")?)?,
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--checkpoint-every" => {
                opts.checkpoint_every = num("--checkpoint-every", &value("--checkpoint-every")?)?;
            }
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace")?)),
            "--queue-depth" => opts.queue_depth = num("--queue-depth", &value("--queue-depth")?)?,
            "--workers" => opts.workers = num("--workers", &value("--workers")?)?,
            "--deadline-ms" => opts.deadline_ms = num("--deadline-ms", &value("--deadline-ms")?)?,
            "--retry-after-ms" => {
                opts.retry_after_ms = num("--retry-after-ms", &value("--retry-after-ms")?)?;
            }
            "--slow-ms" => opts.slow_ms = num("--slow-ms", &value("--slow-ms")?)?,
            "--work-delay-ms" => {
                opts.work_delay_ms = num("--work-delay-ms", &value("--work-delay-ms")?)?;
            }
            "--node" => opts.node = Some(num("--node", &value("--node")?)?),
            "--topk" => opts.topk = Some(num("--topk", &value("--topk")?)?),
            "--stats" => opts.stats = true,
            "--attempts" => opts.attempts = num("--attempts", &value("--attempts")?)?,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn solver_config(opts: &Options) -> SolverConfig {
    let mut config = SolverConfig::new(opts.n, opts.seed);
    config.walks = opts.walks;
    config.length = opts.length;
    config.threads = opts.threads;
    config.checkpoint_path = opts.checkpoint.clone();
    config.checkpoint_every_rounds = opts.checkpoint_every;
    config.trace_path = opts.trace.clone();
    config.slow_ms = opts.slow_ms;
    config
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let mut config = ServeConfig::new(solver_config(opts));
    if let Some(addr) = &opts.addr {
        config.addr = addr.clone();
    }
    config.queue_depth = opts.queue_depth;
    config.workers = opts.workers;
    config.default_deadline_ms = opts.deadline_ms;
    config.retry_after_ms = opts.retry_after_ms;
    config.work_delay_ms = opts.work_delay_ms;
    let daemon = Daemon::start(config).map_err(|e| format!("bind failed: {e}"))?;
    // A supervisor may close our stdout after reading the banner; a
    // daemon must not die over it, so ignore write failures here.
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "rwbc-serve listening on {}", daemon.local_addr());
    let _ = stdout.flush();
    daemon.wait();
    let _ = writeln!(stdout, "rwbc-serve drained cleanly");
    Ok(())
}

fn describe(response: &Response) -> String {
    match response {
        Response::Value { node, value, slo } => {
            format!(
                "node {node}: {value:.6}{}",
                if slo.degraded {
                    format!(
                        "  [DEGRADED walks_lost={} cells_missing={}]",
                        slo.walks_lost, slo.count_cells_missing
                    )
                } else {
                    String::new()
                }
            )
        }
        Response::Ranking { top, slo } => {
            let mut out = String::new();
            for (rank, (node, value)) in top.iter().enumerate() {
                out.push_str(&format!("{:>3}. node {node}: {value:.6}\n", rank + 1));
            }
            if slo.degraded {
                out.push_str("[DEGRADED]\n");
            }
            out.trim_end().to_string()
        }
        Response::Stats(s) => format!(
            "served={} overloaded={} timed_out={} rounds={} checkpoints={} \
             checkpoint_overhead_us={} uptime_ms={}",
            s.requests_served,
            s.requests_overloaded,
            s.requests_timed_out,
            s.solve_rounds,
            s.checkpoints_written,
            s.checkpoint_overhead_us,
            s.uptime_ms
        ),
        Response::Health(h) => format!(
            "state={} ready={} phase={} rounds={} resumed={} degraded={}",
            h.state.as_str(),
            h.ready,
            h.phase,
            h.rounds_completed,
            h.slo.resumed,
            h.slo.degraded
        ),
        other => format!("{other:?}"),
    }
}

fn cmd_query(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("query needs --addr")?;
    let client = Client::new(addr.clone()).with_max_attempts(opts.attempts);
    let request = if let Some(node) = opts.node {
        Request::Centrality { node }
    } else if let Some(k) = opts.topk {
        Request::TopK { k }
    } else if opts.stats {
        Request::Stats
    } else {
        return Err("query needs one of --node, --topk, --stats".to_string());
    };
    let response = client
        .request(&RequestEnvelope {
            deadline_ms: opts.deadline_ms,
            request,
        })
        .map_err(|e| e.to_string())?;
    println!("{}", describe(&response));
    match response {
        Response::Error { .. } | Response::Timeout { .. } => Err("request failed".to_string()),
        _ => Ok(()),
    }
}

fn cmd_health(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("health needs --addr")?;
    let response = Client::new(addr.clone())
        .health()
        .map_err(|e| e.to_string())?;
    println!("{}", describe(&response));
    Ok(())
}

fn cmd_drain(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("drain needs --addr")?;
    let response = Client::new(addr.clone())
        .drain()
        .map_err(|e| e.to_string())?;
    match response {
        Response::AdminOk => {
            println!("drain acknowledged");
            Ok(())
        }
        other => Err(format!("unexpected drain response: {other:?}")),
    }
}

fn cmd_check(opts: &Options) -> Result<(), String> {
    let path = opts.checkpoint.as_ref().ok_or("check needs --checkpoint")?;
    let image = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let config = solver_config(opts);
    let graph = config.graph.build();
    let solver = StepSolver::restore(&graph, config.distributed_config(), &image)
        .map_err(|e| format!("invalid checkpoint: {e}"))?;
    println!(
        "checkpoint ok: phase={:?} rounds={} bytes={}",
        solver.phase(),
        solver.rounds_completed(),
        image.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let result = match opts.command.as_str() {
        "run" => cmd_run(&opts),
        "query" => cmd_query(&opts),
        "health" => cmd_health(&opts),
        "drain" => cmd_drain(&opts),
        "check" => cmd_check(&opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
