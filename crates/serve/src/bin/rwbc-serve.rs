//! `rwbc-serve` — run and poke the centrality daemon.
//!
//! ```text
//! rwbc-serve run    [--addr A] [--n N] [--seed S] [--walks K] [--length L]
//!                   [--threads T] [--granularity G] [--sketch-precision P]
//!                   [--checkpoint FILE] [--checkpoint-every R]
//!                   [--trace FILE] [--queue-depth D] [--workers W]
//!                   [--deadline-ms MS] [--retry-after-ms MS]
//!                   [--slow-ms MS] [--work-delay-ms MS]
//! rwbc-serve query  --addr A (--node V | --topk K | --stats)
//!                   [--deadline-ms MS] [--attempts N]
//! rwbc-serve health --addr A
//! rwbc-serve metrics --addr A [--format json|prometheus]
//! rwbc-serve top    --addr A [--interval-ms MS] [--iterations N] [--no-clear]
//! rwbc-serve drain  --addr A
//! rwbc-serve check  --checkpoint FILE --n N --seed S [--walks K] [--length L]
//! ```
//!
//! `run` prints `rwbc-serve listening on ADDR` once the socket is bound
//! (so harnesses binding port 0 can discover the port) and blocks until
//! an admin drain. `check` restores a checkpoint image offline and
//! reports its phase/round — the CI gate for "the final checkpoint is
//! valid".

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use rwbc::distributed::StepSolver;
use rwbc_serve::protocol::Request;
use rwbc_serve::top::{self, TopOptions};
use rwbc_serve::{Client, Daemon, RequestEnvelope, Response, ServeConfig, SloConfig, SolverConfig};

struct Options {
    command: String,
    addr: Option<String>,
    n: usize,
    seed: u64,
    walks: usize,
    length: usize,
    threads: usize,
    granularity: usize,
    sketch_precision: u8,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    trace: Option<PathBuf>,
    flight: Option<PathBuf>,
    flight_every_ms: u64,
    queue_depth: usize,
    workers: usize,
    deadline_ms: u32,
    retry_after_ms: u32,
    slow_ms: u64,
    work_delay_ms: u64,
    slo_latency_ms: u64,
    slo_availability: f64,
    node: Option<usize>,
    topk: Option<usize>,
    stats: bool,
    attempts: u32,
    format: String,
    interval_ms: u64,
    iterations: u64,
    no_clear: bool,
}

fn usage() -> &'static str {
    "usage: rwbc-serve run    [--addr A] [--n N] [--seed S] [--walks K] [--length L]\n       \
     \t[--threads T] [--sketch-precision P] [--checkpoint FILE] [--checkpoint-every R]\n       \
     \t[--trace FILE]\n       \
     \t[--flight FILE] [--flight-every-ms MS] [--queue-depth D] [--workers W]\n       \
     \t[--deadline-ms MS] [--retry-after-ms MS] [--slow-ms MS] [--work-delay-ms MS]\n       \
     \t[--slo-latency-ms MS] [--slo-availability F]\n       \
     rwbc-serve query  --addr A (--node V | --topk K | --stats) [--deadline-ms MS] [--attempts N]\n       \
     rwbc-serve health --addr A\n       \
     rwbc-serve metrics --addr A [--format json|prometheus]\n       \
     rwbc-serve top    --addr A [--interval-ms MS] [--iterations N] [--no-clear]\n       \
     rwbc-serve drain  --addr A\n       \
     rwbc-serve check  --checkpoint FILE --n N --seed S [--walks K] [--length L]"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| usage().to_string())?;
    let mut opts = Options {
        command,
        addr: None,
        n: 256,
        seed: 42,
        walks: 4,
        length: 64,
        threads: 1,
        granularity: 0,
        sketch_precision: 0,
        checkpoint: None,
        checkpoint_every: 64,
        trace: None,
        flight: None,
        flight_every_ms: 500,
        queue_depth: 64,
        workers: 2,
        deadline_ms: 1000,
        retry_after_ms: 10,
        slow_ms: 0,
        work_delay_ms: 0,
        slo_latency_ms: SloConfig::default().latency_objective_ms,
        slo_availability: SloConfig::default().availability_target,
        node: None,
        topk: None,
        stats: false,
        attempts: 6,
        format: "json".to_string(),
        interval_ms: 1000,
        iterations: 0,
        no_clear: false,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        fn num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("{flag}: bad value `{raw}`"))
        }
        match arg.as_str() {
            "--addr" => opts.addr = Some(value("--addr")?),
            "--n" => opts.n = num("--n", &value("--n")?)?,
            "--seed" => opts.seed = num("--seed", &value("--seed")?)?,
            "--walks" => opts.walks = num("--walks", &value("--walks")?)?,
            "--length" => opts.length = num("--length", &value("--length")?)?,
            "--threads" => opts.threads = num("--threads", &value("--threads")?)?,
            "--granularity" => opts.granularity = num("--granularity", &value("--granularity")?)?,
            "--sketch-precision" => {
                opts.sketch_precision = num("--sketch-precision", &value("--sketch-precision")?)?;
            }
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--checkpoint-every" => {
                opts.checkpoint_every = num("--checkpoint-every", &value("--checkpoint-every")?)?;
            }
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace")?)),
            "--flight" => opts.flight = Some(PathBuf::from(value("--flight")?)),
            "--flight-every-ms" => {
                opts.flight_every_ms = num("--flight-every-ms", &value("--flight-every-ms")?)?;
            }
            "--slo-latency-ms" => {
                opts.slo_latency_ms = num("--slo-latency-ms", &value("--slo-latency-ms")?)?;
            }
            "--slo-availability" => {
                opts.slo_availability = num("--slo-availability", &value("--slo-availability")?)?;
            }
            "--format" => opts.format = value("--format")?,
            "--interval-ms" => opts.interval_ms = num("--interval-ms", &value("--interval-ms")?)?,
            "--iterations" => opts.iterations = num("--iterations", &value("--iterations")?)?,
            "--no-clear" => opts.no_clear = true,
            "--queue-depth" => opts.queue_depth = num("--queue-depth", &value("--queue-depth")?)?,
            "--workers" => opts.workers = num("--workers", &value("--workers")?)?,
            "--deadline-ms" => opts.deadline_ms = num("--deadline-ms", &value("--deadline-ms")?)?,
            "--retry-after-ms" => {
                opts.retry_after_ms = num("--retry-after-ms", &value("--retry-after-ms")?)?;
            }
            "--slow-ms" => opts.slow_ms = num("--slow-ms", &value("--slow-ms")?)?,
            "--work-delay-ms" => {
                opts.work_delay_ms = num("--work-delay-ms", &value("--work-delay-ms")?)?;
            }
            "--node" => opts.node = Some(num("--node", &value("--node")?)?),
            "--topk" => opts.topk = Some(num("--topk", &value("--topk")?)?),
            "--stats" => opts.stats = true,
            "--attempts" => opts.attempts = num("--attempts", &value("--attempts")?)?,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn solver_config(opts: &Options) -> SolverConfig {
    let mut config = SolverConfig::new(opts.n, opts.seed);
    config.walks = opts.walks;
    config.length = opts.length;
    config.threads = opts.threads;
    config.granularity = opts.granularity;
    config.sketch_precision = opts.sketch_precision;
    config.checkpoint_path = opts.checkpoint.clone();
    config.checkpoint_every_rounds = opts.checkpoint_every;
    config.trace_path = opts.trace.clone();
    config.slow_ms = opts.slow_ms;
    config
}

/// Set by the raw SIGTERM handler; a watcher thread turns it into a
/// clean drain. The handler itself only flips the flag — the only thing
/// that is async-signal-safe to do.
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: std::os::raw::c_int) {
    SIGTERM_SEEN.store(true, Ordering::SeqCst);
}

/// Registers the SIGTERM handler via the raw libc binding (the
/// workspace vendors no signal crate). SIGTERM is 15 on every platform
/// we build for.
#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: std::os::raw::c_int, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let mut config = ServeConfig::new(solver_config(opts));
    if let Some(addr) = &opts.addr {
        config.addr = addr.clone();
    }
    config.queue_depth = opts.queue_depth;
    config.workers = opts.workers;
    config.default_deadline_ms = opts.deadline_ms;
    config.retry_after_ms = opts.retry_after_ms;
    config.work_delay_ms = opts.work_delay_ms;
    config.slo = SloConfig {
        latency_objective_ms: opts.slo_latency_ms,
        availability_target: opts.slo_availability,
    };
    // Flight dumps land next to the checkpoint unless pointed elsewhere.
    config.flight_path = opts.flight.clone().or_else(|| {
        opts.checkpoint
            .as_ref()
            .map(|p| p.with_extension("flight.jsonl"))
    });
    config.flight_dump_every_ms = opts.flight_every_ms;
    let flight_path = config.flight_path.clone();
    let daemon = Daemon::start(config).map_err(|e| format!("bind failed: {e}"))?;

    // A panicking thread leaves a final flight dump before the default
    // hook aborts/unwinds — the post-mortem the recorder exists for.
    if let Some(path) = flight_path {
        let flight = daemon.flight().clone();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = flight.dump_to(&path);
            previous(info);
        }));
    }

    // SIGTERM → clean drain (final checkpoint + flight dump), same as an
    // admin Drain request. SIGKILL is covered by the periodic dumps.
    install_sigterm_handler();
    let addr = daemon.local_addr();
    std::thread::spawn(move || loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if SIGTERM_SEEN.load(Ordering::SeqCst) {
            let _ = Client::new(addr.to_string()).drain();
            return;
        }
    });

    // A supervisor may close our stdout after reading the banner; a
    // daemon must not die over it, so ignore write failures here.
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "rwbc-serve listening on {addr}");
    let _ = stdout.flush();
    daemon.wait();
    let _ = writeln!(stdout, "rwbc-serve drained cleanly");
    Ok(())
}

fn describe(response: &Response) -> String {
    match response {
        Response::Value { node, value, slo } => {
            format!(
                "node {node}: {value:.6}{}",
                if slo.degraded {
                    format!(
                        "  [DEGRADED walks_lost={} cells_missing={}]",
                        slo.walks_lost, slo.count_cells_missing
                    )
                } else {
                    String::new()
                }
            )
        }
        Response::Ranking { top, slo } => {
            let mut out = String::new();
            for (rank, (node, value)) in top.iter().enumerate() {
                out.push_str(&format!("{:>3}. node {node}: {value:.6}\n", rank + 1));
            }
            if slo.degraded {
                out.push_str("[DEGRADED]\n");
            }
            out.trim_end().to_string()
        }
        Response::Stats(s) => format!(
            "served={} overloaded={} timed_out={} rounds={} checkpoints={} \
             checkpoint_overhead_us={} uptime_ms={} checkpoint_age_ms={}",
            s.requests_served,
            s.requests_overloaded,
            s.requests_timed_out,
            s.solve_rounds,
            s.checkpoints_written,
            s.checkpoint_overhead_us,
            s.uptime_ms,
            s.last_checkpoint_age_ms
                .map_or_else(|| "none".to_string(), |v| v.to_string())
        ),
        Response::Health(h) => format!(
            "state={} ready={} phase={} rounds={} resumed={} degraded={} uptime_ms={} \
             checkpoint_age_ms={} burn_fast={:.3} burn_slow={:.3}",
            h.state.as_str(),
            h.ready,
            h.phase,
            h.rounds_completed,
            h.slo.resumed,
            h.slo.degraded,
            h.uptime_ms,
            h.last_checkpoint_age_ms
                .map_or_else(|| "none".to_string(), |v| v.to_string()),
            h.burn_fast,
            h.burn_slow
        ),
        other => format!("{other:?}"),
    }
}

fn cmd_query(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("query needs --addr")?;
    let client = Client::new(addr.clone()).with_max_attempts(opts.attempts);
    let request = if let Some(node) = opts.node {
        Request::Centrality { node }
    } else if let Some(k) = opts.topk {
        Request::TopK { k }
    } else if opts.stats {
        Request::Stats
    } else {
        return Err("query needs one of --node, --topk, --stats".to_string());
    };
    let response = client
        .request(&RequestEnvelope {
            deadline_ms: opts.deadline_ms,
            request,
        })
        .map_err(|e| e.to_string())?;
    println!("{}", describe(&response));
    match response {
        Response::Error { .. } | Response::Timeout { .. } => Err("request failed".to_string()),
        _ => Ok(()),
    }
}

fn cmd_health(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("health needs --addr")?;
    let response = Client::new(addr.clone())
        .health()
        .map_err(|e| e.to_string())?;
    println!("{}", describe(&response));
    Ok(())
}

fn cmd_metrics(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("metrics needs --addr")?;
    let response = Client::new(addr.clone())
        .metrics()
        .map_err(|e| e.to_string())?;
    let Response::Metrics(report) = response else {
        return Err(format!("unexpected metrics response: {response:?}"));
    };
    match opts.format.as_str() {
        "json" => println!("{}", report.to_json().to_json()),
        "prometheus" | "prom" => {
            let text = report.to_prometheus();
            // Lint before printing: a scrape that would poison a real
            // Prometheus ingester exits non-zero instead.
            congest_sim::metrics::lint_prometheus(&text)
                .map_err(|e| format!("invalid Prometheus exposition: {e}"))?;
            print!("{text}");
        }
        other => {
            return Err(format!(
                "--format must be json or prometheus, got `{other}`"
            ))
        }
    }
    Ok(())
}

fn cmd_top(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("top needs --addr")?;
    let top_opts = TopOptions {
        addr: addr.clone(),
        interval_ms: opts.interval_ms,
        iterations: opts.iterations,
        clear_screen: !opts.no_clear,
    };
    top::run(&top_opts, &mut std::io::stdout())
}

fn cmd_drain(opts: &Options) -> Result<(), String> {
    let addr = opts.addr.as_ref().ok_or("drain needs --addr")?;
    let response = Client::new(addr.clone())
        .drain()
        .map_err(|e| e.to_string())?;
    match response {
        Response::AdminOk => {
            println!("drain acknowledged");
            Ok(())
        }
        other => Err(format!("unexpected drain response: {other:?}")),
    }
}

fn cmd_check(opts: &Options) -> Result<(), String> {
    let path = opts.checkpoint.as_ref().ok_or("check needs --checkpoint")?;
    let image = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    // Offline age: how stale the image on disk is (the live counterpart
    // is `last_checkpoint_age_ms` in Health/Stats/Metrics replies).
    let age_ms = std::fs::metadata(path)
        .ok()
        .and_then(|m| m.modified().ok())
        .and_then(|t| t.elapsed().ok())
        .map(|d| d.as_millis() as u64);
    let config = solver_config(opts);
    let graph = config.graph.build();
    let solver = StepSolver::restore(&graph, config.distributed_config(), &image)
        .map_err(|e| format!("invalid checkpoint: {e}"))?;
    println!(
        "checkpoint ok: phase={:?} rounds={} bytes={} age_ms={}",
        solver.phase(),
        solver.rounds_completed(),
        image.len(),
        age_ms.map_or_else(|| "unknown".to_string(), |v| v.to_string())
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let result = match opts.command.as_str() {
        "run" => cmd_run(&opts),
        "query" => cmd_query(&opts),
        "health" => cmd_health(&opts),
        "metrics" => cmd_metrics(&opts),
        "top" => cmd_top(&opts),
        "drain" => cmd_drain(&opts),
        "check" => cmd_check(&opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
