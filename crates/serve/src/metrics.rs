//! The daemon's live-metrics bundle: one [`Registry`] holding the
//! serving-tier instruments next to the engine's, so a single
//! [`Request::Metrics`](crate::protocol::Request::Metrics) scrape sees
//! the whole process.
//!
//! Naming follows the Prometheus conventions the registry enforces:
//! `serve_*` for the request path, `solver_*` for the background solve,
//! `engine_*` (registered by the engine itself) for CONGEST-round
//! traffic. The four `serve_requests_*` counters partition exactly:
//! every admitted query is counted once in `serve_requests_total` and
//! once in exactly one of `answered` / `timed_out` / `shed`.

use congest_sim::{Counter, EngineMetrics, Gauge, Histogram, Registry};

/// Handles into the daemon's registry, cloned wherever the request path
/// or the solver thread needs to record.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Queries admitted past the health/admin/draining checks.
    pub requests_total: Counter,
    /// Admitted queries answered within their deadline (any response,
    /// including typed errors — the client got *an* answer in time).
    pub answered_total: Counter,
    /// Admitted queries that missed their deadline.
    pub timed_out_total: Counter,
    /// Queries shed because the admission queue was full.
    pub shed_total: Counter,
    /// Served results that carried degraded SLO flags.
    pub degraded_served_total: Counter,
    /// Jobs currently sitting in the admission queue.
    pub queue_depth: Gauge,
    /// End-to-end latency of admitted queries, microseconds.
    pub latency_us: Histogram,
    /// Background-solve phase tag (0 walk, 1 count, 2 done, 3 failed).
    pub solver_phase: Gauge,
    /// Checkpoints persisted by the background solve.
    pub checkpoints_total: Counter,
    /// Time to serialize + persist one checkpoint, microseconds.
    pub checkpoint_duration_us: Histogram,
    /// Flight-recorder dumps written.
    pub flight_dumps_total: Counter,
}

impl ServeMetrics {
    /// Registers (or re-attaches to) the serving-tier instruments.
    pub fn register(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            requests_total: registry.counter("serve_requests_total"),
            answered_total: registry.counter("serve_requests_answered_total"),
            timed_out_total: registry.counter("serve_requests_timed_out_total"),
            shed_total: registry.counter("serve_requests_shed_total"),
            degraded_served_total: registry.counter("serve_degraded_served_total"),
            queue_depth: registry.gauge("serve_queue_depth"),
            latency_us: registry.histogram("serve_request_latency_us"),
            solver_phase: registry.gauge("solver_phase"),
            checkpoints_total: registry.counter("solver_checkpoints_total"),
            checkpoint_duration_us: registry.histogram("solver_checkpoint_duration_us"),
            flight_dumps_total: registry.counter("serve_flight_dumps_total"),
        }
    }
}

/// The full bundle a daemon owns: the registry plus pre-registered
/// serve and engine handles.
#[derive(Debug, Clone)]
pub struct DaemonMetrics {
    /// The registry every scrape snapshots.
    pub registry: Registry,
    /// Serving-tier handles.
    pub serve: ServeMetrics,
    /// Engine handles, attached to the background solve's simulators.
    pub engine: EngineMetrics,
}

impl DaemonMetrics {
    /// A fresh registry with the standard instrument set.
    pub fn new() -> DaemonMetrics {
        let registry = Registry::new();
        let serve = ServeMetrics::register(&registry);
        let engine = EngineMetrics::register(&registry);
        DaemonMetrics {
            registry,
            serve,
            engine,
        }
    }
}

impl Default for DaemonMetrics {
    fn default() -> DaemonMetrics {
        DaemonMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_on_one_registry() {
        let m = DaemonMetrics::new();
        m.serve.requests_total.inc();
        // Re-registering returns handles onto the same instruments.
        let again = ServeMetrics::register(&m.registry);
        again.requests_total.inc();
        let snap = m.registry.snapshot();
        assert_eq!(snap.counter("serve_requests_total"), Some(2));
        // The standard set is present from the start.
        assert_eq!(snap.counter("engine_rounds_total"), Some(0));
        assert_eq!(snap.gauge("serve_queue_depth"), Some(0));
        assert!(snap.histogram("serve_request_latency_us").is_some());
    }
}
