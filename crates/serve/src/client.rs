//! Client library: one frame per request over a fresh connection, with
//! capped exponential backoff + deterministic jitter on retryable
//! answers — the same base-4, cap-32 doubling schedule the engine's
//! `Reliable` adapter uses for retransmission timeouts, scaled to
//! milliseconds.

use std::fmt;
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtocolError, Request,
    RequestEnvelope, Response,
};

/// First backoff, milliseconds (mirrors `Reliable`'s `BASE_TIMEOUT = 4`).
pub const BASE_BACKOFF_MS: u64 = 4;
/// Backoff cap, milliseconds (mirrors `Reliable`'s `MAX_TIMEOUT = 32`).
pub const MAX_BACKOFF_MS: u64 = 32;

/// Typed client failure.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or socket failure on a non-retryable path.
    Io(std::io::Error),
    /// The response (or our request) was malformed.
    Protocol(ProtocolError),
    /// Every attempt was shed, not ready, or unreachable; the client
    /// gave up rather than spin.
    GaveUp {
        /// Attempts made.
        attempts: u32,
        /// What the final attempt saw.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// SplitMix64 — the same mixer the walk draws use; good enough to
/// decorrelate retry schedules across clients.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A retrying client for one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    max_attempts: u32,
    jitter_seed: u64,
    io_timeout: Duration,
}

impl Client {
    /// A client with 6 attempts and a 5-second per-operation socket
    /// timeout.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            max_attempts: 6,
            jitter_seed: 0,
            io_timeout: Duration::from_secs(5),
        }
    }

    /// Caps the retry attempts (minimum 1).
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Client {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Seeds the deterministic retry jitter.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Client {
        self.jitter_seed = seed;
        self
    }

    /// Sets the per-operation socket timeout.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> Client {
        self.io_timeout = timeout;
        self
    }

    /// One request/response exchange over a fresh connection.
    fn once(&self, env: &RequestEnvelope) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(&self.addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.io_timeout))
            .map_err(ClientError::Io)?;
        write_frame(&mut stream, &encode_request(env)).map_err(ClientError::Protocol)?;
        let payload = read_frame(&mut stream).map_err(ClientError::Protocol)?;
        decode_response(&payload).map_err(ClientError::Protocol)
    }

    /// Sends a request, retrying `Overloaded` / `NotReady` answers and
    /// connection failures with capped exponential backoff + jitter.
    /// Any other response — including a typed `Timeout` — is returned
    /// to the caller as-is.
    ///
    /// # Errors
    ///
    /// [`ClientError::GaveUp`] once the attempt budget is spent;
    /// [`ClientError::Protocol`] on malformed traffic.
    pub fn request(&self, env: &RequestEnvelope) -> Result<Response, ClientError> {
        let mut backoff = BASE_BACKOFF_MS;
        let mut last = String::from("no attempt made");
        for attempt in 0..self.max_attempts {
            let retry_floor_ms = match self.once(env) {
                Ok(Response::Overloaded { retry_after_ms }) => {
                    last = format!("Overloaded (retry after {retry_after_ms} ms)");
                    u64::from(retry_after_ms)
                }
                Ok(Response::NotReady { retry_after_ms }) => {
                    last = format!("NotReady (retry after {retry_after_ms} ms)");
                    u64::from(retry_after_ms)
                }
                Ok(response) => return Ok(response),
                Err(ClientError::Io(e)) => {
                    last = format!("connect failed: {e}");
                    0
                }
                Err(e) => return Err(e),
            };
            if attempt + 1 < self.max_attempts {
                let jitter_span = backoff / 2 + 1;
                let jitter =
                    splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x5851_F42D))
                        % jitter_span;
                std::thread::sleep(Duration::from_millis(backoff.max(retry_floor_ms) + jitter));
                // Same doubling-with-cap schedule as `Reliable`.
                backoff = (backoff * 2).min(MAX_BACKOFF_MS);
            }
        }
        Err(ClientError::GaveUp {
            attempts: self.max_attempts,
            last,
        })
    }

    /// Convenience: one node's centrality with a deadline.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn centrality(&self, node: usize, deadline_ms: u32) -> Result<Response, ClientError> {
        self.request(&RequestEnvelope {
            deadline_ms,
            request: Request::Centrality { node },
        })
    }

    /// Convenience: top-k ranking with a deadline.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn top_k(&self, k: usize, deadline_ms: u32) -> Result<Response, ClientError> {
        self.request(&RequestEnvelope {
            deadline_ms,
            request: Request::TopK { k },
        })
    }

    /// Convenience: service counters.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn stats(&self) -> Result<Response, ClientError> {
        self.request(&RequestEnvelope {
            deadline_ms: 0,
            request: Request::Stats,
        })
    }

    /// Convenience: health probe (no retries — a probe reports what is,
    /// it does not wait for what might become).
    ///
    /// # Errors
    ///
    /// Same as [`Client::once`] failures, surfaced directly.
    pub fn health(&self) -> Result<Response, ClientError> {
        self.once(&RequestEnvelope {
            deadline_ms: 0,
            request: Request::Health,
        })
    }

    /// Convenience: admin drain.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn drain(&self) -> Result<Response, ClientError> {
        self.once(&RequestEnvelope {
            deadline_ms: 0,
            request: Request::Drain,
        })
    }

    /// Convenience: live-metrics scrape (no retries, like
    /// [`Client::health`] — a scraper reports what is, and must see an
    /// overloaded daemon rather than back off around it).
    ///
    /// # Errors
    ///
    /// Same as [`Client::once`] failures, surfaced directly.
    pub fn metrics(&self) -> Result<Response, ClientError> {
        self.once(&RequestEnvelope {
            deadline_ms: 0,
            request: Request::Metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_mirrors_reliable() {
        // 4, 8, 16, 32, 32, ... — doubling to the cap.
        let mut backoff = BASE_BACKOFF_MS;
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push(backoff);
            backoff = (backoff * 2).min(MAX_BACKOFF_MS);
        }
        assert_eq!(seen, vec![4, 8, 16, 32, 32]);
    }

    #[test]
    fn unreachable_daemon_gives_up_typed() {
        // A port nothing listens on: every attempt fails to connect and
        // the client must give up with the typed error, quickly.
        let client = Client::new("127.0.0.1:1")
            .with_max_attempts(2)
            .with_io_timeout(Duration::from_millis(200));
        match client.stats() {
            Err(ClientError::GaveUp { attempts: 2, .. }) => {}
            other => panic!("expected GaveUp, got {other:?}"),
        }
    }
}
