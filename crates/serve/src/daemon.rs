//! The daemon: a TCP accept loop in front of a bounded admission queue
//! and a small worker pool, reading results from the background solve.
//!
//! Robustness invariants:
//!
//! * **Bounded memory.** The admission queue is a fixed-depth
//!   `sync_channel`; when it is full the connection thread answers
//!   [`Response::Overloaded`] with a retry-after hint instead of
//!   buffering. Frames are length-capped before they are buffered.
//! * **Deadlines.** Every admitted request carries its client deadline;
//!   the connection thread waits at most that long for the worker and
//!   then answers a typed [`Response::Timeout`]. Workers drop requests
//!   whose deadline already expired in the queue.
//! * **No silent staleness.** Every served value carries
//!   [`SloFlags`](crate::protocol::SloFlags) derived from the solve's
//!   `DegradationReport` plus the resumed-from-checkpoint bit.
//! * **Clean drain.** `Drain`/`Shutdown` stop admission, flush a final
//!   solve checkpoint, close the JSONL trace, and unblock the accept
//!   loop so the process exits.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use congest_sim::{FlightRecorder, TraceEvent};

use crate::metrics::DaemonMetrics;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, DaemonState, HealthReport,
    MetricsReport, ProtocolError, Request, RequestEnvelope, Response, ServeStats, SloFlags,
};
use crate::slo::{SloConfig, SloTracker};
use crate::solver::{BackgroundSolver, SolveSnapshot, SolverConfig, SolverHooks};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Admission-queue depth — the load-shedding knob.
    pub queue_depth: usize,
    /// Worker threads answering admitted queries.
    pub workers: usize,
    /// Deadline applied when a request asks for none (0 on the wire).
    pub default_deadline_ms: u32,
    /// Retry-after hint attached to `Overloaded` / `NotReady`.
    pub retry_after_ms: u32,
    /// Test hook: each worker sleeps this long per request, so overload
    /// and deadline paths can be exercised deterministically.
    pub work_delay_ms: u64,
    /// Latency / availability objectives the burn-rate tracker scores
    /// admitted queries against.
    pub slo: SloConfig,
    /// Flight-recorder dump path (conventionally next to the
    /// checkpoint); `None` disables periodic dumps, the in-memory ring
    /// still records.
    pub flight_path: Option<PathBuf>,
    /// Milliseconds between periodic flight dumps. The periodic cadence
    /// is what makes dumps crash-safe: `kill -9` cannot be hooked, so
    /// the newest dump is at most this stale.
    pub flight_dump_every_ms: u64,
    /// The background solve.
    pub solver: SolverConfig,
}

impl ServeConfig {
    /// Loopback defaults around the given solve.
    pub fn new(solver: SolverConfig) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 64,
            workers: 2,
            default_deadline_ms: 1000,
            retry_after_ms: 10,
            work_delay_ms: 0,
            slo: SloConfig::default(),
            flight_path: None,
            flight_dump_every_ms: 500,
            solver,
        }
    }
}

struct Counters {
    served: AtomicU64,
    overloaded: AtomicU64,
    timed_out: AtomicU64,
}

struct Shared {
    config: ServeConfig,
    counters: Counters,
    draining: AtomicBool,
    shutdown: AtomicBool,
    started: Instant,
    solver: Mutex<BackgroundSolver>,
    addr: SocketAddr,
    metrics: DaemonMetrics,
    slo: SloTracker,
    flight: FlightRecorder,
}

impl Shared {
    fn snapshot(&self) -> SolveSnapshot {
        self.solver.lock().expect("solver handle lock").snapshot()
    }

    /// Milliseconds since the daemon started — the uptime clock, which
    /// is also what deadlines, SLO buckets, and checkpoint ages use.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Age of the newest checkpoint on the uptime clock.
    fn checkpoint_age_ms(&self, snapshot: &SolveSnapshot) -> Option<u64> {
        snapshot
            .last_checkpoint_at_ms
            .map(|at| self.now_ms().saturating_sub(at))
    }

    /// One event into the serve-subsystem flight ring.
    fn flight_serve(&self, key: &str, value: u64) {
        self.flight.record(
            "serve",
            TraceEvent::App {
                round: 0,
                node: 0,
                key: key.to_string(),
                value,
            },
        );
    }

    /// Dumps the flight ring if a dump path is configured.
    fn dump_flight(&self) {
        if let Some(path) = &self.config.flight_path {
            if self.flight.dump_to(path).is_ok() {
                self.metrics.serve.flight_dumps_total.inc();
            }
        }
    }

    fn metrics_report(&self) -> MetricsReport {
        let snapshot = self.snapshot();
        let now_ms = self.now_ms();
        let (burn_fast, burn_slow) = self.slo.burn_rates(now_ms);
        MetricsReport {
            snapshot: self.metrics.registry.snapshot(),
            uptime_ms: now_ms,
            last_checkpoint_age_ms: self.checkpoint_age_ms(&snapshot),
            burn_fast,
            burn_slow,
        }
    }

    fn slo_flags(snapshot: &SolveSnapshot) -> SloFlags {
        match &snapshot.result {
            Some(run) => SloFlags {
                degraded: !run.degradation.is_clean(),
                resumed: snapshot.resumed,
                walks_lost: run.degradation.walks_lost,
                count_cells_missing: run.degradation.count_cells_missing,
            },
            None => SloFlags {
                resumed: snapshot.resumed,
                ..SloFlags::default()
            },
        }
    }

    fn health(&self) -> HealthReport {
        let snapshot = self.snapshot();
        let state = if self.draining.load(Ordering::SeqCst) {
            DaemonState::Draining
        } else if snapshot.result.is_some() {
            DaemonState::Serving
        } else {
            DaemonState::Solving
        };
        let now_ms = self.now_ms();
        let (burn_fast, burn_slow) = self.slo.burn_rates(now_ms);
        HealthReport {
            state,
            ready: snapshot.result.is_some() && !self.draining.load(Ordering::SeqCst),
            phase: snapshot.phase,
            rounds_completed: snapshot.rounds_completed,
            slo: Shared::slo_flags(&snapshot),
            uptime_ms: now_ms,
            last_checkpoint_age_ms: self.checkpoint_age_ms(&snapshot),
            burn_fast,
            burn_slow,
        }
    }

    fn stats(&self) -> ServeStats {
        let snapshot = self.snapshot();
        ServeStats {
            requests_served: self.counters.served.load(Ordering::Relaxed),
            requests_overloaded: self.counters.overloaded.load(Ordering::Relaxed),
            requests_timed_out: self.counters.timed_out.load(Ordering::Relaxed),
            solve_rounds: snapshot.rounds_completed,
            checkpoints_written: snapshot.checkpoints_written,
            checkpoint_overhead_us: snapshot.checkpoint_overhead_us,
            uptime_ms: self.now_ms(),
            last_checkpoint_age_ms: self.checkpoint_age_ms(&snapshot),
        }
    }

    /// Answers an admitted query from the published solve snapshot.
    fn answer(&self, request: &Request) -> Response {
        let snapshot = self.snapshot();
        // Service counters are answerable in every state — they are how
        // an operator watches the solve make progress.
        if matches!(request, Request::Stats) {
            return Response::Stats(self.stats());
        }
        if let Some(e) = &snapshot.error {
            return Response::Error {
                reason: format!("solve failed: {e}"),
            };
        }
        let slo = Shared::slo_flags(&snapshot);
        let Some(run) = &snapshot.result else {
            return Response::NotReady {
                retry_after_ms: self.config.retry_after_ms,
            };
        };
        match request {
            Request::Centrality { node } => {
                if *node >= run.centrality.len() {
                    Response::Error {
                        reason: format!("node {node} out of range (n={})", run.centrality.len()),
                    }
                } else {
                    Response::Value {
                        node: *node,
                        value: run.centrality[*node],
                        slo,
                    }
                }
            }
            Request::TopK { k } => {
                let nodes = run.centrality.top_k((*k).min(run.centrality.len()));
                let top = nodes.into_iter().map(|v| (v, run.centrality[v])).collect();
                Response::Ranking { top, slo }
            }
            // Stats answered above; health and admin never reach the
            // queue.
            _ => Response::Error {
                reason: "request not answerable by a worker".to_string(),
            },
        }
    }
}

struct Job {
    env: RequestEnvelope,
    admitted: Instant,
    reply: SyncSender<Response>,
}

/// A running daemon.
pub struct Daemon {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    flight_watcher: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener, spawns the solver, the workers, the accept
    /// loop, and (when a flight path is configured) the periodic
    /// flight-dump watcher.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServeConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // One clock for everything time-shaped: deadlines, uptime, SLO
        // buckets, and checkpoint ages all subtract from this instant.
        let started = Instant::now();
        let metrics = DaemonMetrics::new();
        let flight = FlightRecorder::default();
        let solver = BackgroundSolver::spawn_with(
            config.solver.clone(),
            SolverHooks {
                epoch: started,
                metrics: Some(metrics.clone()),
                flight: Some(flight.clone()),
            },
        );
        let slo = SloTracker::new(config.slo);
        let shared = Arc::new(Shared {
            counters: Counters {
                served: AtomicU64::new(0),
                overloaded: AtomicU64::new(0),
                timed_out: AtomicU64::new(0),
            },
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            started,
            solver: Mutex::new(solver),
            addr,
            metrics,
            slo,
            flight,
            config,
        });

        let (tx, rx) = mpsc::sync_channel::<Job>(shared.config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::new();
        for _ in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };

        let flight_watcher = shared.config.flight_path.as_ref().map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || flight_watch_loop(&shared))
        });

        Ok(Daemon {
            shared,
            acceptor: Some(acceptor),
            workers,
            flight_watcher,
        })
    }

    /// The live-metrics bundle (the same registry `Request::Metrics`
    /// snapshots) — for embedding hosts and tests.
    pub fn metrics(&self) -> &DaemonMetrics {
        &self.shared.metrics
    }

    /// The flight recorder — for embedding hosts that want to dump on
    /// their own triggers (e.g. a panic hook).
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until an admin drain/shutdown stops the daemon, then joins
    /// every thread.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.flight_watcher.take() {
            let _ = handle.join();
        }
    }

    /// Initiates a drain as if an admin request had arrived.
    pub fn drain(&self) {
        initiate_drain(&self.shared);
    }
}

/// Flips the daemon into draining, flushes the solve (final checkpoint +
/// trace close), and wakes the accept loop so it can exit. Idempotent.
fn initiate_drain(shared: &Arc<Shared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.flight_serve("drain", shared.now_ms());
    shared.solver.lock().expect("solver handle lock").drain();
    shared.shutdown.store(true, Ordering::SeqCst);
    // Final flight dump with the drain event and the solver's terminal
    // events in the rings.
    shared.dump_flight();
    // Self-connect to unblock the blocking accept.
    let _ = TcpStream::connect(shared.addr);
}

/// Periodic flight dumps until shutdown. This cadence — not the drain
/// hook — is what survives `kill -9`.
fn flight_watch_loop(shared: &Arc<Shared>) {
    let every = Duration::from_millis(shared.config.flight_dump_every_ms.max(50));
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(every);
        shared.dump_flight();
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = rx.lock().expect("worker queue lock");
            guard.recv_timeout(Duration::from_millis(50))
        };
        match job {
            Ok(job) => {
                shared.metrics.serve.queue_depth.dec();
                let deadline = Duration::from_millis(u64::from(job.env.deadline_ms));
                // Expired while queued: answer the typed timeout rather
                // than serving a result the client stopped waiting for.
                if job.admitted.elapsed() >= deadline {
                    let _ = job.reply.try_send(Response::Timeout {
                        deadline_ms: job.env.deadline_ms,
                    });
                    continue;
                }
                if shared.config.work_delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(shared.config.work_delay_ms));
                }
                let response = shared.answer(&job.env.request);
                if matches!(response, Response::Value { .. } | Response::Ranking { .. }) {
                    shared.counters.served.fetch_add(1, Ordering::Relaxed);
                }
                let _ = job.reply.try_send(response);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, tx: &SyncSender<Job>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = handle_connection(&shared, stream, &tx);
        });
    }
}

/// Serves one client connection: a loop of request frames answered in
/// order. Returns on socket close or a fatal protocol error.
fn handle_connection(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    tx: &SyncSender<Job>,
) -> Result<(), ProtocolError> {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            // Clean close or half-open teardown: just drop the
            // connection. Anything else is answered typed below.
            Err(ProtocolError::Io(_)) => return Ok(()),
            Err(e) => {
                let reason = e.to_string();
                let _ = write_frame(&mut stream, &encode_response(&Response::Error { reason }));
                return Err(e);
            }
        };
        let env = match decode_request(&payload) {
            Ok(env) => env,
            Err(e) => {
                let reason = e.to_string();
                write_frame(&mut stream, &encode_response(&Response::Error { reason }))?;
                continue;
            }
        };
        let response = dispatch(shared, env, tx);
        let exit = matches!(response, Response::AdminOk);
        write_frame(&mut stream, &encode_response(&response))?;
        if exit && shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Routes one request: admin, health, and metrics inline, queries
/// through the bounded queue with deadline enforcement.
///
/// The four `serve_requests_*` counters partition exactly: every query
/// that reaches the queueing path below increments `requests_total` and
/// exactly one of `answered` / `timed_out` / `shed` — the invariant the
/// CI smoke test asserts on a live daemon.
fn dispatch(shared: &Arc<Shared>, mut env: RequestEnvelope, tx: &SyncSender<Job>) -> Response {
    match env.request {
        Request::Health => return Response::Health(shared.health()),
        Request::Metrics => return Response::Metrics(Box::new(shared.metrics_report())),
        Request::Drain | Request::Shutdown => {
            initiate_drain(shared);
            return Response::AdminOk;
        }
        _ => {}
    }
    if shared.draining.load(Ordering::SeqCst) {
        return Response::Draining;
    }
    if env.deadline_ms == 0 {
        env.deadline_ms = shared.config.default_deadline_ms;
    }
    let m = &shared.metrics.serve;
    m.requests_total.inc();
    let deadline_ms = env.deadline_ms;
    let t0 = Instant::now();
    let finish = |response: Response| {
        let latency_us = t0.elapsed().as_micros() as u64;
        m.latency_us.record(latency_us);
        let timed_out = matches!(response, Response::Timeout { .. });
        let shed = matches!(response, Response::Overloaded { .. } | Response::Draining);
        if timed_out {
            m.timed_out_total.inc();
        } else if shed {
            m.shed_total.inc();
        } else {
            m.answered_total.inc();
        }
        match &response {
            Response::Value { slo, .. } | Response::Ranking { slo, .. } if slo.degraded => {
                m.degraded_served_total.inc();
            }
            _ => {}
        }
        // An SLO error: the client did not get an answer, or got it
        // slower than the latency objective.
        let error = timed_out || shed || latency_us / 1000 > shared.config.slo.latency_objective_ms;
        shared.slo.record(shared.now_ms(), error);
        if timed_out {
            shared.flight_serve("timeout", u64::from(deadline_ms));
        } else if shed {
            shared.flight_serve("shed", 1);
        }
        response
    };
    let deadline = Duration::from_millis(u64::from(env.deadline_ms));
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
    let job = Job {
        env,
        admitted: Instant::now(),
        reply: reply_tx,
    };
    // Inc before try_send: a worker may pop the job (and dec) the
    // instant it lands, and the gauge saturates at zero, so inc-after
    // would leak one permanently per race.
    shared.metrics.serve.queue_depth.inc();
    if let Err(e) = tx.try_send(job) {
        shared.metrics.serve.queue_depth.dec();
        return match e {
            // Queue full: shed, never buffer.
            TrySendError::Full(_) => {
                shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                finish(Response::Overloaded {
                    retry_after_ms: shared.config.retry_after_ms,
                })
            }
            TrySendError::Disconnected(_) => finish(Response::Draining),
        };
    }
    match reply_rx.recv_timeout(deadline) {
        Ok(response) => {
            if matches!(response, Response::Timeout { .. }) {
                shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
            }
            finish(response)
        }
        Err(_) => {
            // Worker still busy past the deadline (or gone): typed
            // timeout; the worker's late reply lands in a dead channel.
            shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
            finish(Response::Timeout { deadline_ms })
        }
    }
}
