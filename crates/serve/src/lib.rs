//! `rwbc-serve` — a crash-tolerant centrality daemon.
//!
//! The daemon loads (generates) a graph, runs the distributed RWBC
//! pipeline round-by-round on a background thread via
//! [`StepSolver`](rwbc::distributed::StepSolver), and serves
//! centrality / ranking / stats queries over a length-prefixed,
//! CRC-framed TCP protocol built on the `congest_sim::wire` codecs.
//!
//! Robustness is the point, not the transport:
//!
//! * per-request **deadlines** with typed [`Response::Timeout`] answers;
//! * **admission control**: a bounded queue that sheds with
//!   [`Response::Overloaded`] + retry-after instead of buffering;
//! * a [`Client`] with capped exponential backoff + jitter mirroring
//!   the engine's `Reliable` retransmission schedule;
//! * **periodic atomic checkpoints** of the in-flight solve, so
//!   `kill -9` mid-solve resumes from the last image and converges to
//!   the bit-identical result;
//! * admin **drain/shutdown** that flushes a final checkpoint and
//!   closes the JSONL trace cleanly;
//! * health/readiness wired to the solve's `DegradationReport` — a
//!   degraded result is served with explicit
//!   [`SloFlags`](protocol::SloFlags), never silently;
//! * **live telemetry**: a zero-dependency metrics registry spanning the
//!   request path, the background solve, and the CONGEST engine, scraped
//!   via [`Request::Metrics`](protocol::Request::Metrics) (rendered as
//!   versioned JSON or Prometheus text), multi-window **SLO burn rates**
//!   ([`slo`]), a crash-safe **flight recorder** dumped next to the
//!   checkpoint, and a plain-terminal dashboard ([`top`]).
//!
//! [`Response::Timeout`]: protocol::Response::Timeout
//! [`Response::Overloaded`]: protocol::Response::Overloaded

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod metrics;
pub mod protocol;
pub mod slo;
pub mod solver;
pub mod top;

pub use client::{Client, ClientError, BASE_BACKOFF_MS, MAX_BACKOFF_MS};
pub use daemon::{Daemon, ServeConfig};
pub use metrics::{DaemonMetrics, ServeMetrics};
pub use protocol::{
    DaemonState, HealthReport, MetricsReport, ProtocolError, Request, RequestEnvelope, Response,
    ServeStats, SloFlags,
};
pub use slo::{SloConfig, SloTracker, FAST_WINDOW_S, SLOW_WINDOW_S};
pub use solver::{BackgroundSolver, GraphSpec, SolveSnapshot, SolverConfig, SolverHooks};
