//! The background solve: a [`StepSolver`] driven round-by-round on its
//! own thread, with periodic atomic checkpoints and a JSONL trace.
//!
//! The daemon never blocks on the solve — it reads a published
//! [`SolveSnapshot`] under a mutex. Checkpoints are written
//! `tmp + rename`, so a `kill -9` at any instant leaves either the
//! previous or the new image intact, never a torn file; on restart the
//! solver resumes from it and (by the engine's schedule-invariant
//! draws) converges to the bit-identical result an uninterrupted run
//! produces.

use std::fs;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use congest_sim::{FlightRecorder, JsonlTracer, SimConfig, TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rwbc::distributed::DistributedRun;
use rwbc::distributed::{CountMode, DistributedConfig, SolvePhase, StepSolver};
use rwbc::monte_carlo::TargetStrategy;
use rwbc_graph::generators::connected_gnp;
use rwbc_graph::Graph;

use crate::metrics::DaemonMetrics;

/// Deterministic graph recipe, mirroring the bench harness's ER builder
/// (same seed derivation and expected degree) so serve artifacts are
/// directly comparable to solver-side `BENCH_*` scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Node count.
    pub n: usize,
    /// Master seed (the graph generator derives from it).
    pub seed: u64,
}

impl GraphSpec {
    /// Builds the connected Erdős–Rényi graph for this spec.
    ///
    /// # Panics
    ///
    /// Panics if G(n,p) fails to connect within the attempt budget —
    /// impossible at the expected degree `max(6, 1.5·ln n)`.
    pub fn build(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        let deg = (1.5 * (self.n as f64).ln()).max(6.0);
        let p = deg / (self.n as f64 - 1.0);
        connected_gnp(self.n, p, 200, &mut rng).expect("connected G(n,p)")
    }
}

/// Everything the background solve needs.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Graph recipe.
    pub graph: GraphSpec,
    /// Walks per node (Algorithm 1's K).
    pub walks: usize,
    /// Walk truncation length (Algorithm 1's l).
    pub length: usize,
    /// Master seed for the solve (independent of the graph seed).
    pub seed: u64,
    /// Engine worker threads.
    pub threads: usize,
    /// Minimum nodes per engine worker chunk (the parallel fan-out's
    /// granularity knob); 0 keeps the engine default.
    pub granularity: usize,
    /// Checkpoint image path; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Rounds between periodic checkpoints.
    pub checkpoint_every_rounds: usize,
    /// JSONL trace path; `None` disables tracing.
    pub trace_path: Option<PathBuf>,
    /// Test hook: sleep this long after every round, so integration
    /// tests can reliably catch (and kill) the daemon mid-solve.
    pub slow_ms: u64,
    /// Sketch precision for the count phase; 0 keeps exact counting.
    /// Sketch mode trades bounded accuracy for a far shorter, lighter
    /// count phase — the solve (and its periodic checkpoints) shrink
    /// accordingly.
    pub sketch_precision: u8,
}

impl SolverConfig {
    /// A small default workload on an ER graph.
    pub fn new(n: usize, seed: u64) -> SolverConfig {
        SolverConfig {
            graph: GraphSpec { n, seed },
            walks: 4,
            length: 64,
            seed,
            threads: 1,
            granularity: 0,
            checkpoint_path: None,
            checkpoint_every_rounds: 64,
            trace_path: None,
            slow_ms: 0,
            sketch_precision: 0,
        }
    }

    /// The pipeline config this solver runs (fixed target 0, like the
    /// bench scenarios, so runs are reproducible from the spec alone).
    pub fn distributed_config(&self) -> DistributedConfig {
        let mut builder = DistributedConfig::builder()
            .walks(self.walks)
            .length(self.length)
            .seed(self.seed)
            .target(TargetStrategy::Fixed(0));
        if self.sketch_precision > 0 {
            builder = builder.count_mode(CountMode::Sketch {
                precision: self.sketch_precision,
            });
        }
        let mut cfg = builder.build().expect("solver workload params");
        cfg.sim = SimConfig::default().with_threads(self.threads);
        if self.granularity > 0 {
            cfg.sim = cfg.sim.with_granularity(self.granularity);
        }
        cfg
    }
}

/// Published view of the in-flight (or finished) solve.
#[derive(Debug, Clone, Default)]
pub struct SolveSnapshot {
    /// Pipeline phase tag (0 walk, 1 count, 2 done, 3 failed).
    pub phase: u8,
    /// CONGEST rounds completed.
    pub rounds_completed: u64,
    /// Whether this solve resumed from a checkpoint image.
    pub resumed: bool,
    /// Periodic + final checkpoints written.
    pub checkpoints_written: u64,
    /// Total microseconds spent serializing + persisting checkpoints.
    pub checkpoint_overhead_us: u64,
    /// Wall-clock microseconds the solve loop has run.
    pub solve_elapsed_us: u64,
    /// When the newest checkpoint landed, milliseconds on the host's
    /// epoch clock (see [`SolverHooks::epoch`]); `None` until one does.
    pub last_checkpoint_at_ms: Option<u64>,
    /// The finished run, once the pipeline drained.
    pub result: Option<Arc<DistributedRun>>,
    /// Terminal failure, if the solve died.
    pub error: Option<String>,
}

/// Host-provided observability hooks for the solver thread. All are
/// optional; [`BackgroundSolver::spawn`] uses the defaults.
#[derive(Debug, Clone)]
pub struct SolverHooks {
    /// The clock origin checkpoint timestamps are measured against —
    /// the daemon passes the same `Instant` its deadlines and uptime
    /// use, so `last_checkpoint_at_ms` subtracts cleanly from it.
    pub epoch: Instant,
    /// Live-metrics handles: the engine bundle is attached to each
    /// phase's simulator, the `solver_*` instruments are fed directly.
    pub metrics: Option<DaemonMetrics>,
    /// Flight recorder fed `solver`-subsystem events (phase
    /// transitions, checkpoints, terminal outcome).
    pub flight: Option<FlightRecorder>,
}

impl Default for SolverHooks {
    fn default() -> SolverHooks {
        SolverHooks {
            epoch: Instant::now(),
            metrics: None,
            flight: None,
        }
    }
}

/// Handle to the solver thread.
pub struct BackgroundSolver {
    snapshot: Arc<Mutex<SolveSnapshot>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Converts a phase into its wire tag.
fn phase_tag(phase: SolvePhase) -> u8 {
    match phase {
        SolvePhase::Walk => 0,
        SolvePhase::Count => 1,
        SolvePhase::Done => 2,
        SolvePhase::Failed => 3,
    }
}

/// Writes a checkpoint image atomically (`path.tmp` + rename).
fn persist_checkpoint(path: &Path, image: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, image)?;
    fs::rename(&tmp, path)
}

impl BackgroundSolver {
    /// Builds the graph, restores from the checkpoint if a valid image
    /// exists, and starts stepping on a background thread.
    pub fn spawn(config: SolverConfig) -> BackgroundSolver {
        BackgroundSolver::spawn_with(config, SolverHooks::default())
    }

    /// [`BackgroundSolver::spawn`] with host observability hooks.
    pub fn spawn_with(config: SolverConfig, hooks: SolverHooks) -> BackgroundSolver {
        let snapshot = Arc::new(Mutex::new(SolveSnapshot::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&snapshot);
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || run_solver(&config, &shared, &stop_flag, &hooks));
        BackgroundSolver {
            snapshot,
            stop,
            handle: Some(handle),
        }
    }

    /// The current published view.
    pub fn snapshot(&self) -> SolveSnapshot {
        self.snapshot.lock().expect("solver snapshot lock").clone()
    }

    /// Signals the solve to stop at the next round boundary, flush a
    /// final checkpoint, close the trace, and joins the thread. Idempotent.
    pub fn drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Whether the solver thread has exited.
    pub fn is_finished(&self) -> bool {
        self.handle.as_ref().is_none_or(|h| h.is_finished())
    }
}

impl Drop for BackgroundSolver {
    fn drop(&mut self) {
        self.drain();
    }
}

fn publish<F: FnOnce(&mut SolveSnapshot)>(shared: &Mutex<SolveSnapshot>, update: F) {
    update(&mut shared.lock().expect("solver snapshot lock"));
}

fn run_solver(
    config: &SolverConfig,
    shared: &Mutex<SolveSnapshot>,
    stop: &AtomicBool,
    hooks: &SolverHooks,
) {
    let started = Instant::now();
    let flight_solver = |round: usize, key: &str, value: u64| {
        if let Some(fr) = &hooks.flight {
            fr.record(
                "solver",
                TraceEvent::App {
                    round,
                    node: 0,
                    key: key.to_string(),
                    value,
                },
            );
        }
    };
    let graph = config.graph.build();
    let dcfg = config.distributed_config();

    let mut tracer: Option<JsonlTracer<BufWriter<fs::File>>> =
        config
            .trace_path
            .as_ref()
            .and_then(|path| match fs::File::create(path) {
                Ok(file) => Some(JsonlTracer::new(BufWriter::new(file))),
                Err(_) => None,
            });

    // Resume from a persisted image when one restores cleanly; any
    // corruption (torn write from a crash mid-`fs::write` cannot happen —
    // rename is atomic — but a stale/mangled file can) falls back to a
    // fresh solve rather than refusing service.
    let mut resumed = false;
    let mut solver = match config
        .checkpoint_path
        .as_ref()
        .and_then(|p| fs::read(p).ok())
        .and_then(|image| StepSolver::restore(&graph, dcfg.clone(), &image).ok())
    {
        Some(solver) => {
            resumed = true;
            solver
        }
        None => match StepSolver::new(&graph, dcfg) {
            Ok(solver) => solver,
            Err(e) => {
                flight_solver(0, "solve_failed", 0);
                publish(shared, |s| s.error = Some(e.to_string()));
                return;
            }
        },
    };
    if let Some(m) = &hooks.metrics {
        solver.set_metrics(m.engine.clone());
        m.serve
            .solver_phase
            .set(u64::from(phase_tag(solver.phase())));
    }
    flight_solver(
        solver.rounds_completed(),
        if resumed { "resumed" } else { "started" },
        solver.rounds_completed() as u64,
    );

    if let Some(tr) = tracer.as_mut() {
        tr.record(&TraceEvent::PhaseStart {
            name: "serve-solve".to_string(),
        });
        if resumed {
            tr.record(&TraceEvent::App {
                round: solver.rounds_completed(),
                node: 0,
                key: "resumed-from-checkpoint".to_string(),
                value: solver.rounds_completed() as u64,
            });
        }
    }
    publish(shared, |s| {
        s.resumed = resumed;
        s.phase = phase_tag(solver.phase());
        s.rounds_completed = solver.rounds_completed() as u64;
    });

    let mut checkpoints_written = 0u64;
    let mut overhead_us = 0u64;
    let mut last_checkpoint_at_ms: Option<u64> = None;
    let write_checkpoint = |solver: &StepSolver<'_>,
                            tracer: &mut Option<JsonlTracer<BufWriter<fs::File>>>,
                            checkpoints_written: &mut u64,
                            overhead_us: &mut u64,
                            last_checkpoint_at_ms: &mut Option<u64>| {
        let Some(path) = config.checkpoint_path.as_ref() else {
            return;
        };
        let t0 = Instant::now();
        let Ok(image) = solver.checkpoint() else {
            return;
        };
        if persist_checkpoint(path, &image).is_ok() {
            let took_us = t0.elapsed().as_micros() as u64;
            *overhead_us += took_us;
            *checkpoints_written += 1;
            *last_checkpoint_at_ms = Some(hooks.epoch.elapsed().as_millis() as u64);
            if let Some(m) = &hooks.metrics {
                m.serve.checkpoints_total.inc();
                m.serve.checkpoint_duration_us.record(took_us);
            }
            flight_solver(solver.rounds_completed(), "checkpoint", image.len() as u64);
            if let Some(tr) = tracer.as_mut() {
                tr.record(&TraceEvent::App {
                    round: solver.rounds_completed(),
                    node: 0,
                    key: "checkpoint".to_string(),
                    value: image.len() as u64,
                });
            }
        }
    };

    let mut last_phase = phase_tag(solver.phase());
    let outcome = loop {
        if stop.load(Ordering::SeqCst) {
            break Ok(false);
        }
        match solver.step() {
            Ok(done) => {
                let rounds = solver.rounds_completed();
                let phase = phase_tag(solver.phase());
                if phase != last_phase {
                    last_phase = phase;
                    flight_solver(rounds, "phase", u64::from(phase));
                    if let Some(m) = &hooks.metrics {
                        m.serve.solver_phase.set(u64::from(phase));
                    }
                }
                if config.slow_ms > 0 {
                    std::thread::sleep(Duration::from_millis(config.slow_ms));
                }
                if !done
                    && config.checkpoint_every_rounds > 0
                    && rounds % config.checkpoint_every_rounds == 0
                {
                    write_checkpoint(
                        &solver,
                        &mut tracer,
                        &mut checkpoints_written,
                        &mut overhead_us,
                        &mut last_checkpoint_at_ms,
                    );
                }
                publish(shared, |s| {
                    s.phase = phase;
                    s.rounds_completed = rounds as u64;
                    s.checkpoints_written = checkpoints_written;
                    s.checkpoint_overhead_us = overhead_us;
                    s.solve_elapsed_us = started.elapsed().as_micros() as u64;
                    s.last_checkpoint_at_ms = last_checkpoint_at_ms;
                });
                if done {
                    break Ok(true);
                }
            }
            Err(e) => break Err(e.to_string()),
        }
    };

    // Final checkpoint: on completion it carries the finished result (so
    // a restart serves immediately without re-solving), on drain it
    // carries the exact round boundary to resume from.
    if outcome.is_ok() {
        write_checkpoint(
            &solver,
            &mut tracer,
            &mut checkpoints_written,
            &mut overhead_us,
            &mut last_checkpoint_at_ms,
        );
    }

    if let Some(mut tr) = tracer.take() {
        tr.record(&TraceEvent::PhaseEnd {
            name: "serve-solve".to_string(),
            rounds: solver.rounds_completed(),
            elapsed_us: started.elapsed().as_micros() as u64,
        });
        if let Ok(out) = tr.finish() {
            use std::io::Write;
            let mut out = out;
            let _ = out.flush();
        }
    }

    let final_phase = phase_tag(solver.phase());
    if let Some(m) = &hooks.metrics {
        m.serve.solver_phase.set(u64::from(final_phase));
    }
    flight_solver(
        solver.rounds_completed(),
        match &outcome {
            Ok(true) => "done",
            Ok(false) => "drained",
            Err(_) => "solve_failed",
        },
        solver.rounds_completed() as u64,
    );
    publish(shared, |s| {
        s.phase = final_phase;
        s.rounds_completed = solver.rounds_completed() as u64;
        s.checkpoints_written = checkpoints_written;
        s.checkpoint_overhead_us = overhead_us;
        s.solve_elapsed_us = started.elapsed().as_micros() as u64;
        s.last_checkpoint_at_ms = last_checkpoint_at_ms;
        match outcome {
            Ok(true) => s.result = solver.result().map(|run| Arc::new(run.clone())),
            Ok(false) => {}
            Err(e) => s.error = Some(e),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwbc::distributed::approximate;

    #[test]
    fn background_solve_matches_the_driver() {
        let config = SolverConfig::new(32, 7);
        let expected = approximate(&config.graph.build(), &config.distributed_config()).unwrap();
        let solver = BackgroundSolver::spawn(config);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let snap = solver.snapshot();
            if let Some(run) = snap.result {
                assert_eq!(*run, expected);
                assert!(!snap.resumed);
                break;
            }
            assert!(snap.error.is_none(), "solve failed: {:?}", snap.error);
            assert!(Instant::now() < deadline, "solve did not finish in time");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn drain_persists_a_resumable_checkpoint() {
        let dir = std::env::temp_dir().join(format!("rwbc-serve-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("drain.ckpt");
        let mut config = SolverConfig::new(48, 11);
        config.checkpoint_path = Some(ckpt.clone());
        config.checkpoint_every_rounds = 4;
        config.slow_ms = 2;
        let expected = approximate(&config.graph.build(), &config.distributed_config()).unwrap();

        let mut solver = BackgroundSolver::spawn(config.clone());
        // Let it make some progress, then drain mid-solve.
        std::thread::sleep(Duration::from_millis(60));
        solver.drain();
        let snap = solver.snapshot();
        assert!(snap.error.is_none());
        assert!(ckpt.exists(), "drain must flush a final checkpoint");

        // A fresh solver resumes from the image and lands on the
        // bit-identical result.
        config.slow_ms = 0;
        let resumed = BackgroundSolver::spawn(config);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let snap = resumed.snapshot();
            if let Some(run) = snap.result {
                assert_eq!(*run, expected);
                break;
            }
            assert!(snap.error.is_none(), "resume failed: {:?}", snap.error);
            assert!(Instant::now() < deadline, "resume did not finish in time");
            std::thread::sleep(Duration::from_millis(5));
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
