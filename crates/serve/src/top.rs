//! `rwbc-top` — a live plain-terminal dashboard over a running daemon.
//!
//! Polls [`Request::Metrics`](crate::protocol::Request::Metrics) at a
//! fixed cadence and renders rates (from counter deltas between
//! scrapes), latency quantiles, solver progress, and SLO burn rates as
//! plain text — no terminal library, just an optional ANSI
//! clear-and-home so it works in a pipe, a CI log, or a real terminal
//! alike.

use std::io::Write;
use std::time::Duration;

use crate::client::Client;
use crate::protocol::{MetricsReport, Response};

/// Dashboard configuration.
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Daemon address.
    pub addr: String,
    /// Milliseconds between scrapes.
    pub interval_ms: u64,
    /// Ticks to render before exiting; 0 runs until the daemon goes
    /// away.
    pub iterations: u64,
    /// Emit ANSI clear-and-home before each frame (off for pipes/CI).
    pub clear_screen: bool,
}

impl Default for TopOptions {
    fn default() -> TopOptions {
        TopOptions {
            addr: String::new(),
            interval_ms: 1000,
            iterations: 0,
            clear_screen: true,
        }
    }
}

/// Phase-tag display name.
fn phase_name(tag: u64) -> &'static str {
    match tag {
        0 => "walk",
        1 => "count",
        2 => "done",
        _ => "failed",
    }
}

/// Human-ish duration: `12.3s`, `4m02s`.
fn fmt_ms(ms: u64) -> String {
    if ms < 60_000 {
        format!("{:.1}s", ms as f64 / 1000.0)
    } else {
        format!("{}m{:02}s", ms / 60_000, (ms % 60_000) / 1000)
    }
}

/// Microseconds with a sensible unit.
fn fmt_us(us: u64) -> String {
    if us < 1000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Per-second rate of a counter delta over `elapsed_ms`.
fn rate(prev: u64, now: u64, elapsed_ms: u64) -> f64 {
    if elapsed_ms == 0 {
        return 0.0;
    }
    now.saturating_sub(prev) as f64 * 1000.0 / elapsed_ms as f64
}

/// Renders one dashboard frame. `prev` (the previous scrape and the
/// milliseconds since it) turns monotonic counters into rates.
pub fn render_frame(
    addr: &str,
    report: &MetricsReport,
    prev: Option<(&MetricsReport, u64)>,
) -> String {
    let snap = &report.snapshot;
    let get = |name: &str| snap.counter(name).unwrap_or(0);
    let prev_get = |name: &str| -> u64 {
        prev.and_then(|(p, _)| p.snapshot.counter(name))
            .unwrap_or(0)
    };
    let elapsed_ms = prev.map_or(0, |(_, ms)| ms);
    let rates = |name: &str| -> String {
        if prev.is_some() {
            format!("{:.1}/s", rate(prev_get(name), get(name), elapsed_ms))
        } else {
            "-".to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "rwbc-top {addr}  uptime {}  burn fast={:.2} slow={:.2}\n",
        fmt_ms(report.uptime_ms),
        report.burn_fast,
        report.burn_slow,
    ));
    out.push_str(&format!(
        "solver   phase={} rounds={} msgs={} checkpoints={} age={}\n",
        phase_name(snap.gauge("solver_phase").unwrap_or(3)),
        get("engine_rounds_total"),
        get("engine_messages_total"),
        get("solver_checkpoints_total"),
        report
            .last_checkpoint_age_ms
            .map_or_else(|| "-".to_string(), fmt_ms),
    ));
    out.push_str(&format!(
        "requests total={} ({}) answered={} timed_out={} shed={} queue={}\n",
        get("serve_requests_total"),
        rates("serve_requests_total"),
        get("serve_requests_answered_total"),
        get("serve_requests_timed_out_total"),
        get("serve_requests_shed_total"),
        snap.gauge("serve_queue_depth").unwrap_or(0),
    ));
    if let Some(latency) = snap.histogram("serve_request_latency_us") {
        out.push_str(&format!(
            "latency  p50={} p99={} max={} (n={})\n",
            fmt_us(latency.quantile(0.50)),
            fmt_us(latency.quantile(0.99)),
            fmt_us(latency.max()),
            latency.samples(),
        ));
    }
    out
}

/// Polls the daemon and writes frames to `out` until the iteration
/// budget is spent or the daemon becomes unreachable.
///
/// # Errors
///
/// A scrape failure before the *first* frame (nothing ever rendered) is
/// an error; after that the dashboard reports the disconnect and exits
/// cleanly — a drained daemon is a normal way for `top` to end.
pub fn run<W: Write>(opts: &TopOptions, out: &mut W) -> Result<(), String> {
    let client = Client::new(opts.addr.clone());
    let mut prev: Option<MetricsReport> = None;
    let mut tick = 0u64;
    loop {
        let report = match client.metrics() {
            Ok(Response::Metrics(report)) => *report,
            Ok(other) => return Err(format!("unexpected metrics response: {other:?}")),
            Err(e) if prev.is_none() => return Err(format!("scrape failed: {e}")),
            Err(e) => {
                let _ = writeln!(out, "daemon went away ({e}); exiting");
                return Ok(());
            }
        };
        if opts.clear_screen {
            let _ = write!(out, "\x1b[2J\x1b[H");
        }
        let frame = render_frame(
            &opts.addr,
            &report,
            prev.as_ref().map(|p| (p, opts.interval_ms)),
        );
        let _ = out.write_all(frame.as_bytes());
        let _ = out.flush();
        prev = Some(report);
        tick += 1;
        if opts.iterations > 0 && tick >= opts.iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::Registry;

    fn report(requests: u64, uptime_ms: u64) -> MetricsReport {
        let registry = Registry::new();
        registry.counter("serve_requests_total").add(requests);
        registry.counter("engine_rounds_total").add(640);
        registry.gauge("solver_phase").set(1);
        registry.histogram("serve_request_latency_us").record(900);
        MetricsReport {
            snapshot: registry.snapshot(),
            uptime_ms,
            last_checkpoint_age_ms: Some(1500),
            burn_fast: 2.5,
            burn_slow: 0.5,
        }
    }

    #[test]
    fn frame_shows_rates_once_a_previous_scrape_exists() {
        let first = report(100, 10_000);
        let second = report(150, 11_000);
        let cold = render_frame("127.0.0.1:9", &first, None);
        assert!(cold.contains("total=100 (-)"), "{cold}");
        assert!(cold.contains("phase=count"), "{cold}");
        assert!(cold.contains("burn fast=2.50 slow=0.50"), "{cold}");
        assert!(cold.contains("age=1.5s"), "{cold}");
        let warm = render_frame("127.0.0.1:9", &second, Some((&first, 1000)));
        assert!(warm.contains("total=150 (50.0/s)"), "{warm}");
        assert!(warm.contains("p50=900us"), "{warm}");
    }

    #[test]
    fn units_render_readably() {
        assert_eq!(fmt_ms(1500), "1.5s");
        assert_eq!(fmt_ms(125_000), "2m05s");
        assert_eq!(fmt_us(999), "999us");
        assert_eq!(fmt_us(2500), "2.5ms");
        assert_eq!(fmt_us(3_000_000), "3.00s");
    }
}
