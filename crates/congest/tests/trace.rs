//! Property-based tests on the tracing layer: determinism across thread
//! counts, zero observable effect of the no-op tracer, and JSONL schema
//! round-tripping for every event an adversarial run can produce.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::algorithms::Flood;
use congest_sim::trace::jsonl::{decode_event, encode_event};
use congest_sim::{
    FaultPlan, MemoryTracer, NodeCrash, NoopTracer, Reliable, SimConfig, Simulator, TraceEvent,
};
use rwbc_graph::generators::random_tree;
use rwbc_graph::Graph;

/// Strategy: a random connected graph big enough (n >= 64) that
/// `threads > 1` actually takes the simulator's parallel path.
fn arb_large_graph() -> impl Strategy<Value = Graph> {
    (64usize..96, 0u64..200, 0usize..40).prop_map(|(n, seed, extra)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng).unwrap();
        let mut edges = tree.edge_vec();
        let mut tries = 0;
        while edges.len() < tree.edge_count() + extra && tries < 256 {
            tries += 1;
            let u = rand::Rng::gen_range(&mut rng, 0..n);
            let v = rand::Rng::gen_range(&mut rng, 0..n);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !edges.contains(&key) {
                edges.push(key);
            }
        }
        Graph::from_edges(n, edges).unwrap()
    })
}

fn traced_run(g: &Graph, cfg: SimConfig) -> (congest_sim::RunStats, Vec<TraceEvent>) {
    let mut tracer = MemoryTracer::new();
    let mut sim = Simulator::new(g, cfg, |v| Flood::new(v, 0)).with_tracer(&mut tracer);
    let stats = sim.run().unwrap();
    drop(sim);
    let mut events = tracer.into_events();
    for e in &mut events {
        e.strip_wall_clock();
    }
    (stats, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn trace_content_is_identical_at_any_thread_count(
        g in arb_large_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.3,
        dup_p in 0.0f64..0.2,
    ) {
        // Events are collected per worker chunk and spliced back in node
        // order, so a fixed (graph, seed, plan) must yield the same event
        // sequence — not just the same aggregate stats — at 1 and 8 threads.
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p);
        let run = |threads: usize| {
            traced_run(
                &g,
                SimConfig::default()
                    .with_seed(seed)
                    .with_threads(threads)
                    .with_faults(faults.clone()),
            )
        };
        let (s1, e1) = run(1);
        let (s8, e8) = run(8);
        prop_assert_eq!(s1, s8);
        prop_assert_eq!(e1.len(), e8.len());
        for (i, (a, b)) in e1.iter().zip(&e8).enumerate() {
            prop_assert_eq!(a, b, "event {} diverges", i);
        }
    }

    #[test]
    fn noop_tracer_leaves_stats_and_checkpoints_byte_identical(
        g in arb_large_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.3,
        cut_after in 0usize..6,
    ) {
        // The no-op tracer must not perturb anything observable: run stats,
        // per-node outcomes, and the serialized checkpoint image must all be
        // byte-identical to an untraced run cut at the same round.
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::default().with_drop_probability(drop_p));
        let run = |tracer: Option<&mut NoopTracer>| {
            let mut sim = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
            if let Some(tr) = tracer {
                sim = sim.with_tracer(tr);
            }
            for _ in 0..cut_after {
                if sim.step().unwrap() {
                    break;
                }
            }
            let image = sim.checkpoint();
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(Flood::informed_at).collect();
            (image, stats, informed)
        };
        let (img_plain, stats_plain, informed_plain) = run(None);
        let mut noop = NoopTracer;
        let (img_traced, stats_traced, informed_traced) = run(Some(&mut noop));
        prop_assert_eq!(img_plain, img_traced, "checkpoint bytes diverge");
        prop_assert_eq!(stats_plain, stats_traced);
        prop_assert_eq!(informed_plain, informed_traced);
    }

    #[test]
    fn memory_tracer_does_not_change_the_run_it_observes(
        g in arb_large_graph(),
        seed in 0u64..50,
        threads in 1usize..5,
    ) {
        let cfg = SimConfig::default().with_seed(seed).with_threads(threads);
        let mut plain = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
        let stats_plain = plain.run().unwrap();
        let (stats_traced, _) = traced_run(&g, cfg);
        prop_assert_eq!(stats_plain, stats_traced);
    }

    #[test]
    fn every_event_of_a_chaotic_run_round_trips_through_jsonl(
        g in arb_large_graph(),
        seed in 0u64..30,
        drop_p in 0.05f64..0.3,
    ) {
        // Reliable transport over a lossy link with a mid-run crash
        // produces the full event menagerie: drops, retransmissions,
        // suppressed duplicates, node-down/up transitions. All of it must
        // survive encode -> decode exactly.
        let n = g.node_count();
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_node_crash(NodeCrash {
                node: n - 1,
                crash_round: 3,
                recover_round: Some(10),
            });
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_bandwidth_coeff(16)
            .with_faults(faults)
            .with_max_rounds(20_000);
        let mut tracer = MemoryTracer::new();
        let mut sim =
            Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0))).with_tracer(&mut tracer);
        sim.run().unwrap();
        drop(sim);
        for event in tracer.into_events() {
            let line = encode_event(&event);
            let back = decode_event(&line).unwrap();
            prop_assert_eq!(back, event, "line {}", line);
        }
    }
}

#[test]
fn round_aggregates_match_edge_samples() {
    // Within each round the Round event must be the sum of that round's
    // EdgeTraffic samples — the aggregation the CLI timeline relies on.
    let mut rng = StdRng::seed_from_u64(7);
    let tree = random_tree(80, &mut rng).unwrap();
    let (_, events) = traced_run(&tree, SimConfig::default().with_seed(7));
    let mut per_round: std::collections::BTreeMap<usize, (u64, u64)> = Default::default();
    for e in &events {
        if let TraceEvent::EdgeTraffic {
            round,
            messages,
            bits,
            ..
        } = e
        {
            let slot = per_round.entry(*round).or_default();
            slot.0 += *messages as u64;
            slot.1 += *bits as u64;
        }
    }
    let mut checked = 0;
    for e in &events {
        if let TraceEvent::Round {
            round,
            messages,
            bits,
            ..
        } = e
        {
            let (m, b) = per_round.get(round).copied().unwrap_or_default();
            assert_eq!((*messages, *bits), (m, b), "round {round}");
            checked += 1;
        }
    }
    assert!(checked > 0);
}
