//! Property-based tests on the live-metrics layer: snapshot content is
//! bit-identical across thread counts, attaching metrics perturbs
//! nothing observable, and the reliable layer's live counters agree
//! with its end-of-run statistics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::algorithms::Flood;
use congest_sim::{
    EngineMetrics, FaultPlan, Registry, Reliable, ReliableMetrics, SimConfig, Simulator,
};
use rwbc_graph::generators::random_tree;
use rwbc_graph::Graph;

/// Strategy: a random connected graph big enough (n >= 64) that
/// `threads > 1` actually takes the simulator's parallel path.
fn arb_large_graph() -> impl Strategy<Value = Graph> {
    (64usize..96, 0u64..200, 0usize..40).prop_map(|(n, seed, extra)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng).unwrap();
        let mut edges = tree.edge_vec();
        let mut tries = 0;
        while edges.len() < tree.edge_count() + extra && tries < 256 {
            tries += 1;
            let u = rand::Rng::gen_range(&mut rng, 0..n);
            let v = rand::Rng::gen_range(&mut rng, 0..n);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !edges.contains(&key) {
                edges.push(key);
            }
        }
        Graph::from_edges(n, edges).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn metrics_snapshot_is_identical_at_any_thread_count(
        g in arb_large_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.3,
        dup_p in 0.0f64..0.2,
    ) {
        // Engine updates land on the single-threaded commit spine and
        // reliable-layer updates are commutative, so a fixed
        // (graph, seed, plan) must produce a bit-identical registry
        // snapshot at 1 and 8 threads once the run is quiescent.
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p);
        let run = |threads: usize| {
            let registry = Registry::new();
            let engine = EngineMetrics::register(&registry);
            let reliable = ReliableMetrics::register(&registry);
            let cfg = SimConfig::default()
                .with_seed(seed)
                .with_threads(threads)
                // Chunks of 4 nodes, so t=8 gets all 8 workers even on
                // the smallest (64-node) generated graphs.
                .with_granularity(4)
                .with_faults(faults.clone());
            let mut sim = Simulator::new(&g, cfg, |v| {
                Reliable::new(Flood::new(v, 0)).with_metrics(reliable.clone())
            })
            .with_metrics(engine);
            let stats = sim.run().unwrap();
            (stats, registry.snapshot())
        };
        let (s1, m1) = run(1);
        let (s8, m8) = run(8);
        prop_assert_eq!(s1, s8);
        prop_assert_eq!(m1, m8);
    }

    #[test]
    fn attaching_metrics_perturbs_nothing(
        g in arb_large_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.3,
    ) {
        // A run with metrics attached must be observably identical —
        // stats, outcomes, checkpoint bytes — to one without.
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_faults(FaultPlan::default().with_drop_probability(drop_p));
        let run = |with_metrics: bool| {
            let registry = Registry::new();
            let mut sim = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
            if with_metrics {
                sim.set_metrics(EngineMetrics::register(&registry));
            }
            for _ in 0..3 {
                if sim.step().unwrap() {
                    break;
                }
            }
            let image = sim.checkpoint();
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(Flood::informed_at).collect();
            (image, stats, informed)
        };
        prop_assert_eq!(run(false), run(true));
    }

    #[test]
    fn engine_counters_agree_with_run_stats(
        g in arb_large_graph(),
        seed in 0u64..50,
    ) {
        let registry = Registry::new();
        let mut sim = Simulator::new(
            &g,
            SimConfig::default().with_seed(seed),
            |v| Flood::new(v, 0),
        )
        .with_metrics(EngineMetrics::register(&registry));
        let stats = sim.run().unwrap();
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("engine_rounds_total"), Some(stats.rounds as u64));
        prop_assert_eq!(snap.counter("engine_messages_total"), Some(stats.total_messages));
        prop_assert_eq!(snap.counter("engine_bits_total"), Some(stats.total_bits));
        // Everything was delivered: nothing is left in flight.
        prop_assert_eq!(snap.gauge("engine_inbox_depth"), Some(0));
    }
}

#[test]
fn reliable_counters_mirror_fold_stats() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = random_tree(48, &mut rng).unwrap();
    let registry = Registry::new();
    let handles = ReliableMetrics::register(&registry);
    let faults = FaultPlan::default().with_drop_probability(0.25);
    let cfg = SimConfig::default().with_seed(3).with_faults(faults);
    let mut sim = Simulator::new(&g, cfg, |v| {
        Reliable::new(Flood::new(v, 0)).with_metrics(handles.clone())
    });
    let stats = sim.run().unwrap();
    assert!(stats.dropped > 0, "faults should have fired");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("reliable_retransmissions_total"),
        Some(stats.retransmissions)
    );
    assert_eq!(
        snap.counter("reliable_duplicates_suppressed_total"),
        Some(stats.duplicates_suppressed)
    );
    assert_eq!(
        snap.counter("reliable_quarantines_total"),
        Some(stats.dead_links_declared)
    );
    assert_eq!(
        snap.counter("reliable_crc_rejects_total"),
        Some(stats.corrupt_frames_detected)
    );
}
