//! Property-based tests on the simulator's model guarantees.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::algorithms::{BfsTree, Flood, LeaderElect};
use congest_sim::{SimConfig, Simulator};
use rwbc_graph::generators::random_tree;
use rwbc_graph::traversal::bfs_distances;
use rwbc_graph::Graph;

/// Strategy: a small random connected graph.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..16, 0u64..300, 0usize..8).prop_map(|(n, seed, extra)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng).unwrap();
        let mut edges = tree.edge_vec();
        let mut tries = 0;
        while edges.len() < tree.edge_count() + extra && tries < 64 {
            tries += 1;
            let u = rand::Rng::gen_range(&mut rng, 0..n);
            let v = rand::Rng::gen_range(&mut rng, 0..n);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !edges.contains(&key) {
                edges.push(key);
            }
        }
        Graph::from_edges(n, edges).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flood_informs_everyone_in_eccentricity_rounds(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        let source = seed as usize % g.node_count();
        let mut sim = Simulator::new(
            &g,
            SimConfig::default().with_seed(seed),
            |v| Flood::new(v, source),
        );
        let stats = sim.run().unwrap();
        prop_assert!(stats.congest_compliant());
        let dist = bfs_distances(&g, source);
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).informed_at(), dist[v], "node {}", v);
        }
    }

    #[test]
    fn bfs_depths_always_match_centralized(
        g in arb_connected_graph(),
        root_pick in 0usize..16,
    ) {
        let root = root_pick % g.node_count();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| BfsTree::new(v, root));
        let stats = sim.run().unwrap();
        prop_assert!(stats.max_bits_edge_round <= stats.budget_bits);
        let dist = bfs_distances(&g, root);
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).depth(), dist[v]);
        }
    }

    #[test]
    fn leader_election_always_finds_max_id(g in arb_connected_graph()) {
        let n = g.node_count();
        let mut sim = Simulator::new(&g, SimConfig::default(), LeaderElect::new);
        sim.run().unwrap();
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).leader(), n - 1);
        }
    }

    #[test]
    fn thread_count_never_changes_results(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        let run = |threads: usize| {
            let cfg = SimConfig::default().with_seed(seed).with_threads(threads);
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s1, i1) = run(1);
        let (s3, i3) = run(3);
        prop_assert_eq!(s1, s3);
        prop_assert_eq!(i1, i3);
    }

    #[test]
    fn stats_accounting_is_internally_consistent(g in arb_connected_graph()) {
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
        let stats = sim.run().unwrap();
        // Pulses cost 1 bit each.
        prop_assert_eq!(stats.total_bits, stats.total_messages);
        // Flood sends exactly one message per edge direction.
        prop_assert_eq!(stats.total_messages, g.degree_sum() as u64);
        prop_assert!(stats.max_messages_edge_round <= 1);
    }
}
