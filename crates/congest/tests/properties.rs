//! Property-based tests on the simulator's model guarantees.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::algorithms::{BfsTree, Flood, LeaderElect};
use congest_sim::wire::{crc32, BitReader, BitWriter};
use congest_sim::{FaultPlan, LinkCorruption, LinkOutage, Reliable, SimConfig, Simulator};
use rwbc_graph::generators::random_tree;
use rwbc_graph::traversal::bfs_distances;
use rwbc_graph::Graph;

/// Strategy: a small random connected graph.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..16, 0u64..300, 0usize..8).prop_map(|(n, seed, extra)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng).unwrap();
        let mut edges = tree.edge_vec();
        let mut tries = 0;
        while edges.len() < tree.edge_count() + extra && tries < 64 {
            tries += 1;
            let u = rand::Rng::gen_range(&mut rng, 0..n);
            let v = rand::Rng::gen_range(&mut rng, 0..n);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !edges.contains(&key) {
                edges.push(key);
            }
        }
        Graph::from_edges(n, edges).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flood_informs_everyone_in_eccentricity_rounds(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        let source = seed as usize % g.node_count();
        let mut sim = Simulator::new(
            &g,
            SimConfig::default().with_seed(seed),
            |v| Flood::new(v, source),
        );
        let stats = sim.run().unwrap();
        prop_assert!(stats.congest_compliant());
        let dist = bfs_distances(&g, source);
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).informed_at(), dist[v], "node {}", v);
        }
    }

    #[test]
    fn bfs_depths_always_match_centralized(
        g in arb_connected_graph(),
        root_pick in 0usize..16,
    ) {
        let root = root_pick % g.node_count();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| BfsTree::new(v, root));
        let stats = sim.run().unwrap();
        prop_assert!(stats.max_bits_edge_round <= stats.budget_bits);
        let dist = bfs_distances(&g, root);
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).depth(), dist[v]);
        }
    }

    #[test]
    fn leader_election_always_finds_max_id(g in arb_connected_graph()) {
        let n = g.node_count();
        let mut sim = Simulator::new(&g, SimConfig::default(), LeaderElect::new);
        sim.run().unwrap();
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).leader(), n - 1);
        }
    }

    #[test]
    fn thread_count_never_changes_results(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        let run = |threads: usize| {
            let cfg = SimConfig::default().with_seed(seed).with_threads(threads);
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s1, i1) = run(1);
        let (s3, i3) = run(3);
        prop_assert_eq!(s1, s3);
        prop_assert_eq!(i1, i3);
    }

    #[test]
    fn stats_accounting_is_internally_consistent(g in arb_connected_graph()) {
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
        let stats = sim.run().unwrap();
        // Pulses cost 1 bit each.
        prop_assert_eq!(stats.total_bits, stats.total_messages);
        // Flood sends exactly one message per edge direction.
        prop_assert_eq!(stats.total_messages, g.degree_sum() as u64);
        prop_assert!(stats.max_messages_edge_round <= 1);
    }

    #[test]
    fn fault_plans_replay_identically_at_any_thread_count(
        g in arb_connected_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.4,
        dup_p in 0.0f64..0.3,
        delay_p in 0.0f64..0.3,
    ) {
        // All fault decisions are made in the single-threaded commit step
        // from a dedicated RNG, so a fixed (graph, seed, FaultPlan) triple
        // must replay bit-identically regardless of worker threads.
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p)
            .with_delay_probability(delay_p);
        let run = |threads: usize| {
            let cfg = SimConfig::default()
                .with_seed(seed)
                .with_threads(threads)
                .with_faults(faults.clone());
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s1, i1) = run(1);
        let (s8, i8) = run(8);
        prop_assert_eq!(s1, s8);
        prop_assert_eq!(i1, i8);
    }

    #[test]
    fn empty_fault_plan_reproduces_the_fault_free_trace(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        // An all-zero FaultPlan consults the fault RNG zero times, so its
        // trace — stats and per-node outcomes — is bit-identical to a run
        // with no plan at all.
        let run = |faults: Option<FaultPlan>| {
            let mut cfg = SimConfig::default().with_seed(seed);
            if let Some(f) = faults {
                cfg = cfg.with_faults(f);
            }
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s_none, i_none) = run(None);
        let (s_empty, i_empty) = run(Some(FaultPlan::default()));
        // Explicit zero probabilities are the same empty plan.
        let (s_zero, i_zero) = run(Some(
            FaultPlan::default()
                .with_drop_probability(0.0)
                .with_duplicate_probability(0.0)
                .with_delay_probability(0.0),
        ));
        prop_assert_eq!(&s_none, &s_empty);
        prop_assert_eq!(&i_none, &i_empty);
        prop_assert_eq!(&s_none, &s_zero);
        prop_assert_eq!(&i_none, &i_zero);
    }

    #[test]
    fn reliable_flood_always_informs_everyone_under_drops(
        g in arb_connected_graph(),
        seed in 0u64..30,
        drop_p in 0.05f64..0.35,
    ) {
        // The constant-size reliable header dominates B(n) on 2-node
        // graphs; give the tiny instances headroom (the header is O(1), so
        // any n >= 4 fits the default coefficient).
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_bandwidth_coeff(16)
            .with_faults(FaultPlan::default().with_drop_probability(drop_p));
        let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
        sim.run().unwrap();
        for v in g.nodes() {
            prop_assert!(sim.program(v).inner().informed(), "node {} uninformed", v);
        }
    }

    #[test]
    fn detector_always_terminates_under_a_permanent_outage(
        g in arb_connected_graph(),
        seed in 0u64..30,
        edge_pick in 0usize..64,
        threshold in 1usize..6,
    ) {
        // Sever one arbitrary edge forever. The detector must turn the
        // would-be livelock into a declared-dead channel and a normally
        // terminating run — source side always declares (the flood always
        // pushes into the outage at least from the source's component).
        let edges = g.edge_vec();
        let (u, v) = edges[edge_pick % edges.len()];
        let faults = FaultPlan::default().with_link_outage(LinkOutage {
            u,
            v,
            from_round: 0,
            until_round: usize::MAX,
        });
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_bandwidth_coeff(16)
            .with_faults(faults)
            .with_max_rounds(5000);
        let mut sim = Simulator::new(&g, cfg, |w| {
            Reliable::new(Flood::new(w, 0)).with_failure_detection(threshold)
        });
        let stats = sim.run().unwrap();
        prop_assert!(stats.dead_links_declared >= 1, "outage never declared");
        prop_assert!(stats.undeliverable_messages >= 1);
        // Declaration latency is bounded: threshold timeouts, each capped.
        prop_assert!(stats.rounds < 5000);
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run(
        g in arb_connected_graph(),
        seed in 0u64..30,
        cut_after in 0usize..6,
        threads in 1usize..5,
        drop_p in 0.0f64..0.3,
    ) {
        // Checkpoint → kill → restore must replay the uninterrupted trace
        // bit-identically, at any thread count, with fault RNG state and
        // in-flight traffic carried across the boundary.
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_delay_probability(0.2);
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_threads(threads)
            .with_faults(faults);

        let mut reference = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
        let ref_stats = reference.run().unwrap();
        let ref_informed: Vec<_> =
            reference.programs().iter().map(Flood::informed_at).collect();

        let mut first = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
        let mut finished = false;
        for _ in 0..cut_after {
            if first.step().unwrap() {
                finished = true;
                break;
            }
        }
        let image = first.checkpoint();
        drop(first);

        let mut resumed = Simulator::<Flood>::restore(&g, cfg, &image).unwrap();
        let stats = if finished {
            resumed.stats().clone()
        } else {
            resumed.run().unwrap()
        };
        let informed: Vec<_> = resumed.programs().iter().map(Flood::informed_at).collect();
        prop_assert_eq!(stats, ref_stats);
        prop_assert_eq!(informed, ref_informed);
    }

    #[test]
    fn checkpoint_restores_bit_identically_across_thread_counts(
        g in arb_connected_graph(),
        seed in 0u64..30,
        cut_after in 0usize..6,
        save_threads in 1usize..5,
        load_threads in 1usize..5,
    ) {
        // A daemon may be restarted with a different worker pool than the
        // process that wrote the image — thread count is an execution
        // detail, not part of the trace — so a checkpoint captured at one
        // thread count must resume bit-identically at any other.
        let faults = FaultPlan::default()
            .with_drop_probability(0.15)
            .with_delay_probability(0.2);
        let cfg_save = SimConfig::default()
            .with_seed(seed)
            .with_threads(save_threads)
            .with_faults(faults.clone());
        let cfg_load = SimConfig::default()
            .with_seed(seed)
            .with_threads(load_threads)
            .with_faults(faults);

        let mut reference = Simulator::new(&g, cfg_save.clone(), |v| Flood::new(v, 0));
        let ref_stats = reference.run().unwrap();
        let ref_informed: Vec<_> =
            reference.programs().iter().map(Flood::informed_at).collect();

        let mut first = Simulator::new(&g, cfg_save, |v| Flood::new(v, 0));
        let mut finished = false;
        for _ in 0..cut_after {
            if first.step().unwrap() {
                finished = true;
                break;
            }
        }
        let image = first.checkpoint();
        drop(first);

        let mut resumed = Simulator::<Flood>::restore(&g, cfg_load, &image).unwrap();
        let stats = if finished {
            resumed.stats().clone()
        } else {
            resumed.run().unwrap()
        };
        let informed: Vec<_> = resumed.programs().iter().map(Flood::informed_at).collect();
        prop_assert_eq!(stats, ref_stats);
        prop_assert_eq!(informed, ref_informed);
    }

    #[test]
    fn bit_writer_reader_round_trips_at_any_widths(
        fields in proptest::collection::vec((any::<u64>(), 0usize..=64), 0..40),
    ) {
        // Arbitrary field sequences — including 0-bit fields, full 64-bit
        // fields, and whatever unaligned tail the sum of widths leaves —
        // must read back exactly, and nothing past the tail must read.
        let mask = |width: usize| -> u64 {
            if width == 64 { u64::MAX } else { (1u64 << width) - 1 }
        };
        let mut w = BitWriter::new();
        let expect: Vec<u64> = fields
            .iter()
            .map(|&(v, width)| {
                let v = v & mask(width);
                w.write_bits(v, width);
                v
            })
            .collect();
        let total: usize = fields.iter().map(|&(_, width)| width).sum();
        prop_assert_eq!(w.bit_len(), total);
        let bytes = w.finish();
        prop_assert_eq!(bytes.len(), total.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for (i, (&(_, width), &want)) in fields.iter().zip(&expect).enumerate() {
            prop_assert_eq!(r.read_bits(width), Some(want), "field {}", i);
        }
        // The zero-padded tail is all that remains.
        prop_assert!(r.remaining_bits() < 8);
        prop_assert_eq!(r.read_bits(r.remaining_bits()), Some(0));
        prop_assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn byte_passthrough_survives_any_misalignment(
        shift in 0usize..=7,
        head in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        // write_bytes/read_bytes must be transparent even when the stream
        // is not byte-aligned underneath them.
        let head = if shift == 0 {
            0
        } else {
            head & ((1u64 << shift) - 1)
        };
        let mut w = BitWriter::new();
        w.write_bits(head, shift);
        w.write_bytes(&data);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(r.read_bits(shift), Some(head));
        prop_assert_eq!(r.read_bytes(data.len()), Some(data));
        // Reading past the end fails rather than fabricating bytes.
        prop_assert_eq!(r.read_bytes(1), None);
    }

    #[test]
    fn a_single_flipped_bit_never_preserves_the_crc(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        bit_pick in any::<usize>(),
    ) {
        // CRC-32 is linear: a lone flipped bit XORs a nonzero syndrome
        // into the checksum, so *every* single-bit corruption is caught —
        // the guarantee the sealed reliable frame builds on.
        let bit = bit_pick % (data.len() * 8);
        let mut mangled = data.clone();
        mangled[bit / 8] ^= 0x80 >> (bit % 8);
        prop_assert_ne!(crc32(&data), crc32(&mangled));
    }

    #[test]
    fn corruption_faults_replay_identically_at_any_thread_count(
        g in arb_connected_graph(),
        seed in 0u64..50,
        corrupt_p in 0.0f64..0.5,
        drop_p in 0.0f64..0.2,
        edge_pick in 0usize..64,
    ) {
        // Corruption draws (whether to hit, which mangling, which bits)
        // all come from the dedicated fault RNG in the single-threaded
        // commit step, so they replay like drops and duplicates do.
        let edges = g.edge_vec();
        let (u, v) = edges[edge_pick % edges.len()];
        let faults = FaultPlan::default()
            .with_corrupt_probability(corrupt_p)
            .with_drop_probability(drop_p)
            .with_link_corruption(LinkCorruption {
                u,
                v,
                from_round: 1,
                until_round: 4,
            });
        let run = |threads: usize| {
            let cfg = SimConfig::default()
                .with_seed(seed)
                .with_threads(threads)
                .with_faults(faults.clone());
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s1, i1) = run(1);
        let (s8, i8) = run(8);
        prop_assert_eq!(s1, s8);
        prop_assert_eq!(i1, i8);
    }

    #[test]
    fn checksummed_reliable_flood_repairs_all_corruption(
        g in arb_connected_graph(),
        seed in 0u64..30,
        corrupt_p in 0.05f64..0.3,
    ) {
        // Sealed frames turn corruption into detect-and-retransmit: the
        // flood always completes, and no mangled frame is ever delivered.
        // The 32-bit seal is a constant, but on a 2-node graph it dwarfs
        // B(n); give tiny instances the headroom a real deployment's
        // log-factor provides.
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_bandwidth_coeff(48)
            .with_faults(FaultPlan::default().with_corrupt_probability(corrupt_p));
        let mut sim = Simulator::new(&g, cfg, |v| {
            Reliable::new(Flood::new(v, 0)).with_checksums()
        });
        let stats = sim.run().unwrap();
        for v in g.nodes() {
            prop_assert!(sim.program(v).inner().informed(), "node {} uninformed", v);
        }
        // Every corruption hit was either destroyed outright (counted as a
        // drop) or delivered mangled and caught by the seal — except the
        // occasional garbage draw that redraws the original value, which
        // harmlessly verifies.
        prop_assert!(stats.corrupt_frames_detected + stats.dropped <= stats.corrupted);
    }
}
