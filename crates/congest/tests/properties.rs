//! Property-based tests on the simulator's model guarantees.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::algorithms::{BfsTree, Flood, LeaderElect};
use congest_sim::{FaultPlan, LinkOutage, Reliable, SimConfig, Simulator};
use rwbc_graph::generators::random_tree;
use rwbc_graph::traversal::bfs_distances;
use rwbc_graph::Graph;

/// Strategy: a small random connected graph.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..16, 0u64..300, 0usize..8).prop_map(|(n, seed, extra)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng).unwrap();
        let mut edges = tree.edge_vec();
        let mut tries = 0;
        while edges.len() < tree.edge_count() + extra && tries < 64 {
            tries += 1;
            let u = rand::Rng::gen_range(&mut rng, 0..n);
            let v = rand::Rng::gen_range(&mut rng, 0..n);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !edges.contains(&key) {
                edges.push(key);
            }
        }
        Graph::from_edges(n, edges).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flood_informs_everyone_in_eccentricity_rounds(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        let source = seed as usize % g.node_count();
        let mut sim = Simulator::new(
            &g,
            SimConfig::default().with_seed(seed),
            |v| Flood::new(v, source),
        );
        let stats = sim.run().unwrap();
        prop_assert!(stats.congest_compliant());
        let dist = bfs_distances(&g, source);
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).informed_at(), dist[v], "node {}", v);
        }
    }

    #[test]
    fn bfs_depths_always_match_centralized(
        g in arb_connected_graph(),
        root_pick in 0usize..16,
    ) {
        let root = root_pick % g.node_count();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| BfsTree::new(v, root));
        let stats = sim.run().unwrap();
        prop_assert!(stats.max_bits_edge_round <= stats.budget_bits);
        let dist = bfs_distances(&g, root);
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).depth(), dist[v]);
        }
    }

    #[test]
    fn leader_election_always_finds_max_id(g in arb_connected_graph()) {
        let n = g.node_count();
        let mut sim = Simulator::new(&g, SimConfig::default(), LeaderElect::new);
        sim.run().unwrap();
        for v in g.nodes() {
            prop_assert_eq!(sim.program(v).leader(), n - 1);
        }
    }

    #[test]
    fn thread_count_never_changes_results(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        let run = |threads: usize| {
            let cfg = SimConfig::default().with_seed(seed).with_threads(threads);
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s1, i1) = run(1);
        let (s3, i3) = run(3);
        prop_assert_eq!(s1, s3);
        prop_assert_eq!(i1, i3);
    }

    #[test]
    fn stats_accounting_is_internally_consistent(g in arb_connected_graph()) {
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
        let stats = sim.run().unwrap();
        // Pulses cost 1 bit each.
        prop_assert_eq!(stats.total_bits, stats.total_messages);
        // Flood sends exactly one message per edge direction.
        prop_assert_eq!(stats.total_messages, g.degree_sum() as u64);
        prop_assert!(stats.max_messages_edge_round <= 1);
    }

    #[test]
    fn fault_plans_replay_identically_at_any_thread_count(
        g in arb_connected_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.4,
        dup_p in 0.0f64..0.3,
        delay_p in 0.0f64..0.3,
    ) {
        // All fault decisions are made in the single-threaded commit step
        // from a dedicated RNG, so a fixed (graph, seed, FaultPlan) triple
        // must replay bit-identically regardless of worker threads.
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p)
            .with_delay_probability(delay_p);
        let run = |threads: usize| {
            let cfg = SimConfig::default()
                .with_seed(seed)
                .with_threads(threads)
                .with_faults(faults.clone());
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s1, i1) = run(1);
        let (s8, i8) = run(8);
        prop_assert_eq!(s1, s8);
        prop_assert_eq!(i1, i8);
    }

    #[test]
    fn empty_fault_plan_reproduces_the_fault_free_trace(
        g in arb_connected_graph(),
        seed in 0u64..50,
    ) {
        // An all-zero FaultPlan consults the fault RNG zero times, so its
        // trace — stats and per-node outcomes — is bit-identical to a run
        // with no plan at all.
        let run = |faults: Option<FaultPlan>| {
            let mut cfg = SimConfig::default().with_seed(seed);
            if let Some(f) = faults {
                cfg = cfg.with_faults(f);
            }
            let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
            let stats = sim.run().unwrap();
            let informed: Vec<_> = sim.programs().iter().map(|p| p.informed_at()).collect();
            (stats, informed)
        };
        let (s_none, i_none) = run(None);
        let (s_empty, i_empty) = run(Some(FaultPlan::default()));
        // Explicit zero probabilities are the same empty plan.
        let (s_zero, i_zero) = run(Some(
            FaultPlan::default()
                .with_drop_probability(0.0)
                .with_duplicate_probability(0.0)
                .with_delay_probability(0.0),
        ));
        prop_assert_eq!(&s_none, &s_empty);
        prop_assert_eq!(&i_none, &i_empty);
        prop_assert_eq!(&s_none, &s_zero);
        prop_assert_eq!(&i_none, &i_zero);
    }

    #[test]
    fn reliable_flood_always_informs_everyone_under_drops(
        g in arb_connected_graph(),
        seed in 0u64..30,
        drop_p in 0.05f64..0.35,
    ) {
        // The constant-size reliable header dominates B(n) on 2-node
        // graphs; give the tiny instances headroom (the header is O(1), so
        // any n >= 4 fits the default coefficient).
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_bandwidth_coeff(16)
            .with_faults(FaultPlan::default().with_drop_probability(drop_p));
        let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
        sim.run().unwrap();
        for v in g.nodes() {
            prop_assert!(sim.program(v).inner().informed(), "node {} uninformed", v);
        }
    }

    #[test]
    fn detector_always_terminates_under_a_permanent_outage(
        g in arb_connected_graph(),
        seed in 0u64..30,
        edge_pick in 0usize..64,
        threshold in 1usize..6,
    ) {
        // Sever one arbitrary edge forever. The detector must turn the
        // would-be livelock into a declared-dead channel and a normally
        // terminating run — source side always declares (the flood always
        // pushes into the outage at least from the source's component).
        let edges = g.edge_vec();
        let (u, v) = edges[edge_pick % edges.len()];
        let faults = FaultPlan::default().with_link_outage(LinkOutage {
            u,
            v,
            from_round: 0,
            until_round: usize::MAX,
        });
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_bandwidth_coeff(16)
            .with_faults(faults)
            .with_max_rounds(5000);
        let mut sim = Simulator::new(&g, cfg, |w| {
            Reliable::new(Flood::new(w, 0)).with_failure_detection(threshold)
        });
        let stats = sim.run().unwrap();
        prop_assert!(stats.dead_links_declared >= 1, "outage never declared");
        prop_assert!(stats.undeliverable_messages >= 1);
        // Declaration latency is bounded: threshold timeouts, each capped.
        prop_assert!(stats.rounds < 5000);
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run(
        g in arb_connected_graph(),
        seed in 0u64..30,
        cut_after in 0usize..6,
        threads in 1usize..5,
        drop_p in 0.0f64..0.3,
    ) {
        // Checkpoint → kill → restore must replay the uninterrupted trace
        // bit-identically, at any thread count, with fault RNG state and
        // in-flight traffic carried across the boundary.
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_delay_probability(0.2);
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_threads(threads)
            .with_faults(faults);

        let mut reference = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
        let ref_stats = reference.run().unwrap();
        let ref_informed: Vec<_> =
            reference.programs().iter().map(Flood::informed_at).collect();

        let mut first = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
        let mut finished = false;
        for _ in 0..cut_after {
            if first.step().unwrap() {
                finished = true;
                break;
            }
        }
        let image = first.checkpoint();
        drop(first);

        let mut resumed = Simulator::<Flood>::restore(&g, cfg, &image).unwrap();
        let stats = if finished {
            resumed.stats().clone()
        } else {
            resumed.run().unwrap()
        };
        let informed: Vec<_> = resumed.programs().iter().map(Flood::informed_at).collect();
        prop_assert_eq!(stats, ref_stats);
        prop_assert_eq!(informed, ref_informed);
    }
}
