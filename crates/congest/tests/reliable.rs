//! Integration tests for the reliable-delivery adapter.

use congest_sim::algorithms::Flood;
use congest_sim::{FaultPlan, LinkOutage, NodeProgram, Reliable, SimConfig, Simulator};
use rwbc_graph::generators::{cycle, path, star};

#[test]
fn fault_free_reliable_run_neither_retransmits_nor_suppresses() {
    let g = path(6).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |v| {
        Reliable::new(Flood::new(v, 0))
    });
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert_eq!(stats.retransmissions, 0);
    assert_eq!(stats.duplicates_suppressed, 0);
    assert_eq!(stats.dropped, 0);
    // After the application is done, only ack draining remains; the
    // overhead must be small and bounded.
    assert!(
        stats.delivery_overhead_rounds <= 4,
        "overhead {} rounds",
        stats.delivery_overhead_rounds
    );
}

#[test]
fn reliable_flood_survives_heavy_bernoulli_drops() {
    let g = cycle(12).unwrap();
    let faults = FaultPlan::default().with_drop_probability(0.3);
    let cfg = SimConfig::default().with_faults(faults).with_seed(7);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(
        sim.programs().iter().all(|p| p.inner().informed()),
        "reliable flood must inform every node despite 30% drops"
    );
    assert!(stats.dropped > 0, "the fault plan should have fired");
    assert!(
        stats.retransmissions > 0,
        "drops must have forced retransmissions"
    );
}

#[test]
fn reliable_flood_survives_duplication_and_delay() {
    let g = path(8).unwrap();
    let faults = FaultPlan::default()
        .with_duplicate_probability(0.5)
        .with_delay_probability(0.3);
    let cfg = SimConfig::default().with_faults(faults).with_seed(3);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert!(stats.duplicated > 0, "duplication should have fired");
    assert!(
        stats.duplicates_suppressed > 0,
        "fault-injected copies must be filtered before the application"
    );
}

#[test]
fn reliable_flood_rides_out_a_link_outage() {
    // Sever the only edge into the far end of a path for 10 rounds; the
    // retransmission timer must push the token through once the link heals.
    let g = path(5).unwrap();
    let faults = FaultPlan::default().with_link_outage(LinkOutage {
        u: 3,
        v: 4,
        from_round: 0,
        until_round: 10,
    });
    let cfg = SimConfig::default().with_faults(faults);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert!(stats.rounds > 10, "cannot finish before the link heals");
    assert!(stats.retransmissions > 0);
}

#[test]
fn reliable_star_hub_respects_window_and_budget() {
    // The hub talks to many leaves at once; each channel is independent, so
    // the per-edge CONGEST budget must hold exactly as in the raw run.
    let g = star(16).unwrap();
    let faults = FaultPlan::default().with_drop_probability(0.2);
    let cfg = SimConfig::default().with_faults(faults).with_seed(5);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert!(stats.congest_compliant(), "reliable layer blew the budget");
    assert_eq!(stats.max_messages_edge_round, 1);
}

#[test]
fn reliable_layer_reports_per_node_counters() {
    let g = path(4).unwrap();
    let faults = FaultPlan::default().with_drop_probability(0.25);
    let cfg = SimConfig::default().with_faults(faults).with_seed(2);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    let summed: u64 = sim
        .programs()
        .iter()
        .map(|p| p.reliability_stats().unwrap().retransmissions)
        .sum();
    assert_eq!(stats.retransmissions, summed);
    for p in sim.programs() {
        let rs = p.reliability_stats().unwrap();
        assert!(rs.inner_last_active_round.is_some());
    }
}
