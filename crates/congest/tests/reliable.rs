//! Integration tests for the reliable-delivery adapter.

use congest_sim::algorithms::Flood;
use congest_sim::{
    FaultPlan, LinkOutage, NodeProgram, Reliable, SimConfig, SimError, Simulator,
    DEFAULT_DEATH_THRESHOLD,
};
use rwbc_graph::generators::{cycle, path, star};

#[test]
fn fault_free_reliable_run_neither_retransmits_nor_suppresses() {
    let g = path(6).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |v| {
        Reliable::new(Flood::new(v, 0))
    });
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert_eq!(stats.retransmissions, 0);
    assert_eq!(stats.duplicates_suppressed, 0);
    assert_eq!(stats.dropped, 0);
    // After the application is done, only ack draining remains; the
    // overhead must be small and bounded.
    assert!(
        stats.delivery_overhead_rounds <= 4,
        "overhead {} rounds",
        stats.delivery_overhead_rounds
    );
}

#[test]
fn reliable_flood_survives_heavy_bernoulli_drops() {
    let g = cycle(12).unwrap();
    let faults = FaultPlan::default().with_drop_probability(0.3);
    let cfg = SimConfig::default().with_faults(faults).with_seed(7);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(
        sim.programs().iter().all(|p| p.inner().informed()),
        "reliable flood must inform every node despite 30% drops"
    );
    assert!(stats.dropped > 0, "the fault plan should have fired");
    assert!(
        stats.retransmissions > 0,
        "drops must have forced retransmissions"
    );
}

#[test]
fn reliable_flood_survives_duplication_and_delay() {
    let g = path(8).unwrap();
    let faults = FaultPlan::default()
        .with_duplicate_probability(0.5)
        .with_delay_probability(0.3);
    let cfg = SimConfig::default().with_faults(faults).with_seed(3);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert!(stats.duplicated > 0, "duplication should have fired");
    assert!(
        stats.duplicates_suppressed > 0,
        "fault-injected copies must be filtered before the application"
    );
}

#[test]
fn reliable_flood_rides_out_a_link_outage() {
    // Sever the only edge into the far end of a path for 10 rounds; the
    // retransmission timer must push the token through once the link heals.
    let g = path(5).unwrap();
    let faults = FaultPlan::default().with_link_outage(LinkOutage {
        u: 3,
        v: 4,
        from_round: 0,
        until_round: 10,
    });
    let cfg = SimConfig::default().with_faults(faults);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert!(stats.rounds > 10, "cannot finish before the link heals");
    assert!(stats.retransmissions > 0);
}

#[test]
fn reliable_star_hub_respects_window_and_budget() {
    // The hub talks to many leaves at once; each channel is independent, so
    // the per-edge CONGEST budget must hold exactly as in the raw run.
    let g = star(16).unwrap();
    let faults = FaultPlan::default().with_drop_probability(0.2);
    let cfg = SimConfig::default().with_faults(faults).with_seed(5);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    assert!(sim.programs().iter().all(|p| p.inner().informed()));
    assert!(stats.congest_compliant(), "reliable layer blew the budget");
    assert_eq!(stats.max_messages_edge_round, 1);
}

/// A permanent outage on a path's last edge: without detection the sender
/// retransmits forever; with detection it declares the channel dead, gives
/// up on the buffered traffic, and the run terminates.
fn permanent_last_edge_outage() -> FaultPlan {
    FaultPlan::default().with_link_outage(LinkOutage {
        u: 2,
        v: 3,
        from_round: 0,
        until_round: usize::MAX,
    })
}

#[test]
fn permanent_outage_without_detection_hits_the_round_budget() {
    let g = path(4).unwrap();
    let cfg = SimConfig::default()
        .with_faults(permanent_last_edge_outage())
        .with_max_rounds(300);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    assert!(matches!(
        sim.run(),
        Err(SimError::RoundBudgetExceeded { limit: 300 })
    ));
}

#[test]
fn permanent_outage_is_declared_dead_instead_of_livelocking() {
    let g = path(4).unwrap();
    let cfg = SimConfig::default()
        .with_faults(permanent_last_edge_outage())
        .with_max_rounds(2000);
    let mut sim = Simulator::new(&g, cfg, |v| {
        Reliable::new(Flood::new(v, 0)).with_failure_detection(DEFAULT_DEATH_THRESHOLD)
    });
    let stats = sim.run().unwrap();
    // Node 2 gave up on node 3: the channel is dead, the pulse it buffered
    // is accounted as undeliverable, and the unreachable side stays
    // uninformed while everything else completed.
    assert_eq!(stats.dead_links_declared, 1);
    assert!(stats.undeliverable_messages >= 1);
    assert!(sim.program(2).inner().informed());
    assert!(!sim.program(3).inner().informed());
    assert_eq!(sim.program(2).dead_peers(), vec![3]);
    assert!(sim.program(3).dead_peers().is_empty());
}

#[test]
fn detection_declares_both_directions_on_a_cycle() {
    // On a cycle the flood reaches both endpoints of the severed edge via
    // the other arc, so both sides push into the outage and both declare.
    let g = cycle(8).unwrap();
    let faults = FaultPlan::default().with_link_outage(LinkOutage {
        u: 3,
        v: 4,
        from_round: 0,
        until_round: usize::MAX,
    });
    let cfg = SimConfig::default()
        .with_faults(faults)
        .with_max_rounds(2000);
    let mut sim = Simulator::new(&g, cfg, |v| {
        Reliable::new(Flood::new(v, 0)).with_failure_detection(4)
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.dead_links_declared, 2);
    assert!(
        sim.programs().iter().all(|p| p.inner().informed()),
        "a cycle minus one edge is still connected"
    );
}

#[test]
fn preseeded_dead_peers_are_not_counted_as_detections() {
    let g = path(3).unwrap();
    let cfg = SimConfig::default().with_max_rounds(500);
    let mut sim = Simulator::new(&g, cfg, |v| {
        // Both endpoints of edge {1, 2} believe the other is already dead
        // (e.g. carried over from an earlier phase's detections).
        let dead = match v {
            1 => vec![2],
            2 => vec![1],
            _ => Vec::new(),
        };
        Reliable::new(Flood::new(v, 0))
            .with_failure_detection(4)
            .with_dead_peers(dead)
    });
    let stats = sim.run().unwrap();
    assert_eq!(
        stats.dead_links_declared, 0,
        "pre-seeded peers are knowledge, not detections"
    );
    assert!(sim.program(1).inner().informed());
    assert!(
        !sim.program(2).inner().informed(),
        "no traffic to a dead peer"
    );
}

#[test]
fn detection_is_inert_on_a_healthy_network() {
    // Arming the detector must not change a fault-free run: no strikes
    // accrue because every frame acks on schedule.
    let g = star(10).unwrap();
    let run = |detect: bool| {
        let mut sim = Simulator::new(&g, SimConfig::default().with_seed(5), |v| {
            let r = Reliable::new(Flood::new(v, 0));
            if detect {
                r.with_failure_detection(1)
            } else {
                r
            }
        });
        let stats = sim.run().unwrap();
        let informed: Vec<_> = sim
            .programs()
            .iter()
            .map(|p| p.inner().informed())
            .collect();
        (stats, informed)
    };
    let (s_plain, i_plain) = run(false);
    let (s_armed, i_armed) = run(true);
    assert_eq!(s_plain, s_armed);
    assert_eq!(i_plain, i_armed);
    assert_eq!(s_armed.dead_links_declared, 0);
}

#[test]
fn reliable_layer_reports_per_node_counters() {
    let g = path(4).unwrap();
    let faults = FaultPlan::default().with_drop_probability(0.25);
    let cfg = SimConfig::default().with_faults(faults).with_seed(2);
    let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
    let stats = sim.run().unwrap();
    let summed: u64 = sim
        .programs()
        .iter()
        .map(|p| p.reliability_stats().unwrap().retransmissions)
        .sum();
    assert_eq!(stats.retransmissions, summed);
    for p in sim.programs() {
        let rs = p.reliability_stats().unwrap();
        assert!(rs.inner_last_active_round.is_some());
    }
}
