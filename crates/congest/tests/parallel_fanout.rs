//! Thread-count invariance of the parallel commit fan-out.
//!
//! The engine's contract is that `threads` (and `granularity`) are pure
//! policy knobs: a fixed `(graph, seed, program, fault plan)` produces
//! bit-identical observable output at any setting. This suite pins that
//! for the chunked fan-out path specifically — per-worker outbox/inbox
//! scratch, scatter arenas, and the single-threaded accounting spine —
//! across t ∈ {1, 2, 4, 8} in four regimes:
//!
//! * **clean** — no faults: the fully parallel scatter/merge path.
//! * **outage** — schedule-driven faults only (link outage + node
//!   crash): still the scatter path, exercising its link-down skip.
//! * **reliable** — `Reliable<Flood>` over Bernoulli drops: the routed
//!   spine plus retransmission traffic.
//! * **chaos** — drops + duplicates + delays on bare `Flood`: every
//!   per-message fault draw happens on the spine.
//!
//! Compared per run: `RunStats`, the full trace event sequence, the
//! metrics registry snapshot, and (for checkpointable programs) the
//! end-of-run checkpoint bytes. A separate test crosses a *mid-run*
//! checkpoint between t1 and t8 in both directions on the scatter path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::algorithms::Flood;
use congest_sim::{
    EngineMetrics, FaultPlan, LinkOutage, MemoryTracer, NodeCrash, Registry, Reliable, RunStats,
    SimConfig, Simulator, TraceEvent,
};
use rwbc_graph::generators::random_tree;
use rwbc_graph::Graph;

/// Strategy: a random connected graph with n in [64, 96) — combined
/// with `granularity = 4`, thread counts up to 8 all genuinely engage
/// the parallel fan-out (8 workers need n ≥ 32).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (64usize..96, 0u64..200, 0usize..40).prop_map(|(n, seed, extra)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng).unwrap();
        let mut edges = tree.edge_vec();
        let mut tries = 0;
        while edges.len() < tree.edge_count() + extra && tries < 256 {
            tries += 1;
            let u = rand::Rng::gen_range(&mut rng, 0..n);
            let v = rand::Rng::gen_range(&mut rng, 0..n);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !edges.contains(&key) {
                edges.push(key);
            }
        }
        Graph::from_edges(n, edges).unwrap()
    })
}

fn config(seed: u64, threads: usize, faults: FaultPlan) -> SimConfig {
    SimConfig::default()
        .with_seed(seed)
        .with_threads(threads)
        .with_granularity(4)
        .with_faults(faults)
}

/// Schedule-only fault plan: no per-message randomness, so the engine
/// keeps the scatter/merge path while links go down and a node crashes
/// and recovers mid-run.
fn outage_plan(g: &Graph) -> FaultPlan {
    let (u, v) = g.edge_vec()[0];
    FaultPlan::default()
        .with_link_outage(LinkOutage {
            u,
            v,
            from_round: 1,
            until_round: 4,
        })
        .with_node_crash(NodeCrash {
            node: g.node_count() - 1,
            crash_round: 2,
            recover_round: Some(5),
        })
}

/// One traced, metered `Flood` run; returns everything observable.
fn flood_run(
    g: &Graph,
    cfg: SimConfig,
) -> (
    RunStats,
    Vec<TraceEvent>,
    congest_sim::metrics::MetricsSnapshot,
    bytes::Bytes,
) {
    let registry = Registry::new();
    let engine = EngineMetrics::register(&registry);
    let mut tracer = MemoryTracer::new();
    let mut sim = Simulator::new(g, cfg, |v| Flood::new(v, 0))
        .with_tracer(&mut tracer)
        .with_metrics(engine);
    let stats = sim.run().unwrap();
    let image = sim.checkpoint();
    drop(sim);
    let mut events = tracer.into_events();
    for e in &mut events {
        e.strip_wall_clock();
    }
    (stats, events, registry.snapshot(), image)
}

/// One traced, metered `Reliable<Flood>` run (no checkpoint — the
/// reliable adapter carries no wire state).
fn reliable_run(
    g: &Graph,
    cfg: SimConfig,
) -> (
    RunStats,
    Vec<TraceEvent>,
    congest_sim::metrics::MetricsSnapshot,
) {
    let registry = Registry::new();
    let engine = EngineMetrics::register(&registry);
    let mut tracer = MemoryTracer::new();
    let mut sim = Simulator::new(g, cfg, |v| Reliable::new(Flood::new(v, 0)))
        .with_tracer(&mut tracer)
        .with_metrics(engine);
    let stats = sim.run().unwrap();
    drop(sim);
    let mut events = tracer.into_events();
    for e in &mut events {
        e.strip_wall_clock();
    }
    (stats, events, registry.snapshot())
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clean and schedule-fault (outage) runs take the scatter/merge
    /// path at t > 1; stats, trace, metrics, and checkpoint bytes must
    /// match the sequential run exactly.
    #[test]
    fn scatter_path_is_thread_count_invariant(
        g in arb_graph(),
        seed in 0u64..50,
        outages in any::<bool>(),
    ) {
        let plan = if outages { outage_plan(&g) } else { FaultPlan::default() };
        // The scatter path only covers fault plans with no per-message
        // randomness; this suite's other proptest covers the rest.
        prop_assert!(!plan.uses_rng());
        let (s1, e1, m1, c1) = flood_run(&g, config(seed, 1, plan.clone()));
        for threads in THREADS {
            let (s, e, m, c) = flood_run(&g, config(seed, threads, plan.clone()));
            prop_assert_eq!(&s1, &s, "stats diverge at {} threads", threads);
            prop_assert_eq!(&e1, &e, "trace diverges at {} threads", threads);
            prop_assert_eq!(&m1, &m, "metrics diverge at {} threads", threads);
            prop_assert_eq!(&c1, &c, "checkpoint diverges at {} threads", threads);
        }
    }

    /// Fault plans with per-message randomness force the routed spine;
    /// the fault RNG draw order — and therefore every drop, duplicate,
    /// and delay — must not depend on the thread count, with and
    /// without a reliable delivery layer on top.
    #[test]
    fn routed_spine_is_thread_count_invariant(
        g in arb_graph(),
        seed in 0u64..50,
        drop_p in 0.01f64..0.3,
        dup_p in 0.0f64..0.2,
        delay_p in 0.0f64..0.2,
    ) {
        let chaos = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p)
            .with_delay_probability(delay_p);
        prop_assert!(chaos.uses_rng());
        let (s1, e1, m1, c1) = flood_run(&g, config(seed, 1, chaos.clone()));
        let (rs1, re1, rm1) = reliable_run(&g, config(seed, 1, chaos.clone()));
        for threads in THREADS {
            let (s, e, m, c) = flood_run(&g, config(seed, threads, chaos.clone()));
            prop_assert_eq!(&s1, &s, "chaos stats diverge at {} threads", threads);
            prop_assert_eq!(&e1, &e, "chaos trace diverges at {} threads", threads);
            prop_assert_eq!(&m1, &m, "chaos metrics diverge at {} threads", threads);
            prop_assert_eq!(&c1, &c, "chaos checkpoint diverges at {} threads", threads);
            let (rs, re, rm) = reliable_run(&g, config(seed, threads, chaos.clone()));
            prop_assert_eq!(&rs1, &rs, "reliable stats diverge at {} threads", threads);
            prop_assert_eq!(&re1, &re, "reliable trace diverges at {} threads", threads);
            prop_assert_eq!(&rm1, &rm, "reliable metrics diverge at {} threads", threads);
        }
    }

    /// A mid-run checkpoint crosses thread counts in both directions on
    /// the scatter path: taken at t1 and resumed at t8, and taken at t8
    /// and resumed at t1, both finish exactly like the uninterrupted t1
    /// run. The worker arenas and group scratch are invisible at round
    /// boundaries.
    #[test]
    fn mid_run_checkpoints_cross_thread_counts(
        g in arb_graph(),
        seed in 0u64..50,
        cut_after in 1usize..4,
    ) {
        let cfg = |threads: usize| config(seed, threads, FaultPlan::default());
        let interrupt = |sim: &mut Simulator<'_, Flood>| {
            let mut steps = 0;
            while steps < cut_after && !sim.step().unwrap() {
                steps += 1;
            }
        };
        let finish = |mut sim: Simulator<'_, Flood>| {
            let stats = sim.run().unwrap();
            (stats, sim.checkpoint())
        };
        let baseline = finish(Simulator::new(&g, cfg(1), |v| Flood::new(v, 0)));
        for (take, resume) in [(1usize, 8usize), (8, 1)] {
            let mut sim = Simulator::new(&g, cfg(take), |v| Flood::new(v, 0));
            interrupt(&mut sim);
            let image = sim.checkpoint();
            drop(sim);
            let resumed = Simulator::<Flood>::restore(&g, cfg(resume), &image).unwrap();
            let (stats, final_image) = finish(resumed);
            prop_assert_eq!(&baseline.0, &stats, "stats diverge t{}→t{}", take, resume);
            prop_assert_eq!(
                &baseline.1,
                &final_image,
                "final checkpoint diverges t{}→t{}",
                take,
                resume
            );
        }
    }
}

/// `RunStats` records the worker count the engine *actually* used, not
/// the one the config asked for: a t8 run on a graph too small to split
/// can no longer masquerade as a parallel data point.
#[test]
fn effective_thread_count_is_recorded_in_stats() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = random_tree(64, &mut rng).unwrap();
    for (threads, granularity, expect) in [
        (1usize, 16usize, 1usize),
        (4, 16, 4),
        (8, 16, 4),   // 64 nodes / 16 per chunk caps at 4 workers
        (8, 8, 8),    // finer chunks release all 8
        (8, 64, 1),   // chunk as big as the graph: sequential
        (8, 4096, 1), // granularity beyond n still means one worker
    ] {
        let cfg = SimConfig::default()
            .with_threads(threads)
            .with_granularity(granularity);
        let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
        let stats = sim.run().unwrap();
        assert_eq!(
            stats.effective_threads, expect,
            "threads={threads} granularity={granularity}"
        );
        assert_eq!(stats.granularity, granularity);
    }
}

/// The echoes survive a checkpoint/restore round trip by re-derivation:
/// the image itself never contains them (checkpoint bytes stay
/// thread-count-invariant), so the *restoring* config decides what the
/// resumed run reports.
#[test]
fn restore_rederives_execution_echoes_from_the_restoring_config() {
    let mut rng = StdRng::seed_from_u64(12);
    let g = random_tree(64, &mut rng).unwrap();
    let narrow = SimConfig::default().with_threads(1);
    let mut sim = Simulator::new(&g, narrow.clone(), |v| Flood::new(v, 0));
    sim.step().unwrap();
    let image = sim.checkpoint();
    let wide = narrow.clone().with_threads(8).with_granularity(8);
    let resumed = Simulator::<Flood>::restore(&g, wide, &image).unwrap();
    assert_eq!(resumed.stats().effective_threads, 8);
    assert_eq!(resumed.stats().granularity, 8);
    // The wide restore writes the same image bytes right back.
    assert_eq!(sim.checkpoint(), resumed.checkpoint());
}
