//! Regression coverage for the engine's allocation-free delivery fast
//! path.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Fast path ≡ reference path.** The index-based commit fan-out and
//!    double-buffered inboxes must be observationally identical to the
//!    pre-optimization per-group-allocation implementation (kept as
//!    `Simulator::with_reference_delivery`): same stats, same trace event
//!    sequence, same checkpoint bytes — under faults, at any thread
//!    count, and across checkpoint/restore boundaries.
//! 2. **Version-1 checkpoints still decode.** The buffer-reuse refactor
//!    must not disturb the wire format: a hand-encoded v1 image (the
//!    layout that predates `RunStats::peak_edge`) restores and replays
//!    exactly like a fresh run.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::algorithms::Flood;
use congest_sim::wire::{BitWriter, WireState};
use congest_sim::{
    node_rng, FaultPlan, MemoryTracer, RunStats, SimConfig, SimError, Simulator, TraceEvent,
};
use rwbc_graph::generators::random_tree;
use rwbc_graph::Graph;

/// Strategy: a random connected graph big enough (n >= 64) that
/// `threads > 1` actually takes the simulator's parallel path.
fn arb_large_graph() -> impl Strategy<Value = Graph> {
    (64usize..96, 0u64..200, 0usize..40).prop_map(|(n, seed, extra)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng).unwrap();
        let mut edges = tree.edge_vec();
        let mut tries = 0;
        while edges.len() < tree.edge_count() + extra && tries < 256 {
            tries += 1;
            let u = rand::Rng::gen_range(&mut rng, 0..n);
            let v = rand::Rng::gen_range(&mut rng, 0..n);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !edges.contains(&key) {
                edges.push(key);
            }
        }
        Graph::from_edges(n, edges).unwrap()
    })
}

/// One complete traced run; returns (stats, events, final checkpoint).
fn full_run(
    g: &Graph,
    cfg: SimConfig,
    reference: bool,
) -> (congest_sim::RunStats, Vec<TraceEvent>, bytes::Bytes) {
    let mut tracer = MemoryTracer::new();
    let mut sim = Simulator::new(g, cfg, |v| Flood::new(v, 0))
        .with_reference_delivery(reference)
        .with_tracer(&mut tracer);
    let stats = sim.run().unwrap();
    let image = sim.checkpoint();
    drop(sim);
    let mut events = tracer.into_events();
    for e in &mut events {
        e.strip_wall_clock();
    }
    (stats, events, image)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fast path must be byte-identical to the reference delivery
    /// implementation: aggregate stats, the full trace event sequence,
    /// and the end-of-run checkpoint image, under faults and at 1, 4,
    /// and 8 threads (the latter two through the parallel commit
    /// fan-out).
    #[test]
    fn fast_path_matches_reference_delivery(
        g in arb_large_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.3,
        dup_p in 0.0f64..0.2,
        delay_p in 0.0f64..0.2,
    ) {
        let faults = FaultPlan::default()
            .with_drop_probability(drop_p)
            .with_duplicate_probability(dup_p)
            .with_delay_probability(delay_p);
        let cfg = |threads: usize| {
            SimConfig::default()
                .with_seed(seed)
                .with_threads(threads)
                // Chunks of 4 nodes: even at 8 threads on a 64-node
                // graph every worker really runs.
                .with_granularity(4)
                .with_faults(faults.clone())
        };
        let (ref_stats, ref_events, ref_image) = full_run(&g, cfg(1), true);
        for threads in [1usize, 4, 8] {
            let (stats, events, image) = full_run(&g, cfg(threads), false);
            prop_assert_eq!(&ref_stats, &stats, "stats diverge at {} threads", threads);
            prop_assert_eq!(ref_events.len(), events.len());
            for (i, (a, b)) in ref_events.iter().zip(&events).enumerate() {
                prop_assert_eq!(a, b, "event {} diverges at {} threads", i, threads);
            }
            prop_assert_eq!(&ref_image, &image, "checkpoints diverge at {} threads", threads);
        }
    }

    /// A checkpoint written mid-run by the reference implementation must
    /// restore and finish identically under the fast path (and vice
    /// versa): the scratch buffers are invisible at round boundaries.
    #[test]
    fn mid_run_checkpoints_cross_between_implementations(
        g in arb_large_graph(),
        seed in 0u64..50,
        drop_p in 0.0f64..0.3,
    ) {
        let faults = FaultPlan::default().with_drop_probability(drop_p);
        let cfg = SimConfig::default().with_seed(seed).with_faults(faults);
        let finish = |mut sim: Simulator<'_, Flood>| -> (RunStats, bytes::Bytes) {
            let stats = sim.run().unwrap();
            (stats, sim.checkpoint())
        };
        // Reference run, interrupted after (up to) two rounds — under
        // heavy drops an unreliable flood can die out even sooner.
        let interrupt = |sim: &mut Simulator<'_, Flood>| {
            let mut steps = 0;
            while steps < 2 && !sim.step().unwrap() {
                steps += 1;
            }
        };
        let mut first = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0))
            .with_reference_delivery(true);
        interrupt(&mut first);
        let image = first.checkpoint();
        let (ref_stats, ref_final) = finish(first);
        // ...finishes the same on the fast path (restore defaults to it)...
        let resumed = Simulator::<Flood>::restore(&g, cfg.clone(), &image).unwrap();
        let (fast_stats, fast_final) = finish(resumed);
        prop_assert_eq!(&ref_stats, &fast_stats);
        prop_assert_eq!(&ref_final, &fast_final);
        // ...finishes the same when the t1 image resumes under the
        // 8-thread parallel fan-out (thread count is a policy knob a
        // restore may change freely)...
        let wide = cfg.clone().with_threads(8).with_granularity(4);
        let resumed = Simulator::<Flood>::restore(&g, wide, &image).unwrap();
        let (wide_stats, wide_final) = finish(resumed);
        prop_assert_eq!(&ref_stats, &wide_stats);
        prop_assert_eq!(&ref_final, &wide_final);
        // ...and the fast path emits the very same mid-run image.
        let mut fast = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
        interrupt(&mut fast);
        prop_assert_eq!(&image, &fast.checkpoint());
    }
}

/// Hand-encodes a **version 1** checkpoint image of a fresh (round 0, not
/// yet started) `Flood` simulation, using the layout that shipped before
/// `RunStats::peak_edge` existed: magic, version, n, seed, round, started,
/// v1 stats (no peak-edge field), per-node RNGs, fault RNG, programs, and
/// `n` empty pending + `n` empty delayed inboxes.
fn v1_fresh_image(g: &Graph, cfg: &SimConfig, source: usize) -> Vec<u8> {
    let n = g.node_count();
    let mut w = BitWriter::new();
    w.write_bits(0xC4EC_5A7E, 64); // CHECKPOINT_MAGIC
    w.write_bits(1, 64); // version 1
    n.encode_state(&mut w);
    cfg.seed.encode_state(&mut w);
    0usize.encode_state(&mut w); // round
    false.encode_state(&mut w); // started

    // v1 RunStats layout: the current field order minus `peak_edge`.
    0usize.encode_state(&mut w); // rounds
    0u64.encode_state(&mut w); // total_messages
    0u64.encode_state(&mut w); // total_bits
    0usize.encode_state(&mut w); // max_bits_edge_round
    0usize.encode_state(&mut w); // max_messages_edge_round
    cfg.budget_bits(n).encode_state(&mut w); // budget_bits
    for _ in 0..10 {
        // violations, dropped, duplicated, delayed, retransmissions,
        // duplicates_suppressed, dead_links_declared,
        // undeliverable_messages, crashed_node_rounds,
        // delivery_overhead_rounds
        0u64.encode_state(&mut w);
    }
    0u64.encode_state(&mut w); // cut.messages
    0u64.encode_state(&mut w); // cut.bits
    for v in 0..n {
        for word in node_rng(cfg.seed, v).state() {
            word.encode_state(&mut w);
        }
    }
    for word in node_rng(cfg.seed ^ 0xFA_17, usize::MAX / 2).state() {
        word.encode_state(&mut w);
    }
    for v in 0..n {
        Flood::new(v, source).encode_state(&mut w);
    }
    for _ in 0..(2 * n) {
        Vec::<congest_sim::Incoming<()>>::new().encode_state(&mut w);
    }
    w.finish().to_vec()
}

/// A version-1 image — the pre-`peak_edge` stats layout — must still
/// restore, and the resumed run must replay exactly like a fresh one
/// (the v1 decoder only loses the peak-edge *location*, which a fresh
/// image never had anyway).
#[test]
fn v1_checkpoint_images_still_restore_and_replay() {
    let mut rng = StdRng::seed_from_u64(9);
    let g = random_tree(24, &mut rng).unwrap();
    let cfg = SimConfig::default().with_seed(17);
    let image = v1_fresh_image(&g, &cfg, 0);

    let mut restored = Simulator::<Flood>::restore(&g, cfg.clone(), &image).unwrap();
    let restored_stats = restored.run().unwrap();

    let mut fresh = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let fresh_stats = fresh.run().unwrap();

    assert_eq!(restored_stats, fresh_stats);
    for v in 0..g.node_count() {
        assert_eq!(
            restored.program(v).informed_at(),
            fresh.program(v).informed_at(),
            "node {v}"
        );
    }
    // And the end states agree bit for bit.
    assert_eq!(restored.checkpoint(), fresh.checkpoint());
}

/// Images from outside the supported version window are rejected with a
/// typed error, not misdecoded.
#[test]
fn out_of_window_checkpoint_versions_are_rejected() {
    let mut rng = StdRng::seed_from_u64(9);
    let g = random_tree(8, &mut rng).unwrap();
    let cfg = SimConfig::default().with_seed(17);
    let mut image = v1_fresh_image(&g, &cfg, 0);
    // The version lives in bytes 8..16 of the image (bit-packed u64 right
    // after the magic); rewrite it by re-encoding the whole header is
    // overkill — just rebuild with a bad version word instead.
    let mut w = BitWriter::new();
    w.write_bits(0xC4EC_5A7E, 64);
    w.write_bits(999, 64);
    let bad_version = w.finish();
    image.splice(..bad_version.len(), bad_version.iter().copied());
    assert!(matches!(
        Simulator::<Flood>::restore(&g, cfg, &image),
        Err(SimError::CorruptCheckpoint { .. })
    ));
}
