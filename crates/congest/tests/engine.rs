//! Engine semantics tests: budget enforcement, determinism, parallelism,
//! cut metering, and failure cases.

use congest_sim::{
    bits_for_node_id, Context, Incoming, Message, NodeProgram, SimConfig, SimError, Simulator,
    ViolationPolicy,
};
use rwbc_graph::generators::{complete, cycle, path};
use rwbc_graph::{Graph, NodeId};

/// A message with a declared size of `bits` bits.
#[derive(Debug, Clone)]
struct Fat {
    bits: usize,
}

impl Message for Fat {
    fn bit_size(&self, _n: usize) -> usize {
        self.bits
    }
}

/// Sends one oversized message from node 0 to node 1 and idles.
struct Oversender {
    me: NodeId,
    bits: usize,
    done: bool,
}

impl NodeProgram for Oversender {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            ctx.send(1, Fat { bits: self.bits });
        }
        self.done = true;
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, Fat>, _inbox: &[Incoming<Fat>]) {}

    fn is_terminated(&self) -> bool {
        self.done
    }
}

#[test]
fn oversized_message_rejected_in_strict_mode() {
    let g = path(4).unwrap();
    let budget = SimConfig::default().budget_bits(4);
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| Oversender {
        me,
        bits: budget + 1,
        done: false,
    });
    let err = sim.run().unwrap_err();
    match err {
        SimError::BandwidthExceeded {
            from,
            to,
            bits,
            budget: b,
            ..
        } => {
            assert_eq!((from, to), (0, 1));
            assert_eq!(bits, budget + 1);
            assert_eq!(b, budget);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn oversized_message_recorded_in_record_mode() {
    let g = path(4).unwrap();
    let cfg = SimConfig::default().with_violation_policy(ViolationPolicy::Record);
    let budget = cfg.budget_bits(4);
    let mut sim = Simulator::new(&g, cfg, |me| Oversender {
        me,
        bits: budget + 5,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.violations, 1);
    assert!(!stats.congest_compliant());
    assert_eq!(stats.max_bits_edge_round, budget + 5);
}

#[test]
fn message_exactly_at_budget_is_fine() {
    let g = path(4).unwrap();
    let budget = SimConfig::default().budget_bits(4);
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| Oversender {
        me,
        bits: budget,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert!(stats.congest_compliant());
}

/// Sends `count` unit messages to the same neighbor in one round.
struct MultiSender {
    me: NodeId,
    count: usize,
    done: bool,
}

impl NodeProgram for MultiSender {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            for _ in 0..self.count {
                ctx.send(1, Fat { bits: 1 });
            }
        }
        self.done = true;
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, Fat>, _inbox: &[Incoming<Fat>]) {}

    fn is_terminated(&self) -> bool {
        self.done
    }
}

#[test]
fn per_edge_message_limit_enforced() {
    let g = path(3).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| MultiSender {
        me,
        count: 2,
        done: false,
    });
    assert!(matches!(
        sim.run(),
        Err(SimError::TooManyMessages {
            count: 2,
            limit: 1,
            ..
        })
    ));

    // Raising the limit makes the same program legal.
    let cfg = SimConfig::default().with_messages_per_edge(2);
    let mut sim = Simulator::new(&g, cfg, |me| MultiSender {
        me,
        count: 2,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.max_messages_edge_round, 2);
}

/// Tries to send to a non-neighbor.
struct BadSender {
    me: NodeId,
    done: bool,
}

impl NodeProgram for BadSender {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            ctx.send(2, Fat { bits: 1 }); // path 0-1-2: 2 is not adjacent to 0
        }
        self.done = true;
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, Fat>, _inbox: &[Incoming<Fat>]) {}

    fn is_terminated(&self) -> bool {
        self.done
    }
}

#[test]
fn send_to_non_neighbor_rejected() {
    let g = path(3).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| BadSender { me, done: false });
    assert!(matches!(
        sim.run(),
        Err(SimError::NotNeighbor { from: 0, to: 2 })
    ));
}

/// Never terminates: ping-pongs a token forever.
struct PingPong {
    me: NodeId,
}

impl NodeProgram for PingPong {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            ctx.send(1, Fat { bits: 1 });
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Fat>, inbox: &[Incoming<Fat>]) {
        for m in inbox {
            ctx.send(m.from, Fat { bits: 1 });
        }
    }

    fn is_terminated(&self) -> bool {
        false
    }
}

#[test]
fn round_limit_enforced() {
    let g = path(2).unwrap();
    let cfg = SimConfig::default().with_max_rounds(50);
    let mut sim = Simulator::new(&g, cfg, |me| PingPong { me });
    assert!(matches!(
        sim.run(),
        Err(SimError::RoundBudgetExceeded { limit: 50 })
    ));
}

/// Random-walk-ish program used for determinism tests: forwards a token to
/// a uniformly random neighbor for a fixed number of hops, recording its
/// trajectory through visit counts.
#[derive(Debug)]
struct RandomForward {
    me: NodeId,
    visits: u64,
    hops_seen: usize,
    max_hops: usize,
}

impl RandomForward {
    fn new(me: NodeId, max_hops: usize) -> RandomForward {
        RandomForward {
            me,
            visits: 0,
            hops_seen: 0,
            max_hops,
        }
    }
}

impl NodeProgram for RandomForward {
    type Msg = u64; // remaining hops

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.me == 0 {
            let d = ctx.degree();
            let i = rand::Rng::gen_range(ctx.rng(), 0..d);
            let to = ctx.neighbor(i);
            ctx.send(to, self.max_hops as u64);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Incoming<u64>]) {
        for m in inbox {
            self.visits += 1;
            self.hops_seen += 1;
            if m.msg > 1 {
                let d = ctx.degree();
                let i = rand::Rng::gen_range(ctx.rng(), 0..d);
                let to = ctx.neighbor(i);
                ctx.send(to, m.msg - 1);
            }
        }
    }

    fn is_terminated(&self) -> bool {
        true // passive: run ends when the token dies
    }
}

fn visit_vector(g: &Graph, cfg: SimConfig) -> Vec<u64> {
    let mut sim = Simulator::new(g, cfg, |v| RandomForward::new(v, 40));
    sim.run().unwrap();
    sim.programs().iter().map(|p| p.visits).collect()
}

#[test]
fn runs_are_deterministic_under_fixed_seed() {
    let g = complete(12).unwrap();
    let a = visit_vector(&g, SimConfig::default().with_seed(99));
    let b = visit_vector(&g, SimConfig::default().with_seed(99));
    assert_eq!(a, b);
    let c = visit_vector(&g, SimConfig::default().with_seed(100));
    assert_ne!(a, c, "different seeds should explore different walks");
}

#[test]
fn parallel_execution_matches_sequential() {
    let g = complete(70).unwrap();
    let seq = visit_vector(&g, SimConfig::default().with_seed(5).with_threads(1));
    let par = visit_vector(&g, SimConfig::default().with_seed(5).with_threads(4));
    assert_eq!(seq, par);
}

#[test]
fn cut_meter_counts_crossing_traffic() {
    // Cycle 0-1-2-3-0, cut {(1,2),(3,0)} separates {0,1} from {2,3}.
    let g = cycle(4).unwrap();
    let cfg = SimConfig::default().with_cut(vec![(1, 2), (0, 3)]);
    let mut sim = Simulator::new(&g, cfg, |v| congest_sim::algorithms::Flood::new(v, 0));
    let stats = sim.run().unwrap();
    // Flood sends one message per edge direction: 2 cut edges * 2 = 4.
    assert_eq!(stats.cut.messages, 4);
    assert_eq!(stats.cut.bits, 4); // pulses cost 1 bit
    assert_eq!(stats.total_messages, 8);
}

#[test]
fn empty_program_terminates_immediately() {
    struct Idle;
    impl NodeProgram for Idle {
        type Msg = ();
        fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Incoming<()>]) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }
    let g = path(5).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |_| Idle);
    let stats = sim.run().unwrap();
    assert_eq!(stats.rounds, 0);
    assert_eq!(stats.total_messages, 0);
}

#[test]
fn budget_bits_reflect_network_size() {
    let g = path(1000).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |_| PingPong { me: 0 });
    // n = 1000 -> ceil(log2) = 10 -> default coeff 8 -> 80.
    assert_eq!(sim.stats().budget_bits, 80);
    let _ = sim.step();
}

#[test]
fn bits_for_node_id_consistency_with_budget() {
    // A message carrying k node ids fits the default budget when k <= coeff.
    let n = 1 << 16;
    let cfg = SimConfig::default();
    assert!(8 * bits_for_node_id(n) <= cfg.budget_bits(n));
}

#[test]
fn fault_injection_drops_messages_deterministically() {
    use congest_sim::algorithms::Flood;
    let g = complete(10).unwrap();
    let cfg = SimConfig::default().with_seed(3).with_drop_probability(0.5);
    let mut sim = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert!(
        stats.dropped > 0,
        "50% loss on 90 messages should drop some"
    );
    // Determinism: the same config replays the same losses.
    let mut sim2 = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats2 = sim2.run().unwrap();
    assert_eq!(stats, stats2);
}

#[test]
fn zero_drop_probability_is_lossless() {
    use congest_sim::algorithms::Flood;
    let g = complete(8).unwrap();
    let cfg = SimConfig::default().with_drop_probability(0.0);
    let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert_eq!(stats.dropped, 0);
    assert!(sim.programs().iter().all(|p| p.informed()));
}

#[test]
fn drop_probability_is_clamped() {
    let cfg = SimConfig::default().with_drop_probability(7.5);
    assert_eq!(cfg.faults.drop_probability, 1.0);
    let cfg = SimConfig::default().with_drop_probability(-1.0);
    assert_eq!(cfg.faults.drop_probability, 0.0);
    let cfg = SimConfig::default().with_drop_probability(f64::NAN);
    assert_eq!(cfg.faults.drop_probability, 0.0);
}

/// Hub program for the star micro-test: sends `per_leaf` sequenced messages
/// to every leaf in one burst, interleaved across destinations so commit
/// must regroup them.
struct StarHub {
    me: NodeId,
    per_leaf: u64,
    done: bool,
}

impl NodeProgram for StarHub {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.me == 0 {
            let leaves: Vec<NodeId> = ctx.neighbors().collect();
            for seq in 0..self.per_leaf {
                for &leaf in &leaves {
                    ctx.send(leaf, seq);
                }
            }
        }
        self.done = true;
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, u64>, inbox: &[Incoming<u64>]) {
        if self.me != 0 {
            // Per-destination send order must survive commit's regrouping.
            let got: Vec<u64> = inbox.iter().map(|m| m.msg).collect();
            let want: Vec<u64> = (0..self.per_leaf).collect();
            assert_eq!(got, want, "leaf {} saw a reordered burst", self.me);
        }
    }

    fn is_terminated(&self) -> bool {
        self.done
    }
}

#[test]
fn star_hub_burst_commits_grouped_and_in_order() {
    // A 300-leaf hub emitting interleaved per-leaf bursts exercises the
    // sort-then-group commit path (the old per-message linear destination
    // scan was quadratic in hub degree).
    use rwbc_graph::generators::star;
    let leaves = 300;
    let per_leaf = 3u64;
    let g = star(leaves).unwrap();
    let cfg = SimConfig::default().with_messages_per_edge(per_leaf as usize);
    let mut sim = Simulator::new(&g, cfg, |me| StarHub {
        me,
        per_leaf,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.total_messages, leaves as u64 * per_leaf);
    assert_eq!(stats.max_messages_edge_round, per_leaf as usize);
}

#[test]
fn link_outage_blocks_exactly_its_window() {
    use congest_sim::algorithms::Flood;
    use congest_sim::{FaultPlan, LinkOutage};
    let g = path(3).unwrap();
    // The source's only transmission over {0, 1} happens in send round 0;
    // cutting that round partitions the flood.
    let plan = FaultPlan::default().with_link_outage(LinkOutage {
        u: 1,
        v: 0,
        from_round: 0,
        until_round: 1,
    });
    let cfg = SimConfig::default().with_faults(plan);
    let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert_eq!(stats.dropped, 1);
    assert!(!sim.program(1).informed());
    assert!(!sim.program(2).informed());

    // An outage scheduled after the pulse already crossed changes nothing.
    let late = FaultPlan::default().with_link_outage(LinkOutage {
        u: 0,
        v: 1,
        from_round: 5,
        until_round: usize::MAX,
    });
    let cfg = SimConfig::default().with_faults(late);
    let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert_eq!(stats.dropped, 0);
    assert!(sim.programs().iter().all(Flood::informed));
}

#[test]
fn crashed_node_loses_deliveries_and_is_not_stepped() {
    use congest_sim::algorithms::Flood;
    use congest_sim::{FaultPlan, NodeCrash};
    let g = path(3).unwrap();
    // Node 1 is down exactly when the pulse arrives (delivery round 1).
    let plan = FaultPlan::default().with_node_crash(NodeCrash {
        node: 1,
        crash_round: 1,
        recover_round: Some(3),
    });
    let cfg = SimConfig::default().with_faults(plan);
    let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert_eq!(stats.dropped, 1, "the delivery into the crash is lost");
    // The network drains in round 1, so only one crashed round executes.
    assert_eq!(stats.crashed_node_rounds, 1);
    assert!(!sim.program(1).informed());
    assert!(!sim.program(2).informed());
}

#[test]
fn permanently_crashed_node_does_not_block_termination() {
    use congest_sim::algorithms::Flood;
    use congest_sim::{FaultPlan, NodeCrash};
    let g = path(3).unwrap();
    let plan = FaultPlan::default().with_node_crash(NodeCrash {
        node: 2,
        crash_round: 0,
        recover_round: None,
    });
    let cfg = SimConfig::default().with_faults(plan).with_max_rounds(100);
    let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert!(stats.rounds < 100, "run must terminate without node 2");
    assert!(sim.program(1).informed());
    assert!(!sim.program(2).informed());
    assert!(stats.crashed_node_rounds >= 1);
}

#[test]
fn delay_one_always_doubles_flood_informing_times() {
    use congest_sim::algorithms::Flood;
    use congest_sim::FaultPlan;
    let g = path(4).unwrap();
    let plan = FaultPlan::default().with_delay_probability(1.0);
    let cfg = SimConfig::default().with_faults(plan);
    let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    // Every hop takes two rounds: one in the delay buffer, one in flight.
    for v in 1..4 {
        assert_eq!(sim.program(v).informed_at(), Some(2 * v), "node {v}");
    }
    assert_eq!(stats.delayed, stats.total_messages);
    assert_eq!(stats.dropped, 0);
}

/// Counts how many copies of the pulse arrive at node 1.
struct DupProbe {
    me: NodeId,
    received: usize,
    done: bool,
}

impl NodeProgram for DupProbe {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        if self.me == 0 {
            ctx.send(1, ());
        } else {
            self.done = true;
        }
        if self.me == 0 {
            self.done = true;
        }
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, ()>, inbox: &[Incoming<()>]) {
        self.received += inbox.len();
    }

    fn is_terminated(&self) -> bool {
        self.done
    }
}

/// A node program that panics mid-round, for the worker-panic tests.
struct Grenade {
    me: NodeId,
    victim: NodeId,
}

impl NodeProgram for Grenade {
    type Msg = ();

    fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}

    fn on_round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Incoming<()>]) {
        assert!(
            self.me != self.victim,
            "grenade detonated at node {}",
            self.me
        );
    }

    fn is_terminated(&self) -> bool {
        false
    }
}

#[test]
fn worker_panic_surfaces_as_typed_error() {
    // n >= 64 and threads > 1 forces the thread-pool path, where a panic
    // used to abort via the implicit scope join; it must instead come back
    // as a typed error carrying the payload.
    let g = cycle(70).unwrap();
    let cfg = SimConfig::default().with_threads(4).with_max_rounds(10);
    let mut sim = Simulator::new(&g, cfg, |me| Grenade { me, victim: 13 });
    match sim.run().unwrap_err() {
        SimError::WorkerPanic { round, payload } => {
            assert!(
                payload.contains("grenade detonated at node 13"),
                "payload: {payload}"
            );
            assert!(round <= 10);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn checkpoint_resume_is_bit_identical() {
    use congest_sim::algorithms::Flood;
    let g = cycle(16).unwrap();
    let cfg = SimConfig::default().with_seed(42);

    // Uninterrupted reference run.
    let mut reference = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    let ref_stats = reference.run().unwrap();
    let ref_informed: Vec<_> = reference
        .programs()
        .iter()
        .map(Flood::informed_at)
        .collect();

    // Interrupted run: a few rounds, checkpoint, drop, restore, finish.
    let mut first = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    assert!(!first.step().unwrap());
    assert!(!first.step().unwrap());
    let image = first.checkpoint();
    drop(first);
    let mut resumed = Simulator::<Flood>::restore(&g, cfg, &image).unwrap();
    let stats = resumed.run().unwrap();
    let informed: Vec<_> = resumed.programs().iter().map(Flood::informed_at).collect();
    assert_eq!(stats, ref_stats);
    assert_eq!(informed, ref_informed);
}

#[test]
fn checkpoint_resume_preserves_in_flight_faulted_traffic() {
    use congest_sim::algorithms::Flood;
    use congest_sim::FaultPlan;
    // Delays keep messages parked in the delay buffer across the
    // checkpoint boundary; drops consume fault-RNG draws whose stream
    // position must survive serialization.
    let g = complete(10).unwrap();
    let faults = FaultPlan::default()
        .with_drop_probability(0.2)
        .with_delay_probability(0.5);
    let cfg = SimConfig::default().with_seed(7).with_faults(faults);

    let mut reference = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    let ref_stats = reference.run().unwrap();

    let mut first = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    assert!(!first.step().unwrap());
    let image = first.checkpoint();
    drop(first);
    let mut resumed = Simulator::<Flood>::restore(&g, cfg, &image).unwrap();
    let stats = resumed.run().unwrap();
    assert_eq!(stats, ref_stats);
}

#[test]
fn restore_rejects_corrupt_images() {
    use congest_sim::algorithms::Flood;
    let g = path(5).unwrap();
    let cfg = SimConfig::default().with_seed(1);
    let mut sim = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    let _ = sim.step().unwrap();
    let image = sim.checkpoint();

    // A pristine image restores.
    assert!(Simulator::<Flood>::restore(&g, cfg.clone(), &image).is_ok());

    // Truncation.
    assert!(matches!(
        Simulator::<Flood>::restore(&g, cfg.clone(), &image[..image.len() / 2]),
        Err(SimError::CorruptCheckpoint { .. })
    ));

    // Flipped magic word.
    let mut bad = image.to_vec();
    bad[0] ^= 0xFF;
    assert!(matches!(
        Simulator::<Flood>::restore(&g, cfg.clone(), &bad),
        Err(SimError::CorruptCheckpoint { .. })
    ));

    // Seed mismatch between image and config.
    assert!(matches!(
        Simulator::<Flood>::restore(&g, cfg.clone().with_seed(2), &image),
        Err(SimError::CorruptCheckpoint { .. })
    ));

    // Graph size mismatch.
    let bigger = path(6).unwrap();
    assert!(matches!(
        Simulator::<Flood>::restore(&bigger, cfg, &image),
        Err(SimError::CorruptCheckpoint { .. })
    ));
}

#[test]
fn duplicate_one_delivers_every_message_twice() {
    use congest_sim::FaultPlan;
    let g = path(2).unwrap();
    let plan = FaultPlan::default().with_duplicate_probability(1.0);
    let cfg = SimConfig::default().with_faults(plan);
    let mut sim = Simulator::new(&g, cfg, |me| DupProbe {
        me,
        received: 0,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert_eq!(sim.program(1).received, 2);
    assert_eq!(stats.duplicated, 1);
    // The duplicate is a fault artifact: budget accounting saw one send.
    assert_eq!(stats.total_messages, 1);
}
