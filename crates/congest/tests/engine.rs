//! Engine semantics tests: budget enforcement, determinism, parallelism,
//! cut metering, and failure cases.

use congest_sim::{
    bits_for_node_id, Context, Incoming, Message, NodeProgram, SimConfig, SimError, Simulator,
    ViolationPolicy,
};
use rwbc_graph::generators::{complete, cycle, path};
use rwbc_graph::{Graph, NodeId};

/// A message with a declared size of `bits` bits.
#[derive(Debug, Clone)]
struct Fat {
    bits: usize,
}

impl Message for Fat {
    fn bit_size(&self, _n: usize) -> usize {
        self.bits
    }
}

/// Sends one oversized message from node 0 to node 1 and idles.
struct Oversender {
    me: NodeId,
    bits: usize,
    done: bool,
}

impl NodeProgram for Oversender {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            ctx.send(1, Fat { bits: self.bits });
        }
        self.done = true;
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, Fat>, _inbox: &[Incoming<Fat>]) {}

    fn is_terminated(&self) -> bool {
        self.done
    }
}

#[test]
fn oversized_message_rejected_in_strict_mode() {
    let g = path(4).unwrap();
    let budget = SimConfig::default().budget_bits(4);
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| Oversender {
        me,
        bits: budget + 1,
        done: false,
    });
    let err = sim.run().unwrap_err();
    match err {
        SimError::BandwidthExceeded {
            from,
            to,
            bits,
            budget: b,
            ..
        } => {
            assert_eq!((from, to), (0, 1));
            assert_eq!(bits, budget + 1);
            assert_eq!(b, budget);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn oversized_message_recorded_in_record_mode() {
    let g = path(4).unwrap();
    let cfg = SimConfig::default().with_violation_policy(ViolationPolicy::Record);
    let budget = cfg.budget_bits(4);
    let mut sim = Simulator::new(&g, cfg, |me| Oversender {
        me,
        bits: budget + 5,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.violations, 1);
    assert!(!stats.congest_compliant());
    assert_eq!(stats.max_bits_edge_round, budget + 5);
}

#[test]
fn message_exactly_at_budget_is_fine() {
    let g = path(4).unwrap();
    let budget = SimConfig::default().budget_bits(4);
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| Oversender {
        me,
        bits: budget,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert!(stats.congest_compliant());
}

/// Sends `count` unit messages to the same neighbor in one round.
struct MultiSender {
    me: NodeId,
    count: usize,
    done: bool,
}

impl NodeProgram for MultiSender {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            for _ in 0..self.count {
                ctx.send(1, Fat { bits: 1 });
            }
        }
        self.done = true;
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, Fat>, _inbox: &[Incoming<Fat>]) {}

    fn is_terminated(&self) -> bool {
        self.done
    }
}

#[test]
fn per_edge_message_limit_enforced() {
    let g = path(3).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| MultiSender {
        me,
        count: 2,
        done: false,
    });
    assert!(matches!(
        sim.run(),
        Err(SimError::TooManyMessages {
            count: 2,
            limit: 1,
            ..
        })
    ));

    // Raising the limit makes the same program legal.
    let cfg = SimConfig::default().with_messages_per_edge(2);
    let mut sim = Simulator::new(&g, cfg, |me| MultiSender {
        me,
        count: 2,
        done: false,
    });
    let stats = sim.run().unwrap();
    assert_eq!(stats.max_messages_edge_round, 2);
}

/// Tries to send to a non-neighbor.
struct BadSender {
    me: NodeId,
    done: bool,
}

impl NodeProgram for BadSender {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            ctx.send(2, Fat { bits: 1 }); // path 0-1-2: 2 is not adjacent to 0
        }
        self.done = true;
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, Fat>, _inbox: &[Incoming<Fat>]) {}

    fn is_terminated(&self) -> bool {
        self.done
    }
}

#[test]
fn send_to_non_neighbor_rejected() {
    let g = path(3).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |me| BadSender { me, done: false });
    assert!(matches!(
        sim.run(),
        Err(SimError::NotNeighbor { from: 0, to: 2 })
    ));
}

/// Never terminates: ping-pongs a token forever.
struct PingPong {
    me: NodeId,
}

impl NodeProgram for PingPong {
    type Msg = Fat;

    fn on_start(&mut self, ctx: &mut Context<'_, Fat>) {
        if self.me == 0 {
            ctx.send(1, Fat { bits: 1 });
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Fat>, inbox: &[Incoming<Fat>]) {
        for m in inbox {
            ctx.send(m.from, Fat { bits: 1 });
        }
    }

    fn is_terminated(&self) -> bool {
        false
    }
}

#[test]
fn round_limit_enforced() {
    let g = path(2).unwrap();
    let cfg = SimConfig::default().with_max_rounds(50);
    let mut sim = Simulator::new(&g, cfg, |me| PingPong { me });
    assert!(matches!(
        sim.run(),
        Err(SimError::RoundLimitExceeded { limit: 50 })
    ));
}

/// Random-walk-ish program used for determinism tests: forwards a token to
/// a uniformly random neighbor for a fixed number of hops, recording its
/// trajectory through visit counts.
#[derive(Debug)]
struct RandomForward {
    me: NodeId,
    visits: u64,
    hops_seen: usize,
    max_hops: usize,
}

impl RandomForward {
    fn new(me: NodeId, max_hops: usize) -> RandomForward {
        RandomForward {
            me,
            visits: 0,
            hops_seen: 0,
            max_hops,
        }
    }
}

impl NodeProgram for RandomForward {
    type Msg = u64; // remaining hops

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if self.me == 0 {
            let d = ctx.degree();
            let i = rand::Rng::gen_range(ctx.rng(), 0..d);
            let to = ctx.neighbor(i);
            ctx.send(to, self.max_hops as u64);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, inbox: &[Incoming<u64>]) {
        for m in inbox {
            self.visits += 1;
            self.hops_seen += 1;
            if m.msg > 1 {
                let d = ctx.degree();
                let i = rand::Rng::gen_range(ctx.rng(), 0..d);
                let to = ctx.neighbor(i);
                ctx.send(to, m.msg - 1);
            }
        }
    }

    fn is_terminated(&self) -> bool {
        true // passive: run ends when the token dies
    }
}

fn visit_vector(g: &Graph, cfg: SimConfig) -> Vec<u64> {
    let mut sim = Simulator::new(g, cfg, |v| RandomForward::new(v, 40));
    sim.run().unwrap();
    sim.programs().iter().map(|p| p.visits).collect()
}

#[test]
fn runs_are_deterministic_under_fixed_seed() {
    let g = complete(12).unwrap();
    let a = visit_vector(&g, SimConfig::default().with_seed(99));
    let b = visit_vector(&g, SimConfig::default().with_seed(99));
    assert_eq!(a, b);
    let c = visit_vector(&g, SimConfig::default().with_seed(100));
    assert_ne!(a, c, "different seeds should explore different walks");
}

#[test]
fn parallel_execution_matches_sequential() {
    let g = complete(70).unwrap();
    let seq = visit_vector(&g, SimConfig::default().with_seed(5).with_threads(1));
    let par = visit_vector(&g, SimConfig::default().with_seed(5).with_threads(4));
    assert_eq!(seq, par);
}

#[test]
fn cut_meter_counts_crossing_traffic() {
    // Cycle 0-1-2-3-0, cut {(1,2),(3,0)} separates {0,1} from {2,3}.
    let g = cycle(4).unwrap();
    let cfg = SimConfig::default().with_cut(vec![(1, 2), (0, 3)]);
    let mut sim = Simulator::new(&g, cfg, |v| congest_sim::algorithms::Flood::new(v, 0));
    let stats = sim.run().unwrap();
    // Flood sends one message per edge direction: 2 cut edges * 2 = 4.
    assert_eq!(stats.cut.messages, 4);
    assert_eq!(stats.cut.bits, 4); // pulses cost 1 bit
    assert_eq!(stats.total_messages, 8);
}

#[test]
fn empty_program_terminates_immediately() {
    struct Idle;
    impl NodeProgram for Idle {
        type Msg = ();
        fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_round(&mut self, _ctx: &mut Context<'_, ()>, _inbox: &[Incoming<()>]) {}
        fn is_terminated(&self) -> bool {
            true
        }
    }
    let g = path(5).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |_| Idle);
    let stats = sim.run().unwrap();
    assert_eq!(stats.rounds, 0);
    assert_eq!(stats.total_messages, 0);
}

#[test]
fn budget_bits_reflect_network_size() {
    let g = path(1000).unwrap();
    let mut sim = Simulator::new(&g, SimConfig::default(), |_| PingPong { me: 0 });
    // n = 1000 -> ceil(log2) = 10 -> default coeff 8 -> 80.
    assert_eq!(sim.stats().budget_bits, 80);
    let _ = sim.step();
}

#[test]
fn bits_for_node_id_consistency_with_budget() {
    // A message carrying k node ids fits the default budget when k <= coeff.
    let n = 1 << 16;
    let cfg = SimConfig::default();
    assert!(8 * bits_for_node_id(n) <= cfg.budget_bits(n));
}

#[test]
fn fault_injection_drops_messages_deterministically() {
    use congest_sim::algorithms::Flood;
    let g = complete(10).unwrap();
    let cfg = SimConfig::default().with_seed(3).with_drop_probability(0.5);
    let mut sim = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert!(
        stats.dropped > 0,
        "50% loss on 90 messages should drop some"
    );
    // Determinism: the same config replays the same losses.
    let mut sim2 = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats2 = sim2.run().unwrap();
    assert_eq!(stats, stats2);
}

#[test]
fn zero_drop_probability_is_lossless() {
    use congest_sim::algorithms::Flood;
    let g = complete(8).unwrap();
    let cfg = SimConfig::default().with_drop_probability(0.0);
    let mut sim = Simulator::new(&g, cfg, |v| Flood::new(v, 0));
    let stats = sim.run().unwrap();
    assert_eq!(stats.dropped, 0);
    assert!(sim.programs().iter().all(|p| p.informed()));
}

#[test]
fn drop_probability_is_clamped() {
    let cfg = SimConfig::default().with_drop_probability(7.5);
    assert_eq!(cfg.drop_probability, 1.0);
    let cfg = SimConfig::default().with_drop_probability(-1.0);
    assert_eq!(cfg.drop_probability, 0.0);
}
