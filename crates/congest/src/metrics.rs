//! Zero-dependency live telemetry: counters, gauges, histograms, and a
//! process-wide registry with deterministic snapshots.
//!
//! The tracing layer ([`crate::trace`]) records *everything* for
//! post-hoc analysis; this module is the complementary *live* surface:
//! cheap shared handles a running system mutates on its hot path, and a
//! [`Registry`] that materializes a sorted, versioned
//! [`MetricsSnapshot`] on demand — renderable as JSON
//! ([`MetricsSnapshot::to_json`]) or Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]), and wire-encodable
//! ([`WireState`]) for the serve protocol.
//!
//! # Determinism contract
//!
//! Metric *content* is thread-count-invariant the same way trace
//! content is: every engine-level update happens on the simulator's
//! single-threaded commit spine (once per round, in round order), and
//! the remaining updates are commutative atomic additions, so two runs
//! of the same seeded workload — one on 1 thread, one on 4 — produce
//! bit-identical snapshots at any quiescent point. `tests/metrics.rs`
//! property-tests this.
//!
//! # Histograms
//!
//! [`LogHistogram`] is the repo's one log-bucketed histogram: bucket 0
//! holds the value `0`, bucket `i >= 1` holds `[2^(i-1), 2^i)`. It
//! used to live in `trace::profile` (and is still re-exported there);
//! the lock-free recording variant [`Histogram`] shares the exact same
//! bucket function, so profiles, bench latency distributions, and live
//! metrics all agree on boundaries — `histogram_buckets_unchanged`
//! below is the regression test pinning them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::trace::json::Json;
use crate::wire::{BitReader, BitWriter, WireState};

/// Version stamped into every [`MetricsSnapshot`] (and its JSON
/// rendering as `"schema_version"`).
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Number of log buckets covering the full `u64` range: one for zero
/// plus one per bit position.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Prefix prepended to every metric name in Prometheus exposition.
pub const PROMETHEUS_PREFIX: &str = "rwbc_";

// ---------------------------------------------------------------------
// LogHistogram (moved here from trace::profile; re-exported there)
// ---------------------------------------------------------------------

/// A log-bucketed histogram over non-negative integer samples.
///
/// Bucket 0 holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`. Sixty-five buckets cover the full `u64` range,
/// which keeps the structure O(1)-sized no matter how long a run is.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    samples: u64,
    sum: u128,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Bucket index for `value`.
    pub(crate) fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (`0` for bucket 0, else
    /// `2^i - 1`).
    pub(crate) fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn add(&mut self, value: u64) {
        let b = Self::bucket(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.samples += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Rebuilds a histogram from raw parts (trailing zero buckets are
    /// trimmed so equality matches the incrementally-built form).
    fn from_parts(mut counts: Vec<u64>, sum: u128, max: u64) -> LogHistogram {
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let samples = counts.iter().sum();
        LogHistogram {
            counts,
            samples,
            sum,
            max,
        }
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`), by cumulative count; 0 when empty. The exact
    /// sample is unknown past bucket granularity, so this is an upper
    /// estimate — good enough for dashboards (p50/p99 readouts).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.samples as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi_inclusive, count)` ranges, in
    /// ascending value order.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                if i == 0 {
                    (0, 0, c)
                } else {
                    (1u64 << (i - 1), (1u64 << i) - 1, c)
                }
            })
            .collect()
    }

    /// Renders the histogram as `lo..=hi: count` lines with a
    /// proportional bar, for CLI output.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let peak = self.counts.iter().copied().max().unwrap_or(0);
        for (lo, hi, count) in self.buckets() {
            let bar_len = if peak == 0 {
                0
            } else {
                ((count as f64 / peak as f64) * width as f64).ceil() as usize
            };
            let range = if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}..{hi}")
            };
            out.push_str(&format!(
                "  {range:>14}  {count:>8}  {}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

impl WireState for LogHistogram {
    fn encode_state(&self, w: &mut BitWriter) {
        self.counts.encode_state(w);
        ((self.sum >> 64) as u64).encode_state(w);
        (self.sum as u64).encode_state(w);
        self.max.encode_state(w);
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<LogHistogram> {
        let counts = Vec::<u64>::decode_state(r)?;
        if counts.len() > HISTOGRAM_BUCKETS {
            return None;
        }
        let hi = u64::decode_state(r)?;
        let lo = u64::decode_state(r)?;
        let max = u64::decode_state(r)?;
        let sum = (u128::from(hi) << 64) | u128::from(lo);
        Some(LogHistogram::from_parts(counts, sum, max))
    }
}

// ---------------------------------------------------------------------
// Live handles
// ---------------------------------------------------------------------

/// A monotonically non-decreasing counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter (unregistered; usually obtained from
    /// [`Registry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Addition commutes, so concurrent updaters cannot make
    /// the total depend on scheduling.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one (for depth-style gauges tracking a live population).
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        // fetch_update never fails with this closure shape, but stay
        // saturating rather than wrapping if a stray extra dec races in.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_hi: AtomicU64,
    sum_lo: AtomicU64,
    max: AtomicU64,
}

/// A lock-free recording histogram sharing [`LogHistogram`]'s bucket
/// boundaries. Cloning shares the cells; [`Histogram::snapshot`]
/// materializes a plain [`LogHistogram`].
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_hi: AtomicU64::new(0),
            sum_lo: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        inner.counts[LogHistogram::bucket(value)].fetch_add(1, Ordering::Relaxed);
        // 128-bit sum as a carry-propagated pair: overflow of the low
        // word bumps the high word. Concurrent adds commute.
        let prev = inner.sum_lo.fetch_add(value, Ordering::Relaxed);
        if prev.checked_add(value).is_none() {
            inner.sum_hi.fetch_add(1, Ordering::Relaxed);
        }
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Materializes the current contents as a [`LogHistogram`].
    ///
    /// Taken at a quiescent point (no concurrent recorders), the result
    /// is exactly the histogram a sequential [`LogHistogram`] built
    /// from the same samples would be.
    pub fn snapshot(&self) -> LogHistogram {
        let inner = &self.0;
        let counts: Vec<u64> = inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let sum = (u128::from(inner.sum_hi.load(Ordering::Relaxed)) << 64)
            | u128::from(inner.sum_lo.load(Ordering::Relaxed));
        LogHistogram::from_parts(counts, sum, inner.max.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of live metrics. Cloning shares the collection —
/// every clone registers into and snapshots the same instruments.
///
/// Registration (name lookup) takes a lock; the returned handles are
/// lock-free, so hot paths register once up front and then only touch
/// atomics. Names must be non-empty `[a-z0-9_]` (valid Prometheus
/// identifiers once prefixed) — anything else panics at registration,
/// which is a programmer error, not an input error.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

fn check_name(name: &str) {
    let ok = !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        && !name.as_bytes()[0].is_ascii_digit();
    assert!(
        ok,
        "invalid metric name {name:?}: want non-empty [a-z_][a-z0-9_]*"
    );
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        check_name(name);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        check_name(name);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        check_name(name);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Materializes every registered metric, sorted by name within each
    /// kind, stamped with [`METRICS_SCHEMA_VERSION`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            version: METRICS_SCHEMA_VERSION,
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot + exposition
// ---------------------------------------------------------------------

/// A point-in-time copy of a [`Registry`]'s contents, sorted by name —
/// byte-for-byte reproducible given identical metric values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// [`METRICS_SCHEMA_VERSION`] at capture time.
    pub version: u32,
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` pairs, ascending by name.
    pub histograms: Vec<(String, LogHistogram)>,
}

fn clamped_int(v: u128) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// The versioned JSON rendering: sorted keys, stable field order,
    /// suitable for golden tests and artifact embedding.
    pub fn to_json(&self) -> Json {
        let hist = |h: &LogHistogram| {
            Json::Obj(vec![
                ("samples".into(), clamped_int(u128::from(h.samples()))),
                ("sum".into(), clamped_int(h.sum())),
                ("max".into(), clamped_int(u128::from(h.max()))),
                (
                    "buckets".into(),
                    Json::Arr(
                        h.buckets()
                            .into_iter()
                            .map(|(lo, hi, c)| {
                                Json::Arr(vec![
                                    clamped_int(u128::from(lo)),
                                    clamped_int(u128::from(hi)),
                                    clamped_int(u128::from(c)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(i64::from(self.version))),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), clamped_int(u128::from(*v))))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), clamped_int(u128::from(*v))))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), hist(h)))
                        .collect(),
                ),
            ),
        ])
    }

    /// The Prometheus text-exposition rendering (version 0.0.4):
    /// `# TYPE` line per metric, [`PROMETHEUS_PREFIX`]-prefixed names,
    /// histograms as cumulative `_bucket{le="..."}` series plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "# TYPE {p}{name} counter\n{p}{name} {v}\n",
                p = PROMETHEUS_PREFIX
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "# TYPE {p}{name} gauge\n{p}{name} {v}\n",
                p = PROMETHEUS_PREFIX
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "# TYPE {p}{name} histogram\n",
                p = PROMETHEUS_PREFIX
            ));
            let mut cumulative = 0u64;
            for (_, hi, count) in h.buckets() {
                cumulative += count;
                out.push_str(&format!(
                    "{p}{name}_bucket{{le=\"{hi}\"}} {cumulative}\n",
                    p = PROMETHEUS_PREFIX
                ));
            }
            out.push_str(&format!(
                "{p}{name}_bucket{{le=\"+Inf\"}} {count}\n{p}{name}_sum {sum}\n{p}{name}_count {count}\n",
                p = PROMETHEUS_PREFIX,
                count = h.samples(),
                sum = h.sum(),
            ));
        }
        out
    }
}

impl WireState for MetricsSnapshot {
    fn encode_state(&self, w: &mut BitWriter) {
        self.version.encode_state(w);
        let names = |w: &mut BitWriter, pairs: &[(String, u64)]| {
            (pairs.len() as u64).encode_state(w);
            for (name, v) in pairs {
                name.as_bytes().to_vec().encode_state(w);
                v.encode_state(w);
            }
        };
        names(w, &self.counters);
        names(w, &self.gauges);
        (self.histograms.len() as u64).encode_state(w);
        for (name, h) in &self.histograms {
            name.as_bytes().to_vec().encode_state(w);
            h.encode_state(w);
        }
    }

    fn decode_state(r: &mut BitReader<'_>) -> Option<MetricsSnapshot> {
        // A decoded frame already passed the transport's length cap, but
        // keep element counts sane so a corrupt field cannot balloon.
        const MAX_METRICS: u64 = 1 << 16;
        let version = u32::decode_state(r)?;
        let name = |r: &mut BitReader<'_>| -> Option<String> {
            String::from_utf8(Vec::<u8>::decode_state(r)?).ok()
        };
        let pairs = |r: &mut BitReader<'_>| -> Option<Vec<(String, u64)>> {
            let len = u64::decode_state(r)?;
            if len > MAX_METRICS {
                return None;
            }
            let mut out = Vec::with_capacity(len as usize);
            for _ in 0..len {
                out.push((name(r)?, u64::decode_state(r)?));
            }
            Some(out)
        };
        let counters = pairs(r)?;
        let gauges = pairs(r)?;
        let len = u64::decode_state(r)?;
        if len > MAX_METRICS {
            return None;
        }
        let mut histograms = Vec::with_capacity(len as usize);
        for _ in 0..len {
            histograms.push((name(r)?, LogHistogram::decode_state(r)?));
        }
        Some(MetricsSnapshot {
            version,
            counters,
            gauges,
            histograms,
        })
    }
}

/// Checks a Prometheus text-exposition document for structural
/// well-formedness: every sample line names a `# TYPE`-declared family,
/// values parse as numbers, label syntax is balanced, counters and
/// histogram cumulative buckets are internally consistent.
///
/// # Errors
///
/// The 1-based line number and a description of the first violation.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    let mut declared: BTreeMap<String, String> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric kind `{kind}`"));
            }
            declared.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample line without a value"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: value `{value}` is not a number"));
        }
        let name = match name_labels.split_once('{') {
            Some((n, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {lineno}: unbalanced label braces"));
                }
                n
            }
            None => name_labels,
        };
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| declared.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !declared.contains_key(family) {
            return Err(format!(
                "line {lineno}: sample `{name}` has no preceding # TYPE declaration"
            ));
        }
    }
    // Histogram internal consistency: cumulative buckets non-decreasing,
    // +Inf bucket equals _count.
    for (family, kind) in &declared {
        if kind != "histogram" {
            continue;
        }
        let mut last = 0u64;
        let mut inf: Option<u64> = None;
        let mut count: Option<u64> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(&format!("{family}_bucket{{le=\"")) {
                let (le, tail) = rest
                    .split_once("\"}")
                    .ok_or_else(|| format!("{family}: malformed bucket label"))?;
                let v: u64 = tail
                    .trim()
                    .parse()
                    .map_err(|_| format!("{family}: non-integer bucket count"))?;
                if v < last {
                    return Err(format!("{family}: cumulative bucket counts decreased"));
                }
                last = v;
                if le == "+Inf" {
                    inf = Some(v);
                }
            } else if let Some(rest) = line.strip_prefix(&format!("{family}_count ")) {
                count = rest.trim().parse().ok();
            }
        }
        if inf.is_none() {
            return Err(format!("{family}: histogram missing an le=\"+Inf\" bucket"));
        }
        if inf != count {
            return Err(format!("{family}: le=\"+Inf\" bucket != _count"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Typed handle bundles for the instrumented subsystems
// ---------------------------------------------------------------------

/// Live handles for the CONGEST engine, updated once per round on the
/// single-threaded commit spine (see [`crate::Simulator::with_metrics`]).
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Rounds committed (`engine_rounds_total`).
    pub rounds: Counter,
    /// Messages delivered (`engine_messages_total`).
    pub messages: Counter,
    /// Bits delivered (`engine_bits_total`).
    pub bits: Counter,
    /// Messages in flight into the current round (`engine_inbox_depth`).
    pub inbox_depth: Gauge,
}

impl EngineMetrics {
    /// Registers the engine's metric family in `registry`.
    pub fn register(registry: &Registry) -> EngineMetrics {
        EngineMetrics {
            rounds: registry.counter("engine_rounds_total"),
            messages: registry.counter("engine_messages_total"),
            bits: registry.counter("engine_bits_total"),
            inbox_depth: registry.gauge("engine_inbox_depth"),
        }
    }
}

/// Live handles for the [`Reliable`](crate::Reliable) delivery wrapper.
/// Increments are commutative, so per-node wrappers running on worker
/// threads keep totals thread-count-invariant at quiescence.
#[derive(Debug, Clone)]
pub struct ReliableMetrics {
    /// Payload retransmissions (`reliable_retransmissions_total`).
    pub retransmissions: Counter,
    /// Frames rejected by checksum (`reliable_crc_rejects_total`).
    pub crc_rejects: Counter,
    /// Channels declared dead / quarantined
    /// (`reliable_quarantines_total`).
    pub quarantines: Counter,
    /// Duplicate deliveries suppressed
    /// (`reliable_duplicates_suppressed_total`).
    pub duplicates_suppressed: Counter,
}

impl ReliableMetrics {
    /// Registers the reliable layer's metric family in `registry`.
    pub fn register(registry: &Registry) -> ReliableMetrics {
        ReliableMetrics {
            retransmissions: registry.counter("reliable_retransmissions_total"),
            crc_rejects: registry.counter("reliable_crc_rejects_total"),
            quarantines: registry.counter("reliable_quarantines_total"),
            duplicates_suppressed: registry.counter("reliable_duplicates_suppressed_total"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_semantics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 6);

        let g = Gauge::new();
        g.set(9);
        g.inc();
        assert_eq!(g.get(), 10);
        g.dec();
        g.dec();
        assert_eq!(g.get(), 8);
        let empty = Gauge::new();
        empty.dec();
        assert_eq!(empty.get(), 0, "dec saturates at zero");
    }

    /// The shared bucket boundaries are pinned: this is the regression
    /// test for unifying the profile / bench histograms into one type.
    #[test]
    fn histogram_buckets_unchanged() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.add(v);
        }
        assert_eq!(
            h.buckets(),
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (1024, 2047, 1),
            ]
        );
        assert_eq!(h.samples(), 8);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn atomic_histogram_matches_sequential() {
        let atomic = Histogram::new();
        let mut seq = LogHistogram::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x >> (x % 48);
            atomic.record(v);
            seq.add(v);
        }
        assert_eq!(atomic.snapshot(), seq);
    }

    #[test]
    fn quantile_tracks_cumulative_buckets() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.add(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        // The p50 sample (50) lives in bucket [32, 63].
        assert_eq!(h.quantile(0.5), 63);
        // The p99/p100 samples live in the top bucket, clamped to max.
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(LogHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("zeta").add(3);
        r.counter("alpha").add(1);
        r.gauge("mid").set(7);
        r.histogram("lat_us").record(5);
        // Re-registration returns the same cell.
        r.counter("alpha").inc();
        let snap = r.snapshot();
        assert_eq!(snap.version, METRICS_SCHEMA_VERSION);
        assert_eq!(
            snap.counters,
            vec![("alpha".to_string(), 2), ("zeta".to_string(), 3)]
        );
        assert_eq!(snap.gauge("mid"), Some(7));
        assert_eq!(snap.histogram("lat_us").unwrap().samples(), 1);
        assert_eq!(snap, r.snapshot(), "snapshots are reproducible");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_names_panic() {
        Registry::new().counter("no-dashes");
    }

    #[test]
    fn golden_json_exposition() {
        let r = Registry::new();
        r.counter("requests_total").add(5);
        r.gauge("queue_depth").set(2);
        let h = r.histogram("latency_us");
        for v in [0, 1, 3, 900] {
            h.record(v);
        }
        assert_eq!(
            r.snapshot().to_json().to_json(),
            r#"{"schema_version":1,"counters":{"requests_total":5},"gauges":{"queue_depth":2},"histograms":{"latency_us":{"samples":4,"sum":904,"max":900,"buckets":[[0,0,1],[1,1,1],[2,3,1],[512,1023,1]]}}}"#
        );
    }

    #[test]
    fn golden_prometheus_exposition() {
        let r = Registry::new();
        r.counter("requests_total").add(5);
        r.gauge("queue_depth").set(2);
        let h = r.histogram("latency_us");
        for v in [0, 1, 3, 900] {
            h.record(v);
        }
        let text = r.snapshot().to_prometheus();
        assert_eq!(
            text,
            "# TYPE rwbc_requests_total counter\n\
             rwbc_requests_total 5\n\
             # TYPE rwbc_queue_depth gauge\n\
             rwbc_queue_depth 2\n\
             # TYPE rwbc_latency_us histogram\n\
             rwbc_latency_us_bucket{le=\"0\"} 1\n\
             rwbc_latency_us_bucket{le=\"1\"} 2\n\
             rwbc_latency_us_bucket{le=\"3\"} 3\n\
             rwbc_latency_us_bucket{le=\"1023\"} 4\n\
             rwbc_latency_us_bucket{le=\"+Inf\"} 4\n\
             rwbc_latency_us_sum 904\n\
             rwbc_latency_us_count 4\n"
        );
        lint_prometheus(&text).expect("golden output lints clean");
    }

    #[test]
    fn prometheus_linter_rejects_malformed() {
        assert!(lint_prometheus("rwbc_x 1\n").is_err(), "undeclared family");
        assert!(
            lint_prometheus("# TYPE rwbc_x counter\nrwbc_x notanumber\n").is_err(),
            "non-numeric value"
        );
        assert!(
            lint_prometheus("# TYPE rwbc_x widget\nrwbc_x 1\n").is_err(),
            "unknown kind"
        );
        assert!(
            lint_prometheus(
                "# TYPE rwbc_h histogram\nrwbc_h_bucket{le=\"1\"} 2\nrwbc_h_bucket{le=\"+Inf\"} 1\nrwbc_h_sum 1\nrwbc_h_count 1\n"
            )
            .is_err(),
            "decreasing cumulative buckets"
        );
        assert!(
            lint_prometheus("# TYPE rwbc_h histogram\nrwbc_h_sum 1\nrwbc_h_count 1\n").is_err(),
            "missing +Inf bucket"
        );
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let r = Registry::new();
        r.counter("a_total").add(17);
        r.gauge("b").set(u64::MAX);
        let h = r.histogram("c_us");
        for v in [0u64, 5, 5, u64::MAX] {
            h.record(v);
        }
        let snap = r.snapshot();
        let mut w = BitWriter::new();
        snap.encode_state(&mut w);
        let bytes = w.finish();
        let mut rdr = BitReader::new(&bytes);
        let back = MetricsSnapshot::decode_state(&mut rdr).expect("decode");
        assert_eq!(back, snap);
        // Truncation is a typed failure, never a panic.
        for cut in 0..bytes.len().min(16) {
            let mut rdr = BitReader::new(&bytes[..cut]);
            let _ = MetricsSnapshot::decode_state(&mut rdr);
        }
    }

    #[test]
    fn histogram_sum_carries_past_u64() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(2);
        let snap = h.snapshot();
        assert_eq!(snap.sum(), 2 * u128::from(u64::MAX) + 2);
        let mut seq = LogHistogram::new();
        seq.add(u64::MAX);
        seq.add(u64::MAX);
        seq.add(2);
        assert_eq!(snap, seq);
    }
}
