//! Bit-exact wire encoding.
//!
//! [`Message::bit_size`] declares how many bits a message occupies; this
//! module provides a real encoder/decoder so tests can verify that declared
//! sizes are *achievable* — i.e. the distributed algorithm's messages
//! genuinely fit in `O(log n)` bits, not just by assertion.
//!
//! [`Message::bit_size`]: crate::Message::bit_size
//!
//! # Example
//!
//! ```
//! use congest_sim::wire::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(5, 3); // value 5 in 3 bits
//! w.write_bits(300, 9); // value 300 in 9 bits
//! assert_eq!(w.bit_len(), 12);
//! let bytes = w.finish();
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(3), Some(5));
//! assert_eq!(r.read_bits(9), Some(300));
//! ```

use bytes::{BufMut, Bytes, BytesMut};

/// State that can round-trip through the bit-exact wire encoding.
///
/// This is the serialization contract behind [`Simulator::checkpoint`] /
/// [`Simulator::restore`]: a program (and its message type) that implements
/// `WireState` can be frozen at a round boundary and resumed bit-identically
/// later, possibly in another process. Checkpoints live on the *host* side —
/// they are never charged against the CONGEST budget — so implementations
/// are free to use full-width fields; symmetry with the encoder is what
/// matters, not compactness.
///
/// Decoding is total: a truncated or corrupt image yields `None`, never a
/// panic, so restore paths can surface a typed error.
///
/// [`Simulator::checkpoint`]: crate::Simulator::checkpoint
/// [`Simulator::restore`]: crate::Simulator::restore
pub trait WireState: Sized {
    /// Appends this value's complete state to `w`.
    fn encode_state(&self, w: &mut BitWriter);
    /// Reads back a value previously written by
    /// [`WireState::encode_state`]; `None` on truncated input.
    fn decode_state(r: &mut BitReader<'_>) -> Option<Self>;
}

impl WireState for u64 {
    fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(*self, 64);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<u64> {
        r.read_bits(64)
    }
}

impl WireState for u32 {
    fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(u64::from(*self), 32);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<u32> {
        r.read_bits(32).map(|v| v as u32)
    }
}

impl WireState for u8 {
    fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(u64::from(*self), 8);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<u8> {
        r.read_bits(8).map(|v| v as u8)
    }
}

impl WireState for usize {
    fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(*self as u64, 64);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<usize> {
        r.read_bits(64).map(|v| v as usize)
    }
}

impl WireState for bool {
    fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(u64::from(*self), 1);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<bool> {
        r.read_bits(1).map(|v| v == 1)
    }
}

impl WireState for f64 {
    fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(self.to_bits(), 64);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<f64> {
        r.read_bits(64).map(f64::from_bits)
    }
}

impl WireState for () {
    fn encode_state(&self, _w: &mut BitWriter) {}
    fn decode_state(_r: &mut BitReader<'_>) -> Option<()> {
        Some(())
    }
}

impl<T: WireState> WireState for Option<T> {
    fn encode_state(&self, w: &mut BitWriter) {
        match self {
            Some(v) => {
                w.write_bits(1, 1);
                v.encode_state(w);
            }
            None => w.write_bits(0, 1),
        }
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<Option<T>> {
        match r.read_bits(1)? {
            0 => Some(None),
            _ => T::decode_state(r).map(Some),
        }
    }
}

impl<T: WireState> WireState for Vec<T> {
    fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(self.len() as u64, 64);
        for item in self {
            item.encode_state(w);
        }
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<Vec<T>> {
        let len = r.read_bits(64)? as usize;
        // Guard against a corrupt length field allocating the world: the
        // remaining input must hold at least one bit per element.
        if len > r.remaining_bits() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode_state(r)?);
        }
        Some(out)
    }
}

impl<A: WireState, B: WireState> WireState for (A, B) {
    fn encode_state(&self, w: &mut BitWriter) {
        self.0.encode_state(w);
        self.1.encode_state(w);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<(A, B)> {
        Some((A::decode_state(r)?, B::decode_state(r)?))
    }
}

impl<A: WireState, B: WireState, C: WireState> WireState for (A, B, C) {
    fn encode_state(&self, w: &mut BitWriter) {
        self.0.encode_state(w);
        self.1.encode_state(w);
        self.2.encode_state(w);
    }
    fn decode_state(r: &mut BitReader<'_>) -> Option<(A, B, C)> {
        Some((
            A::decode_state(r)?,
            B::decode_state(r)?,
            C::decode_state(r)?,
        ))
    }
}

/// Append-only bit-level writer backed by [`bytes::BytesMut`].
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Bits used in the pending (not yet flushed) byte.
    pending: u8,
    pending_bits: u8,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Writes the `width` low bits of `value`, most-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds 64 bits");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.pending = (self.pending << 1) | bit;
            self.pending_bits += 1;
            self.bit_len += 1;
            if self.pending_bits == 8 {
                self.buf.put_u8(self.pending);
                self.pending = 0;
                self.pending_bits = 0;
            }
        }
    }

    /// Writes a whole byte slice (each byte as 8 bits, in order).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_bits(u64::from(b), 8);
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finishes, zero-padding the final partial byte.
    pub fn finish(mut self) -> Bytes {
        if self.pending_bits > 0 {
            self.buf.put_u8(self.pending << (8 - self.pending_bits));
        }
        self.buf.freeze()
    }
}

/// Bit-level reader over a byte slice; the mirror of [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader { data, cursor: 0 }
    }

    /// Reads `width` bits (most-significant first); `None` when the input
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: usize) -> Option<u64> {
        assert!(width <= 64, "width {width} exceeds 64 bits");
        if self.cursor + width > self.data.len() * 8 {
            return None;
        }
        let mut value = 0u64;
        for _ in 0..width {
            let byte = self.data[self.cursor / 8];
            let bit = (byte >> (7 - (self.cursor % 8))) & 1;
            value = (value << 1) | u64::from(bit);
            self.cursor += 1;
        }
        Some(value)
    }

    /// Reads `len` whole bytes; `None` when the input is exhausted.
    pub fn read_bytes(&mut self, len: usize) -> Option<Vec<u8>> {
        if len.checked_mul(8)? > self.remaining_bits() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.read_bits(8)? as u8);
        }
        Some(out)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Bits left to read (counting the zero padding of the final byte).
    pub fn remaining_bits(&self) -> usize {
        (self.data.len() * 8).saturating_sub(self.cursor)
    }
}

/// Lookup table for the IEEE 802.3 CRC-32 (reflected polynomial
/// `0xEDB88320`), built at compile time — the workspace is offline, so
/// the checksum is hand-rolled here rather than pulled from a crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 (IEEE) over bit-granular content.
///
/// Bits are accumulated most-significant first and flushed to the
/// polynomial byte-wise, exactly mirroring [`BitWriter`]: feeding a field
/// sequence through [`Crc32::update_bits`] yields the same checksum as
/// byte-hashing the [`BitWriter::finish`] output of that sequence
/// (including the zero padding of the final partial byte). That makes the
/// checksum of a frame well-defined without ever materializing its bytes.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
    pending: u8,
    pending_bits: u8,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum (standard init value).
    pub fn new() -> Crc32 {
        Crc32 {
            state: 0xFFFF_FFFF,
            pending: 0,
            pending_bits: 0,
        }
    }

    fn update_byte(&mut self, byte: u8) {
        let idx = (self.state ^ u32::from(byte)) & 0xFF;
        self.state = CRC32_TABLE[idx as usize] ^ (self.state >> 8);
    }

    /// Feeds the `width` low bits of `value`, most-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits
    /// (same contract as [`BitWriter::write_bits`]).
    pub fn update_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds 64 bits");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = ((value >> i) & 1) as u8;
            self.pending = (self.pending << 1) | bit;
            self.pending_bits += 1;
            if self.pending_bits == 8 {
                let byte = self.pending;
                self.update_byte(byte);
                self.pending = 0;
                self.pending_bits = 0;
            }
        }
    }

    /// Feeds a full `u64`.
    pub fn update_u64(&mut self, value: u64) {
        self.update_bits(value, 64);
    }

    /// Feeds whole bytes.
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.update_bits(u64::from(b), 8);
        }
    }

    /// Flushes the partial byte (zero-padded, like [`BitWriter::finish`])
    /// and returns the checksum.
    pub fn finish(mut self) -> u32 {
        if self.pending_bits > 0 {
            let byte = self.pending << (8 - self.pending_bits);
            self.update_byte(byte);
        }
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update_bytes(data);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        let fields = [(1u64, 1usize), (0, 1), (5, 3), (255, 8), (1023, 10), (0, 7)];
        for &(v, width) in &fields {
            w.write_bits(v, width);
        }
        let total: usize = fields.iter().map(|&(_, w)| w).sum();
        assert_eq!(w.bit_len(), total);
        let bytes = w.finish();
        assert_eq!(bytes.len(), total.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &fields {
            assert_eq!(r.read_bits(width), Some(v));
        }
        assert_eq!(r.position(), total);
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(3, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2), Some(3));
        // The padded byte still has 6 readable (zero) bits...
        assert_eq!(r.read_bits(6), Some(0));
        // ...but nothing beyond.
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn full_width_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_value_panics() {
        BitWriter::new().write_bits(4, 2);
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bit_granular_crc_equals_byte_crc_of_the_encoding() {
        let fields = [(1u64, 1usize), (300, 9), (0, 0), (u64::MAX, 64), (5, 3)];
        let mut w = BitWriter::new();
        let mut c = Crc32::new();
        for &(v, width) in &fields {
            w.write_bits(v, width);
            c.update_bits(v, width);
        }
        assert_eq!(c.finish(), crc32(&w.finish()));
    }

    #[test]
    fn byte_helpers_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(1, 3); // unaligned prefix
        w.write_bytes(&[0xDE, 0xAD, 0xBE]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(1));
        assert_eq!(r.read_bytes(3), Some(vec![0xDE, 0xAD, 0xBE]));
        assert_eq!(r.read_bytes(1), None, "past the end");
        assert_eq!(r.read_bytes(usize::MAX), None, "len overflow is caught");
    }
}
