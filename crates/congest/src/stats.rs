use serde::{Deserialize, Serialize};

use rwbc_graph::NodeId;

/// Accumulated traffic across a designated edge cut.
///
/// The lower-bound proof (paper Theorems 6–7) hinges on the total number of
/// bits that must cross a small cut; this meter measures exactly that for a
/// concrete run, giving the empirical side of experiment E6.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutMeter {
    /// Messages that crossed the cut (either direction).
    pub messages: u64,
    /// Bits that crossed the cut (either direction).
    pub bits: u64,
}

/// The traffic summary of one pipeline phase — the unit of the
/// per-phase (walk vs count vs collect) breakdown the bench artifacts
/// attribute compression wins with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTraffic {
    /// Rounds the phase executed.
    pub rounds: usize,
    /// Messages the phase delivered.
    pub messages: u64,
    /// Bits the phase delivered.
    pub bits: u64,
}

/// Statistics of a completed (or aborted) simulation run.
///
/// # Equality
///
/// `PartialEq` compares the *protocol-observable* content only: the
/// execution-environment echoes ([`RunStats::effective_threads`] and
/// [`RunStats::granularity`]) are excluded, so a t1 run and a t8 run of
/// the same protocol compare equal — exactly the determinism contract
/// the engine's thread-count-invariance tests assert. The echoes are
/// likewise excluded from checkpoint images (checkpoint bytes are
/// bit-identical at any thread count) and are re-derived from the
/// config on restore.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Rounds executed until global termination.
    pub rounds: usize,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Total bits delivered.
    pub total_bits: u64,
    /// Maximum bits observed on a single edge direction in a single round.
    pub max_bits_edge_round: usize,
    /// Where [`RunStats::max_bits_edge_round`] was achieved, as
    /// `(from, to, round)` for the first edge direction that reached the
    /// maximum. `None` when nothing was sent.
    pub peak_edge: Option<(NodeId, NodeId, usize)>,
    /// Maximum messages observed on a single edge direction in a single
    /// round.
    pub max_messages_edge_round: usize,
    /// The per-edge bit budget `B(n)` the run was charged against.
    pub budget_bits: usize,
    /// Budget violations (only non-zero under
    /// [`ViolationPolicy::Record`]).
    ///
    /// [`ViolationPolicy::Record`]: crate::ViolationPolicy::Record
    pub violations: u64,
    /// Messages lost to fault injection: Bernoulli drops, link outages,
    /// and deliveries discarded because the receiver was crashed.
    pub dropped: u64,
    /// Extra copies delivered by fault-injected duplication.
    pub duplicated: u64,
    /// Messages that arrived one round late due to fault-injected delay.
    pub delayed: u64,
    /// Messages mangled in flight by corruption fault injection. Counts
    /// every corruption event; the subset destroyed beyond parsing is
    /// *also* counted in [`RunStats::dropped`] (with trace reason
    /// `corrupt`), since the receiver never sees it.
    pub corrupted: u64,
    /// Corrupt frames detected and discarded by a checksummed delivery
    /// layer (folded from [`NodeProgram::reliability_stats`]); each one is
    /// repaired by retransmission.
    ///
    /// [`NodeProgram::reliability_stats`]: crate::NodeProgram::reliability_stats
    pub corrupt_frames_detected: u64,
    /// Retransmissions performed by the reliable-delivery layer (folded
    /// from [`NodeProgram::reliability_stats`] at the end of a run).
    ///
    /// [`NodeProgram::reliability_stats`]: crate::NodeProgram::reliability_stats
    pub retransmissions: u64,
    /// Duplicate deliveries suppressed by the reliable-delivery layer.
    pub duplicates_suppressed: u64,
    /// Channel-death declarations made by the failure detector (each
    /// directed channel that gave up counts once; a mutually declared edge
    /// counts twice). Zero unless
    /// [`Reliable::with_failure_detection`](crate::Reliable::with_failure_detection)
    /// is in use.
    pub dead_links_declared: u64,
    /// Application payloads abandoned because their channel was declared
    /// dead: in-flight frames whose retransmission was cancelled plus
    /// later sends addressed to an already-dead peer.
    pub undeliverable_messages: u64,
    /// Total (node, round) pairs in which a node was crashed and therefore
    /// not stepped.
    pub crashed_node_rounds: u64,
    /// Rounds spent purely on delivery recovery: rounds executed after
    /// every node's *application* program had terminated, while the
    /// reliable layer was still retransmitting or draining acks.
    pub delivery_overhead_rounds: u64,
    /// Traffic across the configured cut.
    pub cut: CutMeter,
    /// The worker count the engine *actually* used for the round loop
    /// (see [`SimConfig::effective_threads`]): the configured thread
    /// count clamped by the granularity knob. A run configured `t=4`
    /// on a graph too small to split records 1 here — it can no longer
    /// masquerade as a parallel data point. Excluded from equality and
    /// from checkpoint images (see the struct docs); 0 only in
    /// hand-built or legacy-decoded values that never saw an engine.
    ///
    /// [`SimConfig::effective_threads`]: crate::SimConfig::effective_threads
    pub effective_threads: usize,
    /// The granularity knob ([`SimConfig::granularity`]) the run was
    /// configured with. Excluded from equality and checkpoints like
    /// [`RunStats::effective_threads`].
    ///
    /// [`SimConfig::granularity`]: crate::SimConfig::granularity
    pub granularity: usize,
}

/// Protocol-observable equality: every counter and meter, but not the
/// execution-environment echoes (`effective_threads`, `granularity`) —
/// see the struct docs.
impl PartialEq for RunStats {
    fn eq(&self, other: &RunStats) -> bool {
        self.rounds == other.rounds
            && self.total_messages == other.total_messages
            && self.total_bits == other.total_bits
            && self.max_bits_edge_round == other.max_bits_edge_round
            && self.peak_edge == other.peak_edge
            && self.max_messages_edge_round == other.max_messages_edge_round
            && self.budget_bits == other.budget_bits
            && self.violations == other.violations
            && self.dropped == other.dropped
            && self.duplicated == other.duplicated
            && self.delayed == other.delayed
            && self.corrupted == other.corrupted
            && self.corrupt_frames_detected == other.corrupt_frames_detected
            && self.retransmissions == other.retransmissions
            && self.duplicates_suppressed == other.duplicates_suppressed
            && self.dead_links_declared == other.dead_links_declared
            && self.undeliverable_messages == other.undeliverable_messages
            && self.crashed_node_rounds == other.crashed_node_rounds
            && self.delivery_overhead_rounds == other.delivery_overhead_rounds
            && self.cut == other.cut
    }
}

impl RunStats {
    /// Whether the run stayed within the CONGEST budget everywhere
    /// (the mechanical check of the paper's Theorem 4).
    pub fn congest_compliant(&self) -> bool {
        self.violations == 0 && self.max_bits_edge_round <= self.budget_bits
    }

    /// The phase-breakdown projection of this run: rounds, messages,
    /// and bits, the three axes the bench artifacts attribute per phase.
    pub fn traffic(&self) -> PhaseTraffic {
        PhaseTraffic {
            rounds: self.rounds,
            messages: self.total_messages,
            bits: self.total_bits,
        }
    }

    /// Accumulates another run's statistics into this one: additive
    /// counters add, per-round maxima take the max, and the peak-edge
    /// location travels with the maximum it belongs to (strictly greater:
    /// on a tie the earlier run keeps the record). `budget_bits` is left
    /// untouched — callers accumulate runs charged against the same
    /// budget. Used by multi-sub-phase drivers (e.g. fault recovery) to
    /// report one total.
    pub fn absorb(&mut self, s: &RunStats) {
        self.rounds += s.rounds;
        self.total_messages += s.total_messages;
        self.total_bits += s.total_bits;
        if s.max_bits_edge_round > self.max_bits_edge_round {
            self.max_bits_edge_round = s.max_bits_edge_round;
            self.peak_edge = s.peak_edge;
        }
        self.max_messages_edge_round = self.max_messages_edge_round.max(s.max_messages_edge_round);
        self.violations += s.violations;
        self.dropped += s.dropped;
        self.duplicated += s.duplicated;
        self.delayed += s.delayed;
        self.corrupted += s.corrupted;
        self.corrupt_frames_detected += s.corrupt_frames_detected;
        self.retransmissions += s.retransmissions;
        self.duplicates_suppressed += s.duplicates_suppressed;
        self.dead_links_declared += s.dead_links_declared;
        self.undeliverable_messages += s.undeliverable_messages;
        self.crashed_node_rounds += s.crashed_node_rounds;
        self.delivery_overhead_rounds += s.delivery_overhead_rounds;
        self.cut.messages += s.cut.messages;
        self.cut.bits += s.cut.bits;
        // Sub-phases share one config; the max covers an accumulator
        // that started from `RunStats::default()` (echoes of 0).
        self.effective_threads = self.effective_threads.max(s.effective_threads);
        self.granularity = self.granularity.max(s.granularity);
    }

    /// Average bits per delivered message, or 0 when nothing was sent.
    pub fn mean_bits_per_message(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.total_messages as f64
        }
    }

    /// Retransmissions as a fraction of total messages (0 when nothing
    /// was sent). Retransmitted frames are themselves counted in
    /// `total_messages`, so the ratio is bounded by 1.
    pub fn retransmission_ratio(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.total_messages as f64
        }
    }

    /// Delivery-overhead rounds as a fraction of all rounds (0 for an
    /// empty run).
    pub fn overhead_round_fraction(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.delivery_overhead_rounds as f64 / self.rounds as f64
        }
    }

    /// A human-readable, aligned multi-line summary of the run with the
    /// derived rates spelled out. Intended for CLI/experiment output;
    /// the exact layout is not a stable API.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut line = |label: &str, value: String| {
            out.push_str(&format!("  {label:<26} {value}\n"));
        };
        line("rounds", format!("{}", self.rounds));
        let per_round = if self.rounds == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.rounds as f64
        };
        line(
            "messages",
            format!("{:<12} ({per_round:.1} / round)", self.total_messages),
        );
        line(
            "bits",
            format!(
                "{:<12} ({:.1} / message)",
                self.total_bits,
                self.mean_bits_per_message()
            ),
        );
        let peak_at = match self.peak_edge {
            Some((from, to, round)) => format!(" (edge {from} -> {to}, round {round})"),
            None => String::new(),
        };
        line(
            "peak edge-round bits",
            format!(
                "{} of {} budget{peak_at}",
                self.max_bits_edge_round, self.budget_bits
            ),
        );
        line(
            "peak edge-round messages",
            format!("{}", self.max_messages_edge_round),
        );
        line(
            "congest compliant",
            format!(
                "{} ({} violations)",
                if self.congest_compliant() {
                    "yes"
                } else {
                    "no"
                },
                self.violations
            ),
        );
        line(
            "dropped / dup / delayed",
            format!("{} / {} / {}", self.dropped, self.duplicated, self.delayed),
        );
        line(
            "corrupted (detected)",
            format!("{} ({})", self.corrupted, self.corrupt_frames_detected),
        );
        line(
            "retransmissions",
            format!(
                "{:<12} ({:.4} of messages)",
                self.retransmissions,
                self.retransmission_ratio()
            ),
        );
        line(
            "duplicates suppressed",
            format!("{}", self.duplicates_suppressed),
        );
        line(
            "dead links declared",
            format!("{}", self.dead_links_declared),
        );
        line(
            "undeliverable messages",
            format!("{}", self.undeliverable_messages),
        );
        line(
            "crashed node-rounds",
            format!("{}", self.crashed_node_rounds),
        );
        line(
            "delivery overhead rounds",
            format!(
                "{:<12} ({:.4} of rounds)",
                self.delivery_overhead_rounds,
                self.overhead_round_fraction()
            ),
        );
        line(
            "cut traffic",
            format!("{} msgs / {} bits", self.cut.messages, self.cut.bits),
        );
        // Only engine-produced stats carry the execution echo;
        // hand-built values (echoes of 0) skip the line.
        if self.effective_threads > 0 {
            line(
                "worker threads (effective)",
                format!(
                    "{} (granularity {})",
                    self.effective_threads, self.granularity
                ),
            );
        }
        out
    }
}

impl crate::wire::WireState for CutMeter {
    fn encode_state(&self, w: &mut crate::wire::BitWriter) {
        self.messages.encode_state(w);
        self.bits.encode_state(w);
    }
    fn decode_state(r: &mut crate::wire::BitReader<'_>) -> Option<CutMeter> {
        Some(CutMeter {
            messages: u64::decode_state(r)?,
            bits: u64::decode_state(r)?,
        })
    }
}

impl crate::wire::WireState for RunStats {
    fn encode_state(&self, w: &mut crate::wire::BitWriter) {
        self.rounds.encode_state(w);
        self.total_messages.encode_state(w);
        self.total_bits.encode_state(w);
        self.max_bits_edge_round.encode_state(w);
        self.peak_edge.encode_state(w);
        self.max_messages_edge_round.encode_state(w);
        self.budget_bits.encode_state(w);
        self.violations.encode_state(w);
        self.dropped.encode_state(w);
        self.duplicated.encode_state(w);
        self.delayed.encode_state(w);
        self.corrupted.encode_state(w);
        self.corrupt_frames_detected.encode_state(w);
        self.retransmissions.encode_state(w);
        self.duplicates_suppressed.encode_state(w);
        self.dead_links_declared.encode_state(w);
        self.undeliverable_messages.encode_state(w);
        self.crashed_node_rounds.encode_state(w);
        self.delivery_overhead_rounds.encode_state(w);
        self.cut.encode_state(w);
    }
    fn decode_state(r: &mut crate::wire::BitReader<'_>) -> Option<RunStats> {
        Some(RunStats {
            rounds: usize::decode_state(r)?,
            total_messages: u64::decode_state(r)?,
            total_bits: u64::decode_state(r)?,
            max_bits_edge_round: usize::decode_state(r)?,
            peak_edge: Option::<(NodeId, NodeId, usize)>::decode_state(r)?,
            max_messages_edge_round: usize::decode_state(r)?,
            budget_bits: usize::decode_state(r)?,
            violations: u64::decode_state(r)?,
            dropped: u64::decode_state(r)?,
            duplicated: u64::decode_state(r)?,
            delayed: u64::decode_state(r)?,
            corrupted: u64::decode_state(r)?,
            corrupt_frames_detected: u64::decode_state(r)?,
            retransmissions: u64::decode_state(r)?,
            duplicates_suppressed: u64::decode_state(r)?,
            dead_links_declared: u64::decode_state(r)?,
            undeliverable_messages: u64::decode_state(r)?,
            crashed_node_rounds: u64::decode_state(r)?,
            delivery_overhead_rounds: u64::decode_state(r)?,
            cut: CutMeter::decode_state(r)?,
            effective_threads: 0,
            granularity: 0,
        })
    }
}

impl RunStats {
    /// Decodes the version-1 checkpoint layout, which predates
    /// [`RunStats::peak_edge`]; the peak location is unrecoverable from
    /// such images and decodes as `None`.
    pub(crate) fn decode_state_v1(r: &mut crate::wire::BitReader<'_>) -> Option<RunStats> {
        use crate::wire::WireState;
        Some(RunStats {
            rounds: usize::decode_state(r)?,
            total_messages: u64::decode_state(r)?,
            total_bits: u64::decode_state(r)?,
            max_bits_edge_round: usize::decode_state(r)?,
            peak_edge: None,
            corrupted: 0,
            corrupt_frames_detected: 0,
            max_messages_edge_round: usize::decode_state(r)?,
            budget_bits: usize::decode_state(r)?,
            violations: u64::decode_state(r)?,
            dropped: u64::decode_state(r)?,
            duplicated: u64::decode_state(r)?,
            delayed: u64::decode_state(r)?,
            retransmissions: u64::decode_state(r)?,
            duplicates_suppressed: u64::decode_state(r)?,
            dead_links_declared: u64::decode_state(r)?,
            undeliverable_messages: u64::decode_state(r)?,
            crashed_node_rounds: u64::decode_state(r)?,
            delivery_overhead_rounds: u64::decode_state(r)?,
            cut: CutMeter::decode_state(r)?,
            effective_threads: 0,
            granularity: 0,
        })
    }

    /// Decodes the version-2 checkpoint layout, which has
    /// [`RunStats::peak_edge`] but predates the corruption counters
    /// (which decode as zero).
    pub(crate) fn decode_state_v2(r: &mut crate::wire::BitReader<'_>) -> Option<RunStats> {
        use crate::wire::WireState;
        Some(RunStats {
            rounds: usize::decode_state(r)?,
            total_messages: u64::decode_state(r)?,
            total_bits: u64::decode_state(r)?,
            max_bits_edge_round: usize::decode_state(r)?,
            peak_edge: Option::<(NodeId, NodeId, usize)>::decode_state(r)?,
            corrupted: 0,
            corrupt_frames_detected: 0,
            max_messages_edge_round: usize::decode_state(r)?,
            budget_bits: usize::decode_state(r)?,
            violations: u64::decode_state(r)?,
            dropped: u64::decode_state(r)?,
            duplicated: u64::decode_state(r)?,
            delayed: u64::decode_state(r)?,
            retransmissions: u64::decode_state(r)?,
            duplicates_suppressed: u64::decode_state(r)?,
            dead_links_declared: u64::decode_state(r)?,
            undeliverable_messages: u64::decode_state(r)?,
            crashed_node_rounds: u64::decode_state(r)?,
            delivery_overhead_rounds: u64::decode_state(r)?,
            cut: CutMeter::decode_state(r)?,
            effective_threads: 0,
            granularity: 0,
        })
    }
}

/// Per-node counters reported by a reliable-delivery adapter through
/// [`NodeProgram::reliability_stats`].
///
/// [`NodeProgram::reliability_stats`]: crate::NodeProgram::reliability_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Payload retransmissions this node performed.
    pub retransmissions: u64,
    /// Duplicate deliveries this node suppressed.
    pub duplicates_suppressed: u64,
    /// Corrupt frames this node detected (checksum mismatch) and
    /// discarded for retransmission to repair.
    pub corrupt_frames_detected: u64,
    /// Channels this node declared dead (failure detection only).
    pub dead_links_declared: u64,
    /// Payloads this node abandoned on dead channels.
    pub undeliverable_messages: u64,
    /// Last round in which the wrapped application program was *active* —
    /// received or produced an application message (`None` if it never
    /// was). Rounds after the network-wide maximum of this value are pure
    /// delivery overhead: ack draining and retransmissions.
    pub inner_last_active_round: Option<usize>,
}

/// Normalizes an undirected pair for cut membership checks.
pub(crate) fn ordered(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliance_logic() {
        let mut s = RunStats {
            budget_bits: 32,
            max_bits_edge_round: 32,
            ..RunStats::default()
        };
        assert!(s.congest_compliant());
        s.max_bits_edge_round = 33;
        assert!(!s.congest_compliant());
        s.max_bits_edge_round = 10;
        s.violations = 1;
        assert!(!s.congest_compliant());
    }

    #[test]
    fn mean_bits() {
        let s = RunStats {
            total_messages: 4,
            total_bits: 10,
            ..RunStats::default()
        };
        assert!((s.mean_bits_per_message() - 2.5).abs() < 1e-12);
        assert_eq!(RunStats::default().mean_bits_per_message(), 0.0);
    }

    #[test]
    fn ordered_normalizes() {
        assert_eq!(ordered(3, 1), (1, 3));
        assert_eq!(ordered(1, 3), (1, 3));
        assert_eq!(ordered(2, 2), (2, 2));
    }

    #[test]
    fn summary_reports_peak_edge_and_rates() {
        let s = RunStats {
            rounds: 100,
            total_messages: 400,
            total_bits: 9600,
            max_bits_edge_round: 48,
            peak_edge: Some((3, 7, 12)),
            budget_bits: 64,
            retransmissions: 4,
            delivery_overhead_rounds: 10,
            ..RunStats::default()
        };
        let text = s.summary();
        assert!(text.contains("edge 3 -> 7, round 12"), "{text}");
        assert!(text.contains("48 of 64 budget"), "{text}");
        assert!(text.contains("0.0100 of messages"), "{text}");
        assert!(text.contains("0.1000 of rounds"), "{text}");
        assert!(text.contains("congest compliant"), "{text}");
        // No peak location line when nothing was sent.
        let empty = RunStats::default().summary();
        assert!(!empty.contains("edge "), "{empty}");
    }

    #[test]
    fn equality_ignores_execution_environment_echoes() {
        let a = RunStats {
            rounds: 5,
            total_messages: 10,
            effective_threads: 1,
            granularity: 16,
            ..RunStats::default()
        };
        let b = RunStats {
            effective_threads: 8,
            granularity: 4,
            ..a.clone()
        };
        // Same protocol content at different worker layouts: equal.
        assert_eq!(a, b);
        let c = RunStats {
            total_messages: 11,
            ..a.clone()
        };
        assert_ne!(a, c);
        // The echoes survive a summary render but never a checkpoint.
        assert!(a.summary().contains("1 (granularity 16)"));
        use crate::wire::{BitReader, BitWriter, WireState};
        let mut w = BitWriter::new();
        a.encode_state(&mut w);
        let bytes = w.finish();
        let decoded = RunStats::decode_state(&mut BitReader::new(&bytes)).unwrap();
        assert_eq!(decoded.effective_threads, 0);
        assert_eq!(decoded.granularity, 0);
        assert_eq!(decoded, a);
    }

    #[test]
    fn v1_stats_decode_drops_peak_edge() {
        use crate::wire::{BitReader, BitWriter, WireState};
        let s = RunStats {
            rounds: 7,
            total_messages: 9,
            total_bits: 100,
            max_bits_edge_round: 20,
            peak_edge: Some((1, 2, 3)),
            max_messages_edge_round: 2,
            budget_bits: 32,
            ..RunStats::default()
        };
        // Hand-build the legacy (pre-peak_edge) image: the v2 layout
        // minus the Option field that sits after max_bits_edge_round.
        let mut w = BitWriter::new();
        s.rounds.encode_state(&mut w);
        s.total_messages.encode_state(&mut w);
        s.total_bits.encode_state(&mut w);
        s.max_bits_edge_round.encode_state(&mut w);
        s.max_messages_edge_round.encode_state(&mut w);
        s.budget_bits.encode_state(&mut w);
        s.violations.encode_state(&mut w);
        s.dropped.encode_state(&mut w);
        s.duplicated.encode_state(&mut w);
        s.delayed.encode_state(&mut w);
        s.retransmissions.encode_state(&mut w);
        s.duplicates_suppressed.encode_state(&mut w);
        s.dead_links_declared.encode_state(&mut w);
        s.undeliverable_messages.encode_state(&mut w);
        s.crashed_node_rounds.encode_state(&mut w);
        s.delivery_overhead_rounds.encode_state(&mut w);
        s.cut.encode_state(&mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let decoded = RunStats::decode_state_v1(&mut r).unwrap();
        assert_eq!(decoded.peak_edge, None);
        assert_eq!(
            decoded,
            RunStats {
                peak_edge: None,
                ..s.clone()
            }
        );
        // And the current layout round-trips the peak.
        let mut w = BitWriter::new();
        s.encode_state(&mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(RunStats::decode_state(&mut r).unwrap(), s);
    }
}
