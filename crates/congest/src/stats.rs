use serde::{Deserialize, Serialize};

use rwbc_graph::NodeId;

/// Accumulated traffic across a designated edge cut.
///
/// The lower-bound proof (paper Theorems 6–7) hinges on the total number of
/// bits that must cross a small cut; this meter measures exactly that for a
/// concrete run, giving the empirical side of experiment E6.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutMeter {
    /// Messages that crossed the cut (either direction).
    pub messages: u64,
    /// Bits that crossed the cut (either direction).
    pub bits: u64,
}

/// Statistics of a completed (or aborted) simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Rounds executed until global termination.
    pub rounds: usize,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Total bits delivered.
    pub total_bits: u64,
    /// Maximum bits observed on a single edge direction in a single round.
    pub max_bits_edge_round: usize,
    /// Maximum messages observed on a single edge direction in a single
    /// round.
    pub max_messages_edge_round: usize,
    /// The per-edge bit budget `B(n)` the run was charged against.
    pub budget_bits: usize,
    /// Budget violations (only non-zero under
    /// [`ViolationPolicy::Record`]).
    ///
    /// [`ViolationPolicy::Record`]: crate::ViolationPolicy::Record
    pub violations: u64,
    /// Messages lost to fault injection: Bernoulli drops, link outages,
    /// and deliveries discarded because the receiver was crashed.
    pub dropped: u64,
    /// Extra copies delivered by fault-injected duplication.
    pub duplicated: u64,
    /// Messages that arrived one round late due to fault-injected delay.
    pub delayed: u64,
    /// Retransmissions performed by the reliable-delivery layer (folded
    /// from [`NodeProgram::reliability_stats`] at the end of a run).
    ///
    /// [`NodeProgram::reliability_stats`]: crate::NodeProgram::reliability_stats
    pub retransmissions: u64,
    /// Duplicate deliveries suppressed by the reliable-delivery layer.
    pub duplicates_suppressed: u64,
    /// Channel-death declarations made by the failure detector (each
    /// directed channel that gave up counts once; a mutually declared edge
    /// counts twice). Zero unless
    /// [`Reliable::with_failure_detection`](crate::Reliable::with_failure_detection)
    /// is in use.
    pub dead_links_declared: u64,
    /// Application payloads abandoned because their channel was declared
    /// dead: in-flight frames whose retransmission was cancelled plus
    /// later sends addressed to an already-dead peer.
    pub undeliverable_messages: u64,
    /// Total (node, round) pairs in which a node was crashed and therefore
    /// not stepped.
    pub crashed_node_rounds: u64,
    /// Rounds spent purely on delivery recovery: rounds executed after
    /// every node's *application* program had terminated, while the
    /// reliable layer was still retransmitting or draining acks.
    pub delivery_overhead_rounds: u64,
    /// Traffic across the configured cut.
    pub cut: CutMeter,
}

impl RunStats {
    /// Whether the run stayed within the CONGEST budget everywhere
    /// (the mechanical check of the paper's Theorem 4).
    pub fn congest_compliant(&self) -> bool {
        self.violations == 0 && self.max_bits_edge_round <= self.budget_bits
    }

    /// Average bits per delivered message, or 0 when nothing was sent.
    pub fn mean_bits_per_message(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.total_messages as f64
        }
    }
}

impl crate::wire::WireState for CutMeter {
    fn encode_state(&self, w: &mut crate::wire::BitWriter) {
        self.messages.encode_state(w);
        self.bits.encode_state(w);
    }
    fn decode_state(r: &mut crate::wire::BitReader<'_>) -> Option<CutMeter> {
        Some(CutMeter {
            messages: u64::decode_state(r)?,
            bits: u64::decode_state(r)?,
        })
    }
}

impl crate::wire::WireState for RunStats {
    fn encode_state(&self, w: &mut crate::wire::BitWriter) {
        self.rounds.encode_state(w);
        self.total_messages.encode_state(w);
        self.total_bits.encode_state(w);
        self.max_bits_edge_round.encode_state(w);
        self.max_messages_edge_round.encode_state(w);
        self.budget_bits.encode_state(w);
        self.violations.encode_state(w);
        self.dropped.encode_state(w);
        self.duplicated.encode_state(w);
        self.delayed.encode_state(w);
        self.retransmissions.encode_state(w);
        self.duplicates_suppressed.encode_state(w);
        self.dead_links_declared.encode_state(w);
        self.undeliverable_messages.encode_state(w);
        self.crashed_node_rounds.encode_state(w);
        self.delivery_overhead_rounds.encode_state(w);
        self.cut.encode_state(w);
    }
    fn decode_state(r: &mut crate::wire::BitReader<'_>) -> Option<RunStats> {
        Some(RunStats {
            rounds: usize::decode_state(r)?,
            total_messages: u64::decode_state(r)?,
            total_bits: u64::decode_state(r)?,
            max_bits_edge_round: usize::decode_state(r)?,
            max_messages_edge_round: usize::decode_state(r)?,
            budget_bits: usize::decode_state(r)?,
            violations: u64::decode_state(r)?,
            dropped: u64::decode_state(r)?,
            duplicated: u64::decode_state(r)?,
            delayed: u64::decode_state(r)?,
            retransmissions: u64::decode_state(r)?,
            duplicates_suppressed: u64::decode_state(r)?,
            dead_links_declared: u64::decode_state(r)?,
            undeliverable_messages: u64::decode_state(r)?,
            crashed_node_rounds: u64::decode_state(r)?,
            delivery_overhead_rounds: u64::decode_state(r)?,
            cut: CutMeter::decode_state(r)?,
        })
    }
}

/// Per-node counters reported by a reliable-delivery adapter through
/// [`NodeProgram::reliability_stats`].
///
/// [`NodeProgram::reliability_stats`]: crate::NodeProgram::reliability_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Payload retransmissions this node performed.
    pub retransmissions: u64,
    /// Duplicate deliveries this node suppressed.
    pub duplicates_suppressed: u64,
    /// Channels this node declared dead (failure detection only).
    pub dead_links_declared: u64,
    /// Payloads this node abandoned on dead channels.
    pub undeliverable_messages: u64,
    /// Last round in which the wrapped application program was *active* —
    /// received or produced an application message (`None` if it never
    /// was). Rounds after the network-wide maximum of this value are pure
    /// delivery overhead: ack draining and retransmissions.
    pub inner_last_active_round: Option<usize>,
}

/// Normalizes an undirected pair for cut membership checks.
pub(crate) fn ordered(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliance_logic() {
        let mut s = RunStats {
            budget_bits: 32,
            max_bits_edge_round: 32,
            ..RunStats::default()
        };
        assert!(s.congest_compliant());
        s.max_bits_edge_round = 33;
        assert!(!s.congest_compliant());
        s.max_bits_edge_round = 10;
        s.violations = 1;
        assert!(!s.congest_compliant());
    }

    #[test]
    fn mean_bits() {
        let s = RunStats {
            total_messages: 4,
            total_bits: 10,
            ..RunStats::default()
        };
        assert!((s.mean_bits_per_message() - 2.5).abs() < 1e-12);
        assert_eq!(RunStats::default().mean_bits_per_message(), 0.0);
    }

    #[test]
    fn ordered_normalizes() {
        assert_eq!(ordered(3, 1), (1, 3));
        assert_eq!(ordered(1, 3), (1, 3));
        assert_eq!(ordered(2, 2), (2, 2));
    }
}
