use serde::{Deserialize, Serialize};

use rwbc_graph::NodeId;

use crate::fault::{sanitize_probability, FaultPlan};

/// What to do when traffic exceeds the CONGEST budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ViolationPolicy {
    /// Abort the run with a [`SimError`] — use this to *prove* an algorithm
    /// respects the model (paper Theorem 4).
    ///
    /// [`SimError`]: crate::SimError
    #[default]
    Strict,
    /// Deliver anyway but count the violation in [`RunStats`] — useful for
    /// measuring *how much* an algorithm (e.g. the trivial `O(m)` collection
    /// baseline) would overload edges.
    ///
    /// [`RunStats`]: crate::RunStats
    Record,
}

/// Configuration of a [`Simulator`] run.
///
/// [`Simulator`]: crate::Simulator
///
/// # Example
///
/// ```
/// use congest_sim::SimConfig;
/// let cfg = SimConfig::default().with_seed(7).with_bandwidth_coeff(4);
/// assert_eq!(cfg.budget_bits(1024), 4 * 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; each node derives an independent deterministic RNG.
    pub seed: u64,
    /// The per-edge budget per round is `bandwidth_coeff * ceil(log2 n)`
    /// bits. The model requires `O(log n)`; the coefficient pins the
    /// constant.
    pub bandwidth_coeff: usize,
    /// Messages allowed per edge *direction* per round (the paper's model
    /// transfers a constant number; default 1).
    pub messages_per_edge: usize,
    /// Hard round budget: abort with
    /// [`SimError::RoundBudgetExceeded`](crate::SimError::RoundBudgetExceeded)
    /// if global termination is not reached by this round. Every config
    /// carries a finite budget (the default is 10⁷), so a livelocked
    /// protocol — e.g. unbounded retransmission toward a dead link —
    /// becomes a typed error, never a hang.
    pub max_rounds: usize,
    /// How budget violations are handled.
    pub violation_policy: ViolationPolicy,
    /// Edges (unordered pairs) whose traffic the cut meter accumulates.
    pub cut: Vec<(NodeId, NodeId)>,
    /// Fault injection schedule (default: empty — the CONGEST model is
    /// reliable). Messages lost to any fault are still charged against the
    /// budget (they were sent) and counted in [`RunStats::dropped`].
    ///
    /// [`RunStats::dropped`]: crate::RunStats
    pub faults: FaultPlan,
    /// Number of worker threads for the round loop (1 = sequential).
    /// Results are identical for any value; this only affects wall-time.
    pub threads: usize,
    /// Minimum nodes per worker chunk. The engine clamps the worker
    /// count so every chunk holds at least this many nodes (see
    /// [`SimConfig::effective_threads`]), replacing the old hardcoded
    /// "sequential below 64 nodes" fallback with a tunable knob. Like
    /// `threads`, this only affects wall-time, never results.
    pub granularity: usize,
}

/// Default for [`SimConfig::granularity`]: chunks of at least 16 nodes.
/// Below that, per-round worker coordination costs more than the work.
fn default_granularity() -> usize {
    16
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            seed: 0xC0DE ^ 0x9E37_79B9_7F4A_7C15,
            bandwidth_coeff: 8,
            messages_per_edge: 1,
            max_rounds: 10_000_000,
            violation_policy: ViolationPolicy::Strict,
            cut: Vec::new(),
            faults: FaultPlan::default(),
            threads: 1,
            granularity: default_granularity(),
        }
    }
}

impl SimConfig {
    /// Sets the master seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the bandwidth coefficient (builder style).
    #[must_use]
    pub fn with_bandwidth_coeff(mut self, coeff: usize) -> SimConfig {
        self.bandwidth_coeff = coeff;
        self
    }

    /// Sets the per-edge-per-round message limit (builder style).
    #[must_use]
    pub fn with_messages_per_edge(mut self, limit: usize) -> SimConfig {
        self.messages_per_edge = limit;
        self
    }

    /// Sets the hard round budget (builder style). Clamped to at least 1,
    /// the same defensive validation the fault probabilities get: a zero
    /// budget would reject every run before its first round.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> SimConfig {
        self.max_rounds = max_rounds.max(1);
        self
    }

    /// Sets the violation policy (builder style).
    #[must_use]
    pub fn with_violation_policy(mut self, policy: ViolationPolicy) -> SimConfig {
        self.violation_policy = policy;
        self
    }

    /// Declares the monitored cut (builder style). Pairs are unordered.
    #[must_use]
    pub fn with_cut(mut self, cut: Vec<(NodeId, NodeId)>) -> SimConfig {
        self.cut = cut;
        self
    }

    /// Sets the message-drop probability for fault injection (builder
    /// style). Clamped to `[0, 1]`; NaN is treated as 0 rather than being
    /// propagated into the Bernoulli draw, where it would panic mid-run.
    /// Shorthand for configuring a [`FaultPlan`] with only Bernoulli drops.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> SimConfig {
        self.faults.drop_probability = sanitize_probability(p);
        self
    }

    /// Installs a complete fault schedule (builder style).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> SimConfig {
        self.faults = faults;
        self
    }

    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> SimConfig {
        self.threads = threads.max(1);
        self
    }

    /// Sets the minimum nodes per worker chunk (builder style). Clamped
    /// to at least 1.
    #[must_use]
    pub fn with_granularity(mut self, granularity: usize) -> SimConfig {
        self.granularity = granularity.max(1);
        self
    }

    /// The worker count the engine will actually use for an `n`-node
    /// network: `threads` clamped so every worker chunk holds at least
    /// [`granularity`](SimConfig::granularity) nodes. A result of 1
    /// means the round loop runs sequentially. This is the value the
    /// engine records in [`RunStats::effective_threads`], so a run
    /// configured with 8 threads on a graph too small to split can
    /// never masquerade as a parallel data point.
    ///
    /// [`RunStats::effective_threads`]: crate::RunStats::effective_threads
    pub fn effective_threads(&self, n: usize) -> usize {
        let workers = self.threads.max(1);
        workers.min((n / self.granularity.max(1)).max(1))
    }

    /// The per-edge bit budget `B(n) = bandwidth_coeff * ceil(log2 n)` for a
    /// network of `n` nodes (minimum 1 bit for degenerate `n`).
    pub fn budget_bits(&self, n: usize) -> usize {
        self.bandwidth_coeff * log2_ceil(n).max(1)
    }
}

/// `ceil(log2(x))` with `log2_ceil(0) = 0`, `log2_ceil(1) = 0`.
pub(crate) fn log2_ceil(x: usize) -> usize {
    if x <= 1 {
        0
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn budget_scales_logarithmically() {
        let cfg = SimConfig::default().with_bandwidth_coeff(3);
        assert_eq!(cfg.budget_bits(16), 3 * 4);
        assert_eq!(cfg.budget_bits(1 << 20), 3 * 20);
        // Degenerate graphs still allow at least coeff bits.
        assert_eq!(cfg.budget_bits(1), 3);
    }

    #[test]
    fn drop_probability_nan_is_disabled_not_propagated() {
        // A NaN survives f64::clamp (clamp only panics when min > max), so
        // without sanitization it would reach gen_bool mid-run and panic
        // there. NaN means "no valid probability": treat it as disabled.
        let cfg = SimConfig::default().with_drop_probability(f64::NAN);
        assert_eq!(cfg.faults.drop_probability, 0.0);
        assert!(cfg.faults.is_empty());
    }

    #[test]
    fn effective_threads_respects_granularity() {
        let cfg = SimConfig::default().with_threads(8).with_granularity(16);
        // Chunks of at least 16 nodes: small graphs run sequentially,
        // and the worker count grows with n until `threads` caps it.
        assert_eq!(cfg.effective_threads(8), 1);
        assert_eq!(cfg.effective_threads(16), 1);
        assert_eq!(cfg.effective_threads(32), 2);
        assert_eq!(cfg.effective_threads(64), 4);
        assert_eq!(cfg.effective_threads(128), 8);
        assert_eq!(cfg.effective_threads(1 << 20), 8);
        // Degenerate knobs are clamped, never divide by zero.
        let cfg = SimConfig::default().with_threads(0).with_granularity(0);
        assert_eq!(cfg.granularity, 1);
        assert_eq!(cfg.effective_threads(100), 1);
        let single = SimConfig {
            granularity: 0,
            ..SimConfig::default()
        };
        assert_eq!(single.effective_threads(100), 1);
    }

    #[test]
    fn builder_chains() {
        let cfg = SimConfig::default()
            .with_seed(9)
            .with_messages_per_edge(2)
            .with_max_rounds(100)
            .with_threads(0)
            .with_violation_policy(ViolationPolicy::Record);
        assert_eq!(SimConfig::default().with_max_rounds(0).max_rounds, 1);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.messages_per_edge, 2);
        assert_eq!(cfg.max_rounds, 100);
        assert_eq!(cfg.threads, 1); // clamped
        assert_eq!(cfg.violation_policy, ViolationPolicy::Record);
    }
}
