use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the deterministic per-node RNG used by the simulator.
///
/// Each node's randomness must be (a) independent across nodes — in the
/// real model every node flips its own coins — and (b) reproducible from
/// the master seed, so that experiments and failure cases can be replayed
/// exactly. We mix the node id into the master seed with the SplitMix64
/// finalizer, a bijective avalanche mix.
///
/// # Example
///
/// ```
/// use congest_sim::node_rng;
/// use rand::Rng;
/// let mut a = node_rng(42, 0);
/// let mut b = node_rng(42, 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let mut c = node_rng(42, 1);
/// // Different nodes see unrelated streams (overwhelmingly likely).
/// assert_ne!(node_rng(42, 0).gen::<u64>(), c.gen::<u64>());
/// ```
pub fn node_rng(master_seed: u64, node: usize) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        master_seed ^ splitmix64(node as u64 ^ 0xA076_1D64_78BD_642F),
    ))
}

/// SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_node() {
        for node in 0..8 {
            let x: u64 = node_rng(7, node).gen();
            let y: u64 = node_rng(7, node).gen();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn distinct_across_nodes_and_seeds() {
        let vals: Vec<u64> = (0..64).map(|v| node_rng(7, v).gen()).collect();
        let mut dedup = vals.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), vals.len(), "collision across node streams");
        assert_ne!(node_rng(7, 0).gen::<u64>(), node_rng(8, 0).gen::<u64>());
    }

    #[test]
    fn splitmix_avalanche_nontrivial() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
