//! A synchronous **CONGEST-model** network simulator.
//!
//! The CONGEST model (Peleg 2000; Section III-A of the reproduced paper) is
//! a synchronous message-passing model on a graph `G = (V, E)`:
//!
//! * computation proceeds in discrete *rounds*;
//! * in each round every node may send one message to each neighbor;
//! * each message carries at most `O(log n)` bits;
//! * time complexity is the number of rounds until all nodes terminate
//!   (local computation is free).
//!
//! This crate realizes the model faithfully enough that the paper's claims
//! become *measurable*:
//!
//! * [`Simulator`] runs a [`NodeProgram`] per node in lockstep rounds;
//! * every message is charged its [`Message::bit_size`] against the per-edge
//!   budget `B(n) = bandwidth_coeff · ⌈log₂ n⌉` and the per-edge message
//!   limit, and violations are either hard errors (strict mode, the default)
//!   or recorded in [`RunStats`];
//! * [`RunStats`] reports rounds, messages, bits, and the per-edge-per-round
//!   maxima that Theorem 4 of the paper is about;
//! * a *cut meter* counts traffic crossing a designated edge cut — the
//!   instrument behind the lower-bound experiment (E6), where the paper's
//!   `Ω(n / log n + D)` bound stems from `Ω(N log N)` bits having to cross a
//!   `Θ(log N)`-edge cut (paper Theorem 7).
//!
//! # Example: flooding a token
//!
//! ```
//! use congest_sim::{algorithms::Flood, SimConfig, Simulator};
//! use rwbc_graph::generators::path;
//!
//! # fn main() -> Result<(), congest_sim::SimError> {
//! let g = path(8).unwrap();
//! let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
//! let stats = sim.run()?;
//! // The token needs eccentricity(0) = 7 rounds to reach node 7.
//! assert!(stats.rounds >= 7);
//! assert!(sim.programs().iter().all(|p| p.informed()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod fault;
mod message;
mod node;
mod reliable;
mod rng;
mod stats;

pub mod algorithms;
pub mod metrics;
pub mod trace;
pub mod wire;

pub use config::{SimConfig, ViolationPolicy};
pub use engine::Simulator;
pub use error::SimError;
pub use fault::{CorruptionKind, FaultPlan, LinkCorruption, LinkOutage, NodeCrash};
pub use message::{bits_for_count, bits_for_node_id, Message};
pub use metrics::{
    Counter, EngineMetrics, Gauge, Histogram, LogHistogram, MetricsSnapshot, Registry,
    ReliableMetrics, METRICS_SCHEMA_VERSION,
};
pub use node::{Context, Incoming, NodeProgram};
pub use reliable::{Reliable, ReliableMsg, DEFAULT_DEATH_THRESHOLD, FRAME_CHECKSUM_BITS};
pub use rng::node_rng;
pub use stats::{CutMeter, PhaseTraffic, ReliabilityStats, RunStats};
pub use trace::{
    FlightRecorder, JsonlTracer, MemoryTracer, NoopTracer, TraceEvent, Tracer,
    FLIGHT_DEFAULT_CAPACITY,
};
