use rwbc_graph::NodeId;

use crate::{bits_for_count, Context, Incoming, Message, NodeProgram};

/// The associative, commutative reduction to convergecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Sum of all inputs.
    Sum,
    /// Maximum of all inputs.
    Max,
    /// Minimum of all inputs.
    Min,
}

impl AggregateOp {
    fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggregateOp::Sum => a + b,
            AggregateOp::Max => a.max(b),
            AggregateOp::Min => a.min(b),
        }
    }
}

/// Messages of the aggregation protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMsg {
    /// BFS-tree announcement (sender offers itself as parent).
    Announce,
    /// Unicast from a child to its chosen parent: "count me".
    Register,
    /// A completed subtree's aggregate flowing to the parent.
    Partial(u64),
}

impl Message for AggMsg {
    fn bit_size(&self, _n: usize) -> usize {
        // 2 tag bits, plus the value for partials.
        match self {
            AggMsg::Announce | AggMsg::Register => 2,
            AggMsg::Partial(v) => 2 + bits_for_count(*v),
        }
    }
}

/// Tree aggregation (convergecast): the root learns
/// `op(input_0, …, input_{n−1})` over all reachable nodes in `O(D)`
/// rounds — the classic CONGEST reduction primitive.
///
/// Protocol, with exact round offsets (node adopts its parent in round
/// `r`):
///
/// 1. round `r`: broadcast `Announce` (the BFS wave continues);
/// 2. round `r + 1`: unicast `Register` to the parent;
/// 3. the parent therefore receives **all** of its children's
///    registrations in round `r + 3` of its own adoption — one round,
///    one exact child count, no ambiguity;
/// 4. once a node's child count is known and all children's `Partial`s
///    have arrived, it sends its combined `Partial` up (leaves fire
///    immediately). The root's value completes when its last subtree
///    reports.
///
/// Every message is ≤ `2 + log₂(max aggregate)` bits and every edge
/// carries at most one message per round (the three sends of a node —
/// announce, register, partial — happen in distinct rounds).
///
/// # Example
///
/// ```
/// use congest_sim::{algorithms::{Aggregate, AggregateOp}, SimConfig, Simulator};
/// use rwbc_graph::generators::grid_2d;
///
/// # fn main() -> Result<(), congest_sim::SimError> {
/// let g = grid_2d(3, 3).unwrap();
/// // Sum of all node ids: 0 + 1 + ... + 8 = 36.
/// let mut sim = Simulator::new(&g, SimConfig::default(), |v| {
///     Aggregate::new(v, 0, v as u64, AggregateOp::Sum)
/// });
/// sim.run()?;
/// assert_eq!(sim.program(0).result(), Some(36));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Aggregate {
    me: NodeId,
    root: NodeId,
    op: AggregateOp,
    parent: Option<NodeId>,
    adopted_round: Option<usize>,
    announced: bool,
    /// Own input combined with received partials.
    acc: u64,
    /// Registrations received (becomes the child count at `adopted + 3`).
    registrations: usize,
    /// Outstanding children (`None` until the window closes).
    pending_children: Option<usize>,
    reported: bool,
    result: Option<u64>,
}

impl Aggregate {
    /// Program for node `me` contributing `input`, aggregating toward
    /// `root` with `op`.
    pub fn new(me: NodeId, root: NodeId, input: u64, op: AggregateOp) -> Aggregate {
        Aggregate {
            me,
            root,
            op,
            parent: if me == root { Some(me) } else { None },
            adopted_round: if me == root { Some(0) } else { None },
            announced: false,
            acc: input,
            registrations: 0,
            pending_children: None,
            reported: false,
            result: None,
        }
    }

    /// The aggregate over all nodes reachable from the root (available at
    /// the root after termination; `None` elsewhere and before).
    pub fn result(&self) -> Option<u64> {
        self.result
    }

    /// Whether this node has folded its subtree and reported upward.
    pub fn reported(&self) -> bool {
        self.reported
    }

    fn maybe_report(&mut self, ctx: &mut Context<'_, AggMsg>) {
        if self.reported {
            return;
        }
        let Some(adopted) = self.adopted_round else {
            return;
        };
        if self.pending_children.is_none() && ctx.round() >= adopted + 3 {
            self.pending_children = Some(self.registrations);
        }
        if self.pending_children == Some(0) {
            self.reported = true;
            if self.me == self.root {
                self.result = Some(self.acc);
            } else {
                let parent = self.parent.expect("adoption implies a parent");
                ctx.send(parent, AggMsg::Partial(self.acc));
            }
        }
    }
}

impl NodeProgram for Aggregate {
    type Msg = AggMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AggMsg>) {
        if self.me == self.root {
            ctx.broadcast(AggMsg::Announce);
            self.announced = true;
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, AggMsg>, inbox: &[Incoming<AggMsg>]) {
        for m in inbox {
            match m.msg {
                AggMsg::Announce => {
                    if self.parent.is_none() && self.me != self.root {
                        self.parent = Some(m.from);
                        self.adopted_round = Some(ctx.round());
                    }
                }
                AggMsg::Register => {
                    self.registrations += 1;
                }
                AggMsg::Partial(v) => {
                    self.acc = self.op.combine(self.acc, v);
                    *self
                        .pending_children
                        .as_mut()
                        .expect("partials arrive only after the registration window") -= 1;
                }
            }
        }
        // Step 1: continue the wave in the adoption round.
        if self.parent.is_some() && !self.announced {
            ctx.broadcast(AggMsg::Announce);
            self.announced = true;
        } else if let (Some(parent), Some(adopted)) = (self.parent, self.adopted_round) {
            // Step 2: register with the parent one round later.
            if self.me != self.root && ctx.round() == adopted + 1 {
                ctx.send(parent, AggMsg::Register);
            }
        }
        // Steps 3-4: close the child window, fold, report.
        self.maybe_report(ctx);
    }

    fn is_terminated(&self) -> bool {
        // Unreachable nodes stay idle forever; reachable ones terminate
        // once they have reported. (Engine quiescence still requires the
        // in-flight queues to drain.)
        self.reported || self.parent.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use rwbc_graph::generators::{complete, path, star};
    use rwbc_graph::traversal::diameter;
    use rwbc_graph::Graph;

    fn run_agg(
        g: &Graph,
        root: NodeId,
        op: AggregateOp,
        input: impl Fn(NodeId) -> u64,
    ) -> (Option<u64>, crate::RunStats) {
        let mut sim = Simulator::new(g, SimConfig::default(), |v| {
            Aggregate::new(v, root, input(v), op)
        });
        let stats = sim.run().unwrap();
        (sim.program(root).result(), stats)
    }

    #[test]
    fn sum_of_ids_on_path() {
        let g = path(10).unwrap();
        let (result, stats) = run_agg(&g, 0, AggregateOp::Sum, |v| v as u64);
        assert_eq!(result, Some(45));
        assert!(stats.congest_compliant());
    }

    #[test]
    fn max_and_min() {
        let g = star(8).unwrap();
        let (max, _) = run_agg(&g, 3, AggregateOp::Max, |v| 100 + v as u64);
        assert_eq!(max, Some(108));
        let (min, _) = run_agg(&g, 3, AggregateOp::Min, |v| 100 + v as u64);
        assert_eq!(min, Some(100));
    }

    #[test]
    fn rounds_scale_with_diameter_not_n() {
        let g = path(40).unwrap();
        let (_, stats) = run_agg(&g, 0, AggregateOp::Sum, |_| 1);
        let d = diameter(&g).unwrap();
        // Wave down (D) + registration (+2) + partials back up (D) + slack.
        assert!(stats.rounds <= 2 * d + 8, "rounds {}", stats.rounds);
        assert!(stats.rounds >= d);
    }

    #[test]
    fn count_nodes_via_sum_of_ones() {
        let g = complete(13).unwrap();
        let (result, stats) = run_agg(&g, 5, AggregateOp::Sum, |_| 1);
        assert_eq!(result, Some(13));
        // Complete graph: constant rounds.
        assert!(stats.rounds <= 8, "rounds {}", stats.rounds);
    }

    #[test]
    fn root_with_no_neighbors_in_component() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let (result, _) = run_agg(&g, 0, AggregateOp::Sum, |v| v as u64);
        // Only the root's component aggregates: 0 + 1.
        assert_eq!(result, Some(1));
    }
}
