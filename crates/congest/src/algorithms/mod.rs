//! Reference CONGEST algorithms.
//!
//! These serve three purposes: they validate the engine against textbook
//! round complexities (flooding finishes in `ecc(source)` rounds, BFS layers
//! grow one hop per round, leader election floods the maximum id), they are
//! reusable building blocks, and they are worked examples of the
//! [`NodeProgram`] API.
//!
//! [`NodeProgram`]: crate::NodeProgram

mod aggregate;
mod bfs;
mod flood;
mod leader;

pub use aggregate::{AggMsg, Aggregate, AggregateOp};
pub use bfs::BfsTree;
pub use flood::Flood;
pub use leader::LeaderElect;
