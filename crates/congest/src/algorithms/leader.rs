use rwbc_graph::NodeId;

use crate::{bits_for_node_id, Context, Incoming, Message, NodeProgram};

/// A candidate-leader announcement. Costs one node id on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderMsg {
    /// Highest node id the sender currently knows of.
    pub candidate: NodeId,
}

impl Message for LeaderMsg {
    fn bit_size(&self, n: usize) -> usize {
        bits_for_node_id(n)
    }
}

/// Max-id leader election by flooding, stabilizing after `D` quiet rounds.
///
/// Every node floods the largest id it has seen; once a node learns a new
/// maximum it re-announces. In a connected graph all nodes converge on
/// `n − 1` within `D` rounds of announcements. The paper's Algorithm 1
/// "randomly choose a target node t" step is realized on top of exactly
/// this primitive (elect, then use the leader's coin flips).
///
/// # Example
///
/// ```
/// use congest_sim::{algorithms::LeaderElect, SimConfig, Simulator};
/// use rwbc_graph::generators::cycle;
///
/// # fn main() -> Result<(), congest_sim::SimError> {
/// let g = cycle(7).unwrap();
/// let mut sim = Simulator::new(&g, SimConfig::default(), LeaderElect::new);
/// sim.run()?;
/// assert!(sim.programs().iter().all(|p| p.leader() == 6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LeaderElect {
    best: NodeId,
    dirty: bool,
}

impl LeaderElect {
    /// Program for node `me`.
    pub fn new(me: NodeId) -> LeaderElect {
        LeaderElect {
            best: me,
            dirty: true,
        }
    }

    /// The highest id this node currently believes is the leader.
    pub fn leader(&self) -> NodeId {
        self.best
    }
}

impl NodeProgram for LeaderElect {
    type Msg = LeaderMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, LeaderMsg>) {
        ctx.broadcast(LeaderMsg {
            candidate: self.best,
        });
        self.dirty = false;
    }

    fn on_round(&mut self, ctx: &mut Context<'_, LeaderMsg>, inbox: &[Incoming<LeaderMsg>]) {
        for m in inbox {
            if m.msg.candidate > self.best {
                self.best = m.msg.candidate;
                self.dirty = true;
            }
        }
        if self.dirty {
            ctx.broadcast(LeaderMsg {
                candidate: self.best,
            });
            self.dirty = false;
        }
    }

    fn is_terminated(&self) -> bool {
        !self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use rwbc_graph::generators::{path, star};
    use rwbc_graph::traversal::diameter;

    #[test]
    fn everyone_agrees_on_max_id() {
        let g = path(12).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), LeaderElect::new);
        let stats = sim.run().unwrap();
        assert!(sim.programs().iter().all(|p| p.leader() == 11));
        assert!(stats.congest_compliant());
        // Announcement wave from node 11 needs ~D rounds to drain.
        let d = diameter(&g).unwrap();
        assert!(stats.rounds >= d, "rounds {} < diameter {d}", stats.rounds);
    }

    #[test]
    fn star_converges_in_two_hops() {
        let g = star(6).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), LeaderElect::new);
        let stats = sim.run().unwrap();
        assert!(sim.programs().iter().all(|p| p.leader() == 6));
        assert!(stats.rounds <= 4);
    }
}
