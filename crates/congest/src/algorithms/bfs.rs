use rwbc_graph::NodeId;

use crate::{bits_for_node_id, Context, Incoming, Message, NodeProgram};

/// A BFS-layer announcement carrying the sender's id (so receivers can
/// record a parent). Costs one node id on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsMsg {
    /// The announcing node (the receiver's prospective parent).
    pub from_id: NodeId,
}

impl Message for BfsMsg {
    fn bit_size(&self, n: usize) -> usize {
        bits_for_node_id(n)
    }
}

/// Distributed BFS-tree construction from a root.
///
/// Round `r` informs exactly the nodes at distance `r`; each picks the
/// smallest-id announcer as parent. This is the standard `O(D)`-round
/// CONGEST BFS and exercises id-carrying messages under the bit budget.
///
/// # Example
///
/// ```
/// use congest_sim::{algorithms::BfsTree, SimConfig, Simulator};
/// use rwbc_graph::generators::grid_2d;
///
/// # fn main() -> Result<(), congest_sim::SimError> {
/// let g = grid_2d(3, 3).unwrap();
/// let mut sim = Simulator::new(&g, SimConfig::default(), |v| BfsTree::new(v, 0));
/// sim.run()?;
/// assert_eq!(sim.program(8).depth(), Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BfsTree {
    me: NodeId,
    root: NodeId,
    depth: Option<usize>,
    parent: Option<NodeId>,
    announced: bool,
}

impl BfsTree {
    /// Program for node `me` building a BFS tree rooted at `root`.
    pub fn new(me: NodeId, root: NodeId) -> BfsTree {
        BfsTree {
            me,
            root,
            depth: if me == root { Some(0) } else { None },
            parent: if me == root { Some(me) } else { None },
            announced: false,
        }
    }

    /// BFS depth of this node (`None` if unreachable).
    pub fn depth(&self) -> Option<usize> {
        self.depth
    }

    /// BFS parent (root maps to itself; `None` if unreachable).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }
}

impl NodeProgram for BfsTree {
    type Msg = BfsMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BfsMsg>) {
        if self.me == self.root {
            ctx.broadcast(BfsMsg { from_id: self.me });
            self.announced = true;
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, BfsMsg>, inbox: &[Incoming<BfsMsg>]) {
        if self.depth.is_none() {
            if let Some(first) = inbox.first() {
                self.depth = Some(ctx.round());
                // Inbox is sorted by sender id: pick the smallest announcer.
                self.parent = Some(first.msg.from_id);
            }
        }
        if self.depth.is_some() && !self.announced {
            ctx.broadcast(BfsMsg { from_id: self.me });
            self.announced = true;
        }
    }

    fn is_terminated(&self) -> bool {
        self.announced || self.depth.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rwbc_graph::generators::{binary_tree, connected_gnp};
    use rwbc_graph::traversal::bfs_distances;

    #[test]
    fn depths_match_centralized_bfs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = connected_gnp(40, 0.12, 100, &mut rng).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| BfsTree::new(v, 5));
        let stats = sim.run().unwrap();
        assert!(stats.congest_compliant());
        let dist = bfs_distances(&g, 5);
        for v in g.nodes() {
            assert_eq!(sim.program(v).depth(), dist[v], "node {v}");
        }
    }

    #[test]
    fn parents_form_a_tree_toward_root() {
        let g = binary_tree(15).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| BfsTree::new(v, 0));
        sim.run().unwrap();
        for v in 1..15 {
            let p = sim.program(v).parent().unwrap();
            assert!(g.has_edge(v, p));
            assert_eq!(
                sim.program(p).depth().unwrap() + 1,
                sim.program(v).depth().unwrap()
            );
        }
    }

    #[test]
    fn message_fits_budget_exactly() {
        // BfsMsg carries exactly one node id.
        let msg = BfsMsg { from_id: 7 };
        assert_eq!(msg.bit_size(1000), 10);
        assert_eq!(msg.bit_size(2), 1);
    }
}
