use rwbc_graph::NodeId;

use crate::{Context, Incoming, NodeProgram};

/// Single-token flooding from a designated source.
///
/// The source broadcasts a 1-bit pulse; every node forwards it once. After
/// `ecc(source)` rounds every node is informed. This is the canonical
/// "hello world" of synchronous message passing and doubles as an engine
/// sanity check: informing time must equal BFS distance.
///
/// # Example
///
/// ```
/// use congest_sim::{algorithms::Flood, SimConfig, Simulator};
/// use rwbc_graph::generators::star;
///
/// # fn main() -> Result<(), congest_sim::SimError> {
/// let g = star(5).unwrap();
/// let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
/// sim.run()?;
/// assert!(sim.programs().iter().all(|p| p.informed()));
/// assert_eq!(sim.program(3).informed_at(), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flood {
    me: NodeId,
    source: NodeId,
    informed_at: Option<usize>,
    forwarded: bool,
}

impl Flood {
    /// Program for node `me` flooding from `source`.
    pub fn new(me: NodeId, source: NodeId) -> Flood {
        Flood {
            me,
            source,
            informed_at: if me == source { Some(0) } else { None },
            forwarded: false,
        }
    }

    /// Whether this node has received the token.
    pub fn informed(&self) -> bool {
        self.informed_at.is_some()
    }

    /// The round in which the token arrived (0 for the source).
    pub fn informed_at(&self) -> Option<usize> {
        self.informed_at
    }
}

impl crate::wire::WireState for Flood {
    fn encode_state(&self, w: &mut crate::wire::BitWriter) {
        self.me.encode_state(w);
        self.source.encode_state(w);
        self.informed_at.encode_state(w);
        self.forwarded.encode_state(w);
    }
    fn decode_state(r: &mut crate::wire::BitReader<'_>) -> Option<Flood> {
        Some(Flood {
            me: usize::decode_state(r)?,
            source: usize::decode_state(r)?,
            informed_at: Option::decode_state(r)?,
            forwarded: bool::decode_state(r)?,
        })
    }
}

impl NodeProgram for Flood {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        if self.me == self.source {
            ctx.broadcast(());
            self.forwarded = true;
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, ()>, inbox: &[Incoming<()>]) {
        if !inbox.is_empty() && self.informed_at.is_none() {
            self.informed_at = Some(ctx.round());
        }
        if self.informed() && !self.forwarded {
            ctx.broadcast(());
            self.forwarded = true;
        }
    }

    fn is_terminated(&self) -> bool {
        // A node is done once it has forwarded; uninformed nodes idle (they
        // terminate vacuously when the network drains — global termination
        // also requires zero in-flight messages).
        self.forwarded || self.informed_at.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use rwbc_graph::generators::{cycle, path};
    use rwbc_graph::traversal::bfs_distances;
    use rwbc_graph::Graph;

    #[test]
    fn informing_time_equals_bfs_distance() {
        let g = cycle(9).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 2));
        sim.run().unwrap();
        let dist = bfs_distances(&g, 2);
        for v in g.nodes() {
            let want = dist[v].unwrap();
            let got = sim.program(v).informed_at().unwrap();
            assert_eq!(got, want, "node {v}");
        }
    }

    #[test]
    fn rounds_equal_eccentricity() {
        let g = path(10).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
        let stats = sim.run().unwrap();
        // Token reaches node 9 in round 9; its forward drains in round 10.
        assert_eq!(stats.rounds, 10);
        assert!(stats.congest_compliant());
    }

    #[test]
    fn disconnected_component_stays_uninformed() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
        sim.run().unwrap();
        assert!(sim.program(1).informed());
        assert!(!sim.program(2).informed());
        assert!(!sim.program(3).informed());
    }

    #[test]
    fn message_count_is_sum_of_degrees_of_informed() {
        let g = path(4).unwrap();
        let mut sim = Simulator::new(&g, SimConfig::default(), |v| Flood::new(v, 0));
        let stats = sim.run().unwrap();
        // Every node forwards once over each incident edge: total = sum of
        // degrees = 2m.
        assert_eq!(stats.total_messages, 2 * g.edge_count() as u64);
    }
}
