use rand::rngs::StdRng;

use rwbc_graph::{Graph, Neighbors, NodeId};

use crate::Message;

/// A message delivered to a node, tagged with its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The neighbor that sent the message in the previous round.
    pub from: NodeId,
    /// The message itself.
    pub msg: M,
}

impl<M: crate::wire::WireState> crate::wire::WireState for Incoming<M> {
    fn encode_state(&self, w: &mut crate::wire::BitWriter) {
        self.from.encode_state(w);
        self.msg.encode_state(w);
    }
    fn decode_state(r: &mut crate::wire::BitReader<'_>) -> Option<Incoming<M>> {
        Some(Incoming {
            from: crate::wire::WireState::decode_state(r)?,
            msg: M::decode_state(r)?,
        })
    }
}

/// The per-round view a node program has of its environment.
///
/// A CONGEST node knows only: its own id, its neighbors' ids, the global
/// parameter `n`, the round number, and its private coins. `Context`
/// exposes exactly that — node programs cannot observe the rest of the
/// graph, which keeps algorithm implementations honest.
#[derive(Debug)]
pub struct Context<'a, M> {
    node: NodeId,
    graph: &'a Graph,
    rng: &'a mut StdRng,
    round: usize,
    outbox: &'a mut Vec<(NodeId, M)>,
    /// Per-node event buffer when the run is traced. Buffers are
    /// drained by the engine in ascending node order each round, so
    /// program-emitted events stay deterministic at any thread count.
    trace: Option<&'a mut Vec<crate::trace::TraceEvent>>,
}

impl<'a, M: Message> Context<'a, M> {
    pub(crate) fn new(
        node: NodeId,
        graph: &'a Graph,
        rng: &'a mut StdRng,
        round: usize,
        outbox: &'a mut Vec<(NodeId, M)>,
    ) -> Context<'a, M> {
        Context {
            node,
            graph,
            rng,
            round,
            outbox,
            trace: None,
        }
    }

    /// Attaches a per-node trace buffer (engine-internal).
    pub(crate) fn with_trace(
        mut self,
        trace: Option<&'a mut Vec<crate::trace::TraceEvent>>,
    ) -> Context<'a, M> {
        self.trace = trace;
        self
    }

    /// Whether the run is being traced. Programs should gate event
    /// construction on this so untraced runs pay nothing.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Emits a trace event attributed to this node. A no-op when the
    /// run is untraced.
    pub fn trace(&mut self, event: crate::trace::TraceEvent) {
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.push(event);
        }
    }

    /// Splits the context into its RNG and trace buffer, for adapters
    /// that build a nested [`Context`] around an inner program while
    /// forwarding the trace sink.
    pub(crate) fn rng_and_trace(
        &mut self,
    ) -> (&mut StdRng, Option<&mut Vec<crate::trace::TraceEvent>>) {
        (self.rng, self.trace.as_deref_mut())
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the network (a global constant every node knows,
    /// as assumed by the paper's Algorithm 1 input).
    pub fn network_size(&self) -> usize {
        self.graph.node_count()
    }

    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Iterator over this node's neighbors (ascending ids).
    pub fn neighbors(&self) -> Neighbors<'_> {
        self.graph.neighbors(self.node)
    }

    /// The `i`-th neighbor (`0 <= i < degree`), used for uniform moves.
    ///
    /// # Panics
    ///
    /// Panics if `i >= degree()`.
    pub fn neighbor(&self, i: usize) -> NodeId {
        self.graph.neighbor(self.node, i)
    }

    /// Whether `v` is adjacent to this node.
    pub fn is_neighbor(&self, v: NodeId) -> bool {
        self.graph.has_edge(self.node, v)
    }

    /// The current round number (0 during `on_start`).
    pub fn round(&self) -> usize {
        self.round
    }

    /// This node's private deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The underlying graph, for adapters in this crate that construct a
    /// nested [`Context`] around an inner program (e.g. reliable delivery).
    /// Not public: node programs must not observe global topology.
    pub(crate) fn graph_ref(&self) -> &'a Graph {
        self.graph
    }

    /// Queues `msg` for delivery to neighbor `to` at the start of the next
    /// round. Budget enforcement happens when the round is committed; a
    /// send to a non-neighbor is detected there as well.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Queues a copy of `msg` to every neighbor (a "local broadcast" —
    /// one message per incident edge, permitted by the model).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        // Push straight from the neighbor iterator: `graph` and `outbox`
        // are disjoint fields, so no intermediate `Vec<NodeId>` is needed
        // to appease the borrow checker.
        for v in self.graph.neighbors(self.node) {
            self.outbox.push((v, msg.clone()));
        }
    }
}

/// A node-local distributed program executed by the [`Simulator`].
///
/// The simulator drives the program through the synchronous schedule:
///
/// 1. `on_start` once, before round 1 (sends are delivered in round 1);
/// 2. `on_round` every round, with all messages sent to this node in the
///    previous round;
/// 3. the run ends when every program reports [`NodeProgram::is_terminated`]
///    and no messages are in flight.
///
/// [`Simulator`]: crate::Simulator
pub trait NodeProgram {
    /// The message type this protocol exchanges.
    type Msg: Message;

    /// Called once before the first round.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called every round with the messages received this round.
    /// The inbox is sorted by sender id (deterministic delivery order).
    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[Incoming<Self::Msg>]);

    /// Local termination flag. Termination of the *run* additionally
    /// requires an empty network.
    fn is_terminated(&self) -> bool;

    /// Notification that the channel to neighbor `peer` has been declared
    /// permanently dead by a failure detector (e.g.
    /// [`Reliable::with_failure_detection`]). Messages to and from `peer`
    /// will never be delivered again; a survivor-aware protocol should
    /// patch its live-neighbor set here. Declarations are irrevocable and
    /// fire at most once per peer. The default is a no-op: protocols that
    /// predate (or don't care about) failure detection keep their exact
    /// behavior.
    ///
    /// [`Reliable::with_failure_detection`]: crate::Reliable::with_failure_detection
    fn on_neighbor_down(&mut self, peer: rwbc_graph::NodeId) {
        let _ = peer;
    }

    /// Delivery-layer counters, if this program wraps another behind a
    /// reliability adapter. The default (`None`) means "no delivery layer";
    /// [`Simulator::run`] folds `Some` values into the run's [`RunStats`].
    ///
    /// [`Simulator::run`]: crate::Simulator::run
    /// [`RunStats`]: crate::RunStats
    fn reliability_stats(&self) -> Option<crate::ReliabilityStats> {
        None
    }
}
