//! Reliable in-order delivery over lossy CONGEST links.
//!
//! [`Reliable<P>`] wraps any [`NodeProgram`] and gives it exactly-once,
//! in-order per-neighbor delivery on top of a faulty network (see
//! [`FaultPlan`](crate::FaultPlan)): a sliding-window ARQ with small
//! sequence numbers, cumulative acknowledgments piggybacked on every
//! message, and timeout-driven retransmission with capped exponential
//! backoff.
//!
//! # Staying inside the CONGEST budget
//!
//! The adapter never sends more than **one** frame per neighbor per round,
//! so the per-edge message limit is respected. A frame adds
//! [`Reliable::<P>::HEADER_BITS`] to the payload it carries (2 tag bits +
//! 4-bit cumulative ack + 4-bit sequence number) — a constant, so a
//! protocol that fit `O(log n)` bits still fits after reserving the header
//! (callers shave the header off the budget they size payloads against).
//! Pure acks cost [`Reliable::<P>::ACK_BITS`]. Retransmissions do not
//! widen any frame; they consume a later round's slot on the same edge.
//!
//! # Time dilation
//!
//! The wrapped program still executes once per engine round, but its
//! messages may take several rounds to arrive (retransmissions, queueing
//! behind the one-frame-per-round limit). The adapter therefore suits
//! *self-clocking* protocols — ones driven by message arrival order, not
//! by the global round number. The RWBC walk phase and the
//! strict-delivery count phase are of this kind; a protocol that infers
//! sender state from `ctx.round()` is not.
//!
//! # Determinism
//!
//! The adapter holds no randomness of its own; all its decisions are
//! functions of arrival order, which the engine keeps deterministic.
//!
//! # Failure detection: permanently dead links
//!
//! ARQ alone cannot distinguish a dead link from a slow one: under a
//! *permanent* [`LinkOutage`](crate::LinkOutage) (or a never-recovering
//! crash of a neighbor) a plain [`Reliable::new`] adapter retransmits with
//! capped backoff until the engine's hard round budget fires, and the run
//! ends in `SimError::RoundBudgetExceeded` — a typed error rather than a
//! silent hang, but no recovery.
//!
//! [`Reliable::with_failure_detection`] adds the missing detector. Every
//! data frame already doubles as a heartbeat (it demands a cumulative-ack
//! response), so the detector piggybacks on the existing traffic: it costs
//! **zero extra rounds and zero extra bits** when the network is healthy,
//! and only constant per-channel state (a strike counter) otherwise. A
//! channel accrues one *strike* per timeout-driven retransmission that
//! happens with no ack progress in between; any progress resets the
//! count. When the strikes reach the configured threshold the channel is
//! **declared dead**: retransmission stops, buffered payloads are
//! abandoned (counted in
//! [`RunStats::undeliverable_messages`](crate::RunStats::undeliverable_messages)),
//! the wrapped program is told via
//! [`NodeProgram::on_neighbor_down`](crate::NodeProgram::on_neighbor_down),
//! and the channel counts as quiescent for termination. Declarations are
//! irrevocable — frames later arriving from a declared-dead peer are
//! ignored.
//!
//! The guarantees are those of an eventually-perfect detector *under the
//! permanence assumption*:
//!
//! * **Completeness** — a channel with outstanding traffic toward a
//!   permanently dead link is declared within a bounded number of rounds
//!   (at most `threshold` retransmission timeouts, each capped at
//!   [`MAX_TIMEOUT`](self) rounds), so the run always terminates.
//! * **Accuracy** — only channels with outstanding unacknowledged traffic
//!   can accrue strikes; a healthy-but-silent neighbor is never suspected.
//!   Against *probabilistic* loss the detector can still false-positive
//!   (`threshold` consecutive loss events); pick the threshold so
//!   `p_loss^threshold` is negligible, or keep [`Reliable::new`], which
//!   never declares.
//!
//! Bounded outages and crash–recover schedules shorter than the declaration
//! window are still repaired transparently, exactly as without detection.
//!
//! # Integrity: checksummed frames
//!
//! Loss is not the only way a link misbehaves —
//! [`FaultPlan`](crate::FaultPlan) can also *corrupt* frames in flight
//! (bit flips, truncation, garbage). A plain adapter has no way to tell a
//! mangled frame from a genuine one: a flipped payload bit is delivered
//! as data, a flipped sequence number desynchronizes the window.
//! [`Reliable::with_checksums`] closes the gap: every outgoing frame is
//! sealed with a CRC-32 over its content
//!
//! ```text
//! | 1 bit payload? | 4b seq | payload digest | 4b ack | 32-bit CRC |
//! ```
//!
//! and every incoming frame is verified before *any* of it is trusted —
//! a frame that fails its checksum is discarded whole (no ack
//! processing, no delivery, no window movement), counted in
//! [`RunStats::corrupt_frames_detected`](crate::RunStats::corrupt_frames_detected),
//! and repaired by the ordinary timeout/retransmission machinery exactly
//! as if it had been dropped. The seal costs a constant
//! [`FRAME_CHECKSUM_BITS`] per frame, so an `O(log n)`-bit protocol
//! stays `O(log n)` (callers reserve `HEADER_BITS + CHECKSUM_BITS` off
//! the budget they size payloads against).
//!
//! A link that corrupts *persistently* would otherwise retransmit
//! forever; when the failure detector is armed
//! ([`Reliable::with_failure_detection`]), consecutive corrupt frames
//! from a peer accrue strikes just like no-progress retransmissions, and
//! reaching the threshold **quarantines** the channel through the same
//! dead-link declaration path — bounded damage instead of an unbounded
//! retry loop. Any valid frame from the peer resets its strikes.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::Rng;

use crate::fault::CorruptionKind;
use crate::metrics::ReliableMetrics;
use crate::node::{Context, Incoming};
use crate::stats::ReliabilityStats;
use crate::trace::TraceEvent;
use crate::wire::Crc32;
use crate::{Message, NodeProgram};

use rwbc_graph::NodeId;

/// Sequence-number width in bits. The window must stay at or below half
/// the sequence space for old-duplicate and in-window detection to stay
/// unambiguous.
const SEQ_BITS: usize = 4;
/// Sequence-number modulus.
const SEQ_MOD: u8 = 1 << SEQ_BITS;
/// Sliding-window size: frames a sender may have outstanding per neighbor.
const WINDOW: u8 = 4;
/// Rounds a sender waits for ack progress before retransmitting. The
/// fault-free round trip is 2 rounds (frame out, ack back); the base adds
/// slack for the ack's own queueing.
const BASE_TIMEOUT: usize = 4;
/// Backoff cap: retransmission intervals double up to this many rounds.
pub(crate) const MAX_TIMEOUT: usize = 32;

/// Default declaration threshold for
/// [`Reliable::with_failure_detection`]: strikes (consecutive
/// no-progress retransmissions) before a channel is declared dead. At a
/// 5% loss rate the false-positive odds per window are below 1e-8.
pub const DEFAULT_DEATH_THRESHOLD: usize = 8;

/// Bits a [`Reliable::with_checksums`] seal adds to every frame: one
/// CRC-32 word.
pub const FRAME_CHECKSUM_BITS: usize = 32;

/// A delivery-layer frame: an optional sequenced payload plus a cumulative
/// acknowledgment. Every frame acks; payload-free frames are "pure acks".
/// Under [`Reliable::with_checksums`] the frame additionally carries a
/// CRC-32 seal over its content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliableMsg<M> {
    /// Sequenced payload, absent for a pure ack.
    payload: Option<(u8, M)>,
    /// Cumulative ack: the next sequence number this node expects from the
    /// destination (everything before it has been delivered in order).
    ack: u8,
    /// CRC-32 seal over the frame content; `None` in plain (unsealed)
    /// mode, which keeps the wire accounting bit-identical to the
    /// pre-checksum adapter.
    crc: Option<u32>,
}

impl<M: Message> ReliableMsg<M> {
    /// CRC-32 over the frame's content bits — everything *except* the
    /// seal itself, mirroring the wire layout: payload-presence flag,
    /// sequence number and payload digest (when present), cumulative ack.
    fn content_crc(&self, n: usize) -> u32 {
        let mut crc = Crc32::new();
        match &self.payload {
            Some((seq, m)) => {
                crc.update_bits(1, 1);
                crc.update_bits(u64::from(*seq), SEQ_BITS);
                m.digest(n, &mut crc);
            }
            None => crc.update_bits(0, 1),
        }
        crc.update_bits(u64::from(self.ack), SEQ_BITS);
        crc.finish()
    }
}

impl<M: Message> Message for ReliableMsg<M> {
    fn bit_size(&self, n: usize) -> usize {
        let seal = if self.crc.is_some() {
            FRAME_CHECKSUM_BITS
        } else {
            0
        };
        match &self.payload {
            Some((_, m)) => 2 + SEQ_BITS + SEQ_BITS + m.bit_size(n) + seal,
            None => 2 + SEQ_BITS + seal,
        }
    }

    fn digest(&self, n: usize, crc: &mut Crc32) {
        // Unlike `content_crc`, an *outer* digest covers the seal too —
        // a nested checksummed layer must see every mutable bit.
        match &self.payload {
            Some((seq, m)) => {
                crc.update_bits(1, 1);
                crc.update_bits(u64::from(*seq), SEQ_BITS);
                m.digest(n, crc);
            }
            None => crc.update_bits(0, 1),
        }
        crc.update_bits(u64::from(self.ack), SEQ_BITS);
        match self.crc {
            Some(seal) => {
                crc.update_bits(1, 1);
                crc.update_bits(u64::from(seal), FRAME_CHECKSUM_BITS);
            }
            None => crc.update_bits(0, 1),
        }
    }

    /// Structure-aware corruption: the damage lands on one of the frame's
    /// fields (ack, sequence number, or the payload via `M::corrupted`).
    /// The seal is deliberately *not* recomputed — a mangled sealed frame
    /// carries a stale CRC, which is exactly what a checksummed receiver
    /// detects.
    fn corrupted(&self, kind: CorruptionKind, n: usize, rng: &mut StdRng) -> Option<Self> {
        fn mangle_seq(v: u8, kind: CorruptionKind, rng: &mut StdRng) -> u8 {
            match kind {
                CorruptionKind::BitFlip => v ^ (1 << rng.gen_range(0..SEQ_BITS)),
                _ => rng.gen_range(0..u64::from(SEQ_MOD)) as u8,
            }
        }
        let mut m = self.clone();
        match kind {
            // Truncation chops the frame's tail — the payload. A pure ack
            // loses its only content and becomes unparseable.
            CorruptionKind::Truncate => match m.payload.take() {
                Some((seq, p)) => match p.corrupted(CorruptionKind::Truncate, n, rng) {
                    Some(tp) => m.payload = Some((seq, tp)),
                    None => return None,
                },
                None => return None,
            },
            CorruptionKind::BitFlip | CorruptionKind::Garbage => {
                // Pick a field, weighted over the frame layout; header
                // damage falls back to the ack when there is no payload.
                match rng.gen_range(0..3usize) {
                    0 => m.ack = mangle_seq(m.ack, kind, rng),
                    1 => match &mut m.payload {
                        Some((seq, _)) => *seq = mangle_seq(*seq, kind, rng),
                        None => m.ack = mangle_seq(m.ack, kind, rng),
                    },
                    _ => match m.payload.take() {
                        Some((seq, p)) => match p.corrupted(kind, n, rng) {
                            Some(mp) => m.payload = Some((seq, mp)),
                            None => return None,
                        },
                        None => m.ack = mangle_seq(m.ack, kind, rng),
                    },
                }
            }
        }
        Some(m)
    }
}

/// Circular distance `b - a (mod 2^SEQ_BITS)`.
fn seq_dist(a: u8, b: u8) -> u8 {
    b.wrapping_sub(a) & (SEQ_MOD - 1)
}

/// Per-neighbor ARQ state.
#[derive(Debug, Clone)]
struct Channel {
    /// The neighbor's node id.
    peer: NodeId,
    /// Application messages accepted from the inner program but not yet
    /// put on the wire.
    backlog: VecDeque<ReliableBuffered>,
    /// Frames on the wire (or lost) awaiting acknowledgment, oldest first.
    unacked: VecDeque<(u8, ReliableBuffered)>,
    /// Sequence number of the next fresh frame.
    next_seq: u8,
    /// Next in-order sequence number expected from the peer.
    expected: u8,
    /// Whether the peer is owed an ack not yet carried by any frame.
    owes_ack: bool,
    /// Rounds since the last transmission or ack progress on this channel.
    idle_rounds: usize,
    /// Current retransmission timeout (backs off exponentially).
    timeout: usize,
    /// Timeout-driven retransmissions since the last ack progress; feeds
    /// the failure detector when one is enabled.
    strikes: usize,
    /// Consecutive checksum failures from this peer; any valid frame
    /// resets it. Feeds the quarantine escalation when the failure
    /// detector is armed under [`Reliable::with_checksums`].
    corrupt_strikes: usize,
    /// Whether this channel has been declared permanently dead. Dead
    /// channels send nothing, accept nothing, and count as quiescent.
    dead: bool,
}

/// Type-erased storage index into the inner message buffer would over-
/// complicate things; channels buffer payload clones directly.
type ReliableBuffered = usize;

impl Channel {
    fn new(peer: NodeId) -> Channel {
        Channel {
            peer,
            backlog: VecDeque::new(),
            unacked: VecDeque::new(),
            next_seq: 0,
            expected: 0,
            owes_ack: false,
            idle_rounds: 0,
            timeout: BASE_TIMEOUT,
            strikes: 0,
            corrupt_strikes: 0,
            dead: false,
        }
    }

    fn quiescent(&self) -> bool {
        self.dead || (self.backlog.is_empty() && self.unacked.is_empty() && !self.owes_ack)
    }
}

/// Reliable-delivery adapter; see the module docs.
///
/// Wrap the per-node program when constructing the simulator and unwrap
/// results through [`Reliable::inner`]:
///
/// ```
/// use congest_sim::{algorithms::Flood, FaultPlan, Reliable, SimConfig, Simulator};
/// use rwbc_graph::generators::cycle;
///
/// # fn main() -> Result<(), congest_sim::SimError> {
/// let g = cycle(8).unwrap();
/// let faults = FaultPlan::default().with_drop_probability(0.3);
/// let cfg = SimConfig::default().with_faults(faults).with_seed(11);
/// let mut sim = Simulator::new(&g, cfg, |v| Reliable::new(Flood::new(v, 0)));
/// let stats = sim.run()?;
/// assert!(sim.programs().iter().all(|p| p.inner().informed()));
/// assert!(stats.dropped > 0); // faults fired…
/// assert_eq!(stats.retransmissions > 0, true); // …and were repaired
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Reliable<P: NodeProgram> {
    inner: P,
    /// Buffered payloads, indexed by the `ReliableBuffered` handles stored
    /// in channels. Slots are freed on ack.
    slots: Vec<Option<P::Msg>>,
    free_slots: Vec<usize>,
    channels: Vec<Channel>,
    retransmissions: u64,
    duplicates_suppressed: u64,
    inner_last_active_round: Option<usize>,
    /// Whether outgoing frames are sealed with a CRC-32 and incoming
    /// frames verified against theirs (see the module docs).
    checksums: bool,
    /// Incoming frames discarded because they failed their checksum.
    corrupt_frames_detected: u64,
    /// Strike threshold of the failure detector; `None` disables
    /// detection entirely (the original retransmit-forever behavior).
    detect_after: Option<usize>,
    /// Peers known dead before the run starts (survivor-side restarts);
    /// their channels are declared at channel setup, before any traffic.
    preseed_dead: Vec<NodeId>,
    dead_links_declared: u64,
    undeliverable: u64,
    /// Reused buffer for the inner program's outbox, taken/restored around
    /// each [`Reliable::step_inner`] call so steady-state rounds allocate
    /// nothing. Always empty between rounds.
    outbox_scratch: Vec<(NodeId, P::Msg)>,
    /// Reused buffer for in-order deliveries, taken in
    /// [`Reliable::absorb`] and restored after the inner program consumed
    /// the slice. Always empty between rounds.
    delivered_scratch: Vec<Incoming<P::Msg>>,
    /// Optional live-metrics handles, shared by every per-node wrapper
    /// (see [`Reliable::with_metrics`]). The per-node `u64` fields above
    /// stay the source of truth for [`ReliabilityStats`]; the handles
    /// mirror each event into process-wide counters as it happens.
    metrics: Option<ReliableMetrics>,
}

impl<P: NodeProgram> Reliable<P> {
    /// Bits a frame adds on top of the payload it carries.
    pub const HEADER_BITS: usize = 2 + SEQ_BITS + SEQ_BITS;
    /// Size of a payload-free (pure ack) frame.
    pub const ACK_BITS: usize = 2 + SEQ_BITS;
    /// Extra bits per frame under [`Reliable::with_checksums`].
    pub const CHECKSUM_BITS: usize = FRAME_CHECKSUM_BITS;

    /// Wraps `inner` in the reliable-delivery layer (no failure detection:
    /// a permanently dead link retransmits until the round budget fires).
    pub fn new(inner: P) -> Reliable<P> {
        Reliable {
            inner,
            slots: Vec::new(),
            free_slots: Vec::new(),
            channels: Vec::new(),
            retransmissions: 0,
            duplicates_suppressed: 0,
            inner_last_active_round: None,
            checksums: false,
            corrupt_frames_detected: 0,
            detect_after: None,
            preseed_dead: Vec::new(),
            dead_links_declared: 0,
            undeliverable: 0,
            outbox_scratch: Vec::new(),
            delivered_scratch: Vec::new(),
            metrics: None,
        }
    }

    /// Enables the piggybacked failure detector (see the module docs):
    /// after `threshold` consecutive no-progress retransmissions a channel
    /// is declared permanently dead instead of retried forever. Clamped to
    /// at least 1. Use [`DEFAULT_DEATH_THRESHOLD`] unless the fault plan's
    /// loss rate calls for more slack.
    #[must_use]
    pub fn with_failure_detection(mut self, threshold: usize) -> Reliable<P> {
        self.detect_after = Some(threshold.max(1));
        self
    }

    /// Seals every outgoing frame with a CRC-32 and verifies every
    /// incoming one (see the module docs). A frame that fails its
    /// checksum is discarded whole and repaired by retransmission; with
    /// [`Reliable::with_failure_detection`] also armed, a peer whose
    /// frames fail persistently is quarantined through the dead-link
    /// path. Costs [`Reliable::CHECKSUM_BITS`] extra bits per frame.
    #[must_use]
    pub fn with_checksums(mut self) -> Reliable<P> {
        self.checksums = true;
        self
    }

    /// Attaches live-metrics handles (see
    /// [`ReliableMetrics`](crate::metrics::ReliableMetrics)). Clone the
    /// same handle bundle into every node's wrapper: increments are
    /// commutative atomic additions, so process-wide totals at any
    /// quiescent point are independent of the worker-thread layout.
    #[must_use]
    pub fn with_metrics(mut self, metrics: ReliableMetrics) -> Reliable<P> {
        self.metrics = Some(metrics);
        self
    }

    /// Declares `peers` dead before the first round (they are *not*
    /// counted as detections). Survivor-side recovery uses this to carry
    /// knowledge of a partition into restarted sub-phases; the wrapped
    /// program still receives `on_neighbor_down` for each, at startup.
    #[must_use]
    pub fn with_dead_peers(mut self, peers: Vec<NodeId>) -> Reliable<P> {
        self.preseed_dead = peers;
        self
    }

    /// The wrapped application program.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped program.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Payload retransmissions performed so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Duplicate deliveries suppressed so far.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Peers whose channels this node has declared dead (detected or
    /// pre-seeded), in ascending id order.
    pub fn dead_peers(&self) -> Vec<NodeId> {
        self.channels
            .iter()
            .filter(|c| c.dead)
            .map(|c| c.peer)
            .collect()
    }

    /// Channel-death declarations this node made (pre-seeded deaths are
    /// prior knowledge and not counted).
    pub fn dead_links_declared(&self) -> u64 {
        self.dead_links_declared
    }

    /// Payloads abandoned because their channel died.
    pub fn undeliverable(&self) -> u64 {
        self.undeliverable
    }

    /// Incoming frames discarded because they failed their checksum
    /// (always 0 without [`Reliable::with_checksums`]).
    pub fn corrupt_frames_detected(&self) -> u64 {
        self.corrupt_frames_detected
    }

    /// Applies the CRC-32 seal to an outgoing frame when checksums are
    /// enabled; the identity otherwise.
    fn sealed(&self, mut frame: ReliableMsg<P::Msg>, n: usize) -> ReliableMsg<P::Msg> {
        if self.checksums {
            frame.crc = Some(frame.content_crc(n));
        }
        frame
    }

    /// Kills channel `ch`: abandons its buffered traffic, marks it
    /// quiescent-forever, and notifies the wrapped program. Idempotent by
    /// construction (callers check `dead` first). `ctx` is only used to
    /// emit the trace event; the engine-driven `on_neighbor_down` path
    /// has no context and passes `None`.
    fn declare_dead(
        &mut self,
        ch: usize,
        detected: bool,
        ctx: Option<&mut Context<'_, ReliableMsg<P::Msg>>>,
    ) {
        let mut drained: Vec<ReliableBuffered> = self.channels[ch]
            .unacked
            .drain(..)
            .map(|(_, slot)| slot)
            .collect();
        drained.extend(self.channels[ch].backlog.drain(..));
        self.undeliverable += drained.len() as u64;
        for slot in drained {
            self.release(slot);
        }
        let c = &mut self.channels[ch];
        c.dead = true;
        c.owes_ack = false;
        c.idle_rounds = 0;
        if detected {
            self.dead_links_declared += 1;
            if let Some(m) = &self.metrics {
                m.quarantines.inc();
            }
        }
        let peer = self.channels[ch].peer;
        if let Some(ctx) = ctx {
            if ctx.tracing() {
                let (round, node) = (ctx.round(), ctx.id());
                ctx.trace(TraceEvent::DeadLinkDeclared {
                    round,
                    node,
                    peer,
                    detected,
                });
            }
        }
        self.inner.on_neighbor_down(peer);
    }

    fn store(&mut self, msg: P::Msg) -> ReliableBuffered {
        if let Some(i) = self.free_slots.pop() {
            self.slots[i] = Some(msg);
            i
        } else {
            self.slots.push(Some(msg));
            self.slots.len() - 1
        }
    }

    fn release(&mut self, slot: ReliableBuffered) {
        self.slots[slot] = None;
        self.free_slots.push(slot);
    }

    fn channel_index(&self, peer: NodeId) -> usize {
        self.channels
            .binary_search_by_key(&peer, |c| c.peer)
            .expect("message from a non-neighbor")
    }

    /// Lazily builds per-neighbor channels (sorted by peer id), declaring
    /// any pre-seeded dead peers before the first frame moves.
    fn ensure_channels(&mut self, ctx: &mut Context<'_, ReliableMsg<P::Msg>>) {
        if self.channels.is_empty() {
            self.channels = ctx.neighbors().map(Channel::new).collect();
            for peer in std::mem::take(&mut self.preseed_dead) {
                if let Ok(ch) = self.channels.binary_search_by_key(&peer, |c| c.peer) {
                    if !self.channels[ch].dead {
                        self.declare_dead(ch, false, Some(&mut *ctx));
                    }
                }
            }
        }
    }

    /// Runs the inner program for one round and queues what it sent.
    fn step_inner(
        &mut self,
        ctx: &mut Context<'_, ReliableMsg<P::Msg>>,
        inbox: &[Incoming<P::Msg>],
        start: bool,
    ) {
        let mut inner_outbox = std::mem::take(&mut self.outbox_scratch);
        debug_assert!(inner_outbox.is_empty());
        let round = ctx.round();
        let id = ctx.id();
        let graph = ctx.graph_ref();
        {
            // The inner program shares the node's RNG *and* its trace
            // buffer, so application-level events flow through the
            // delivery layer unchanged.
            let (rng, trace) = ctx.rng_and_trace();
            let mut inner_ctx =
                Context::new(id, graph, rng, round, &mut inner_outbox).with_trace(trace);
            if start {
                self.inner.on_start(&mut inner_ctx);
            } else {
                self.inner.on_round(&mut inner_ctx, inbox);
            }
        }
        if !inbox.is_empty() || !inner_outbox.is_empty() {
            self.inner_last_active_round = Some(round);
        }
        for (to, msg) in inner_outbox.drain(..) {
            let ch = self.channel_index(to);
            if self.channels[ch].dead {
                // The inner program addressed a declared-dead peer; the
                // payload can never be delivered.
                self.undeliverable += 1;
                continue;
            }
            let slot = self.store(msg);
            self.channels[ch].backlog.push_back(slot);
        }
        self.outbox_scratch = inner_outbox;
    }

    /// Processes one round's frames: acks advance the window, in-order
    /// payloads are collected for the inner program, everything else is
    /// suppressed. Returns the inner inbox (the caller hands the buffer
    /// back to `delivered_scratch` once the inner program has run).
    fn absorb(
        &mut self,
        ctx: &mut Context<'_, ReliableMsg<P::Msg>>,
        frames: &[Incoming<ReliableMsg<P::Msg>>],
    ) -> Vec<Incoming<P::Msg>> {
        let mut delivered = std::mem::take(&mut self.delivered_scratch);
        debug_assert!(delivered.is_empty());
        let n = ctx.graph_ref().node_count();
        for frame in frames {
            let ch = self.channel_index(frame.from);
            if self.channels[ch].dead {
                // Irrevocable declaration: late frames from a declared-dead
                // peer are dropped without acknowledgment.
                continue;
            }
            // Integrity gate: a sealed frame is verified before *any* of
            // it is trusted. A mismatch (or a missing seal) discards the
            // whole frame — no ack processing, no delivery, no window
            // movement — and the ordinary retransmission machinery
            // repairs the loss. Persistent failures accrue strikes
            // toward quarantine when the detector is armed.
            if self.checksums {
                if frame.msg.crc != Some(frame.msg.content_crc(n)) {
                    self.corrupt_frames_detected += 1;
                    if let Some(m) = &self.metrics {
                        m.crc_rejects.inc();
                    }
                    if ctx.tracing() {
                        let (round, node) = (ctx.round(), ctx.id());
                        ctx.trace(TraceEvent::CorruptFrameDetected {
                            round,
                            node,
                            peer: frame.from,
                        });
                    }
                    self.channels[ch].corrupt_strikes += 1;
                    if let Some(threshold) = self.detect_after {
                        if self.channels[ch].corrupt_strikes >= threshold {
                            self.declare_dead(ch, true, Some(&mut *ctx));
                        }
                    }
                    continue;
                }
                self.channels[ch].corrupt_strikes = 0;
            }
            // Cumulative ack: release every frame it covers.
            let mut progressed = false;
            while let Some(&(seq, slot)) = self.channels[ch].unacked.front() {
                if seq_dist(seq, frame.msg.ack) == 0 || seq_dist(seq, frame.msg.ack) > WINDOW {
                    break;
                }
                self.channels[ch].unacked.pop_front();
                self.release(slot);
                progressed = true;
            }
            if progressed {
                self.channels[ch].timeout = BASE_TIMEOUT;
                self.channels[ch].idle_rounds = 0;
                self.channels[ch].strikes = 0;
            }
            if let Some((seq, payload)) = &frame.msg.payload {
                let expected = self.channels[ch].expected;
                let d = seq_dist(expected, *seq);
                if d == 0 {
                    // In order: deliver and advance.
                    self.channels[ch].expected = expected.wrapping_add(1) & (SEQ_MOD - 1);
                    self.channels[ch].owes_ack = true;
                    delivered.push(Incoming {
                        from: frame.from,
                        msg: payload.clone(),
                    });
                } else if d < WINDOW {
                    // A gap: an earlier frame was lost. Go-back-N discards
                    // and re-acks so the sender rewinds.
                    self.channels[ch].owes_ack = true;
                } else {
                    // Behind the window: a retransmission of something
                    // already delivered (or a fault-injected duplicate).
                    self.duplicates_suppressed += 1;
                    if let Some(m) = &self.metrics {
                        m.duplicates_suppressed.inc();
                    }
                    if ctx.tracing() {
                        let (round, node) = (ctx.round(), ctx.id());
                        ctx.trace(TraceEvent::DuplicateSuppressed {
                            round,
                            node,
                            peer: frame.from,
                        });
                    }
                    self.channels[ch].owes_ack = true;
                }
            }
        }
        delivered
    }

    /// Emits at most one frame per neighbor: a timed-out retransmission,
    /// else the next fresh payload, else a pure ack if one is owed.
    /// Every frame is sealed on its way out when checksums are enabled.
    fn transmit(&mut self, ctx: &mut Context<'_, ReliableMsg<P::Msg>>) {
        let n = ctx.graph_ref().node_count();
        for ch in 0..self.channels.len() {
            if self.channels[ch].dead {
                continue;
            }
            let peer = self.channels[ch].peer;
            let ack = self.channels[ch].expected;
            if !self.channels[ch].unacked.is_empty() {
                self.channels[ch].idle_rounds += 1;
            }
            if self.channels[ch].idle_rounds >= self.channels[ch].timeout
                && !self.channels[ch].unacked.is_empty()
            {
                // A retransmission timeout fired with no ack progress since
                // the last one: a strike. When the detector is armed and the
                // strikes hit the threshold, the channel is declared dead
                // instead of retried — retransmission is bounded.
                if let Some(threshold) = self.detect_after {
                    if self.channels[ch].strikes >= threshold {
                        self.declare_dead(ch, true, Some(&mut *ctx));
                        continue;
                    }
                    self.channels[ch].strikes += 1;
                }
                // Retransmit the oldest outstanding frame and back off.
                let (seq, slot) = *self.channels[ch].unacked.front().expect("checked nonempty");
                let msg = self.slots[slot].clone().expect("slot held by unacked");
                self.retransmissions += 1;
                if let Some(m) = &self.metrics {
                    m.retransmissions.inc();
                }
                if ctx.tracing() {
                    let (round, node) = (ctx.round(), ctx.id());
                    ctx.trace(TraceEvent::Retransmission {
                        round,
                        node,
                        peer,
                        seq,
                    });
                }
                self.channels[ch].idle_rounds = 0;
                self.channels[ch].timeout = (self.channels[ch].timeout * 2).min(MAX_TIMEOUT);
                self.channels[ch].owes_ack = false;
                let frame = self.sealed(
                    ReliableMsg {
                        payload: Some((seq, msg)),
                        ack,
                        crc: None,
                    },
                    n,
                );
                ctx.send(peer, frame);
            } else if !self.channels[ch].backlog.is_empty()
                && (self.channels[ch].unacked.len() as u8) < WINDOW
            {
                let slot = self.channels[ch]
                    .backlog
                    .pop_front()
                    .expect("checked nonempty");
                let seq = self.channels[ch].next_seq;
                self.channels[ch].next_seq = seq.wrapping_add(1) & (SEQ_MOD - 1);
                self.channels[ch].unacked.push_back((seq, slot));
                self.channels[ch].idle_rounds = 0;
                self.channels[ch].owes_ack = false;
                let msg = self.slots[slot].clone().expect("slot held by backlog");
                let frame = self.sealed(
                    ReliableMsg {
                        payload: Some((seq, msg)),
                        ack,
                        crc: None,
                    },
                    n,
                );
                ctx.send(peer, frame);
            } else if self.channels[ch].owes_ack {
                self.channels[ch].owes_ack = false;
                let frame = self.sealed(
                    ReliableMsg {
                        payload: None,
                        ack,
                        crc: None,
                    },
                    n,
                );
                ctx.send(peer, frame);
            }
        }
    }
}

impl<P> NodeProgram for Reliable<P>
where
    P: NodeProgram,
    P::Msg: Message,
{
    type Msg = ReliableMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.ensure_channels(ctx);
        self.step_inner(ctx, &[], true);
        self.transmit(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: &[Incoming<Self::Msg>]) {
        self.ensure_channels(ctx);
        let mut delivered = self.absorb(ctx, inbox);
        self.step_inner(ctx, &delivered, false);
        delivered.clear();
        self.delivered_scratch = delivered;
        self.transmit(ctx);
    }

    fn is_terminated(&self) -> bool {
        self.inner.is_terminated() && self.channels.iter().all(Channel::quiescent)
    }

    fn reliability_stats(&self) -> Option<ReliabilityStats> {
        Some(ReliabilityStats {
            retransmissions: self.retransmissions,
            duplicates_suppressed: self.duplicates_suppressed,
            corrupt_frames_detected: self.corrupt_frames_detected,
            dead_links_declared: self.dead_links_declared,
            undeliverable_messages: self.undeliverable,
            inner_last_active_round: self.inner_last_active_round,
        })
    }

    fn on_neighbor_down(&mut self, peer: NodeId) {
        // An outer layer (or a test harness) declared the peer dead for
        // us: kill the channel if it exists, else pre-seed for setup.
        match self.channels.binary_search_by_key(&peer, |c| c.peer) {
            Ok(ch) if !self.channels[ch].dead => self.declare_dead(ch, false, None),
            Ok(_) => {}
            Err(_) if self.channels.is_empty() => self.preseed_dead.push(peer),
            Err(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_distance_wraps() {
        assert_eq!(seq_dist(0, 0), 0);
        assert_eq!(seq_dist(0, 1), 1);
        assert_eq!(seq_dist(15, 0), 1);
        assert_eq!(seq_dist(15, 3), 4);
        assert_eq!(seq_dist(3, 15), 12);
    }

    #[test]
    fn frame_sizes_account_for_header() {
        let with_payload: ReliableMsg<u64> = ReliableMsg {
            payload: Some((3, 5u64)),
            ack: 1,
            crc: None,
        };
        let pure_ack: ReliableMsg<u64> = ReliableMsg {
            payload: None,
            ack: 1,
            crc: None,
        };
        // u64's bit_size of 5 is 3 bits.
        assert_eq!(with_payload.bit_size(64), 2 + 4 + 4 + 3);
        assert_eq!(pure_ack.bit_size(64), 2 + 4);
        // A seal adds exactly the checksum word and nothing else.
        let sealed = ReliableMsg {
            crc: Some(with_payload.content_crc(64)),
            ..with_payload.clone()
        };
        assert_eq!(sealed.bit_size(64), with_payload.bit_size(64) + 32);
    }

    #[test]
    fn seal_verifies_and_catches_field_damage() {
        let frame: ReliableMsg<u64> = ReliableMsg {
            payload: Some((3, 5u64)),
            ack: 1,
            crc: None,
        };
        let seal = frame.content_crc(64);
        // Any single-field change invalidates the seal.
        let ack_flip = ReliableMsg {
            ack: 2,
            ..frame.clone()
        };
        let seq_flip = ReliableMsg {
            payload: Some((4, 5u64)),
            ..frame.clone()
        };
        let payload_flip = ReliableMsg {
            payload: Some((3, 7u64)),
            ..frame.clone()
        };
        assert_eq!(frame.content_crc(64), seal);
        assert_ne!(ack_flip.content_crc(64), seal);
        assert_ne!(seq_flip.content_crc(64), seal);
        assert_ne!(payload_flip.content_crc(64), seal);
    }

    #[test]
    fn corruption_leaves_a_stale_seal_behind() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let frame: ReliableMsg<u64> = ReliableMsg {
            payload: Some((3, 42u64)),
            ack: 1,
            crc: Some(0),
        };
        let sealed = ReliableMsg {
            crc: Some(frame.content_crc(64)),
            ..frame
        };
        let mut survived = 0usize;
        for _ in 0..100 {
            for kind in CorruptionKind::ALL {
                if let Some(mangled) = sealed.corrupted(kind, 64, &mut rng) {
                    if mangled == sealed {
                        // A garbage draw can redraw the original value;
                        // an unchanged frame rightly still verifies.
                        continue;
                    }
                    survived += 1;
                    // The mangled frame never passes verification: its
                    // content changed but its seal did not.
                    assert_ne!(
                        mangled.crc,
                        Some(mangled.content_crc(64)),
                        "{kind:?} slipped past the seal: {mangled:?}"
                    );
                }
            }
        }
        assert!(survived > 0, "every corruption destroyed the frame");
    }
}
