use std::error::Error;
use std::fmt;

use rwbc_graph::NodeId;

/// Errors surfaced by the CONGEST simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A node tried to send to a non-neighbor — CONGEST only allows
    /// communication along edges (paper Section III-A).
    NotNeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient (not adjacent to `from`).
        to: NodeId,
    },
    /// A message exceeded the per-edge bit budget in a round
    /// (strict [`ViolationPolicy`] only).
    ///
    /// [`ViolationPolicy`]: crate::ViolationPolicy
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
        /// Bits the offending traffic would have used on the edge.
        bits: usize,
        /// The per-edge budget `B(n)`.
        budget: usize,
    },
    /// More messages than allowed were sent over one edge direction in one
    /// round (strict policy only).
    TooManyMessages {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
        /// Number of messages attempted.
        count: usize,
        /// Allowed messages per edge direction per round.
        limit: usize,
    },
    /// The run exceeded `max_rounds` without global termination.
    RoundLimitExceeded {
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotNeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                round,
                bits,
                budget,
            } => write!(
                f,
                "edge ({from}, {to}) carried {bits} bits in round {round}, budget is {budget}"
            ),
            SimError::TooManyMessages {
                from,
                to,
                round,
                count,
                limit,
            } => write!(
                f,
                "edge ({from}, {to}) carried {count} messages in round {round}, limit is {limit}"
            ),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "simulation did not terminate within {limit} rounds")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parties() {
        let e = SimError::NotNeighbor { from: 1, to: 5 };
        assert!(e.to_string().contains('1') && e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
