use std::error::Error;
use std::fmt;

use rwbc_graph::NodeId;

/// Errors surfaced by the CONGEST simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A node tried to send to a non-neighbor — CONGEST only allows
    /// communication along edges (paper Section III-A).
    NotNeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient (not adjacent to `from`).
        to: NodeId,
    },
    /// A message exceeded the per-edge bit budget in a round
    /// (strict [`ViolationPolicy`] only).
    ///
    /// [`ViolationPolicy`]: crate::ViolationPolicy
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
        /// Bits the offending traffic would have used on the edge.
        bits: usize,
        /// The per-edge budget `B(n)`.
        budget: usize,
    },
    /// More messages than allowed were sent over one edge direction in one
    /// round (strict policy only).
    TooManyMessages {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Round in which the violation happened.
        round: usize,
        /// Number of messages attempted.
        count: usize,
        /// Allowed messages per edge direction per round.
        limit: usize,
    },
    /// The run exceeded its hard `max_rounds` budget without global
    /// termination. Every run carries this budget (the default
    /// [`SimConfig`](crate::SimConfig) sets one), so a livelocked protocol
    /// surfaces as this typed error instead of hanging the host.
    RoundBudgetExceeded {
        /// The configured cap.
        limit: usize,
    },
    /// A worker thread panicked while stepping node programs. The panic is
    /// captured and surfaced as an error so one misbehaving program cannot
    /// abort the whole process; the remaining workers are drained first.
    WorkerPanic {
        /// The round being executed when the panic fired.
        round: usize,
        /// The panic payload, stringified (`"<non-string panic>"` when the
        /// payload was not a string).
        payload: String,
    },
    /// A checkpoint image failed validation during
    /// [`Simulator::restore`](crate::Simulator::restore): truncated data,
    /// a version mismatch, or a `(graph, seed)` pair that differs from the
    /// one the checkpoint was taken against.
    CorruptCheckpoint {
        /// Human-readable description of what failed to validate.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotNeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                round,
                bits,
                budget,
            } => write!(
                f,
                "edge ({from}, {to}) carried {bits} bits in round {round}, budget is {budget}"
            ),
            SimError::TooManyMessages {
                from,
                to,
                round,
                count,
                limit,
            } => write!(
                f,
                "edge ({from}, {to}) carried {count} messages in round {round}, limit is {limit}"
            ),
            SimError::RoundBudgetExceeded { limit } => {
                write!(f, "simulation did not terminate within {limit} rounds")
            }
            SimError::WorkerPanic { round, payload } => {
                write!(f, "round worker panicked in round {round}: {payload}")
            }
            SimError::CorruptCheckpoint { reason } => {
                write!(f, "checkpoint failed validation: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parties() {
        let e = SimError::NotNeighbor { from: 1, to: 5 };
        assert!(e.to_string().contains('1') && e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
