//! Structured tracing for the CONGEST simulator.
//!
//! The paper's claims are per-round claims — round complexity upper
//! bounds and bits-across-a-cut lower bounds — so the simulator can emit
//! a typed event stream describing *where* rounds and bits go:
//!
//! * round boundaries with per-round message/bit aggregates,
//! * per-edge congestion samples,
//! * fault-injection outcomes (drops, duplicates, delays, corruption,
//!   crashes),
//! * reliable-delivery activity (retransmissions, suppressed
//!   duplicates, detected corrupt frames, dead-link declarations),
//! * driver-side phase spans with wall-clock timing,
//! * application-level counters published by node programs.
//!
//! Attach a [`Tracer`] with
//! [`Simulator::with_tracer`](crate::Simulator::with_tracer). An
//! untraced simulator never constructs an event — the tracing hooks
//! vanish behind an `Option` check — and a run with the no-op tracer is
//! bit-identical (stats and checkpoints) to an untraced run.
//!
//! **Determinism:** every event except the wall-clock field of
//! [`TraceEvent::PhaseEnd`] is a pure function of `(graph, seed,
//! program)`. Node-originated events are buffered per node and drained
//! in ascending node order each round, so the emitted sequence is
//! identical at any thread count — the same guarantee the engine makes
//! for its replay. Use [`TraceEvent::strip_wall_clock`] before
//! comparing traces.
//!
//! Sinks: [`MemoryTracer`] collects events in memory;
//! [`JsonlTracer`](jsonl::JsonlTracer) streams them as line-delimited
//! JSON (one event per line, stable schema — see [`jsonl`]).
//! [`profile::TraceProfile`] aggregates either form into per-round
//! rows, log-bucketed histograms, hottest edges, and a phase timing
//! breakdown.

pub mod flight;
pub mod json;
pub mod jsonl;
pub mod profile;

use std::fmt;

use rwbc_graph::NodeId;

pub use flight::{FlightRecorder, FLIGHT_DEFAULT_CAPACITY};
pub use jsonl::JsonlTracer;
pub use profile::{LogHistogram, TraceProfile};

/// Version of the JSONL trace schema. Bumped whenever an event's
/// encoded field set changes incompatibly.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Why the engine dropped a committed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Lost to the Bernoulli drop fault.
    Fault,
    /// Lost to a scheduled link outage on the edge.
    LinkDown,
    /// Delivered while the receiver was crashed.
    ReceiverCrashed,
    /// Mangled beyond parsing by corruption fault injection (the receiver
    /// cannot distinguish undecodable bytes from no bytes).
    Corrupt,
}

impl DropReason {
    /// Stable schema name of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::Fault => "fault",
            DropReason::LinkDown => "link_down",
            DropReason::ReceiverCrashed => "crashed",
            DropReason::Corrupt => "corrupt",
        }
    }

    /// Parses a schema name back into a reason.
    pub fn from_str_opt(s: &str) -> Option<DropReason> {
        match s {
            "fault" => Some(DropReason::Fault),
            "link_down" => Some(DropReason::LinkDown),
            "crashed" => Some(DropReason::ReceiverCrashed),
            "corrupt" => Some(DropReason::Corrupt),
            _ => None,
        }
    }
}

/// One typed observation from a traced run.
///
/// Events arrive in deterministic order: per round, crash transitions
/// first, then receiver-side drops, then node-originated events in
/// ascending node id, then per-edge traffic and fault outcomes in
/// commit order (sender ascending, destinations ascending), then the
/// round aggregate. Driver-level phase spans bracket whole simulator
/// runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Stream header: schema version. Written once by JSONL sinks.
    Meta {
        /// The [`TRACE_SCHEMA_VERSION`] the stream was written with.
        schema: u64,
    },
    /// A driver-side phase (e.g. `election`, `walk`, `count`,
    /// `collect`) began.
    PhaseStart {
        /// Phase name.
        name: String,
    },
    /// A driver-side phase ended.
    PhaseEnd {
        /// Phase name (matches the opening [`TraceEvent::PhaseStart`]).
        name: String,
        /// Simulated rounds the phase consumed.
        rounds: usize,
        /// Host wall-clock duration in microseconds. The only
        /// non-deterministic field in the schema; zeroed by
        /// [`TraceEvent::strip_wall_clock`].
        elapsed_us: u64,
    },
    /// End-of-round aggregate, emitted once per committed round
    /// (round `0` is the `on_start` send wave).
    Round {
        /// Round number the traffic was sent in.
        round: usize,
        /// Messages committed this round.
        messages: u64,
        /// Bits committed this round.
        bits: u64,
        /// Messages crossing the metered cut this round.
        cut_messages: u64,
        /// Bits crossing the metered cut this round.
        cut_bits: u64,
    },
    /// Traffic over one edge direction in one round. Suppressed when
    /// the attached tracer opts out via [`Tracer::wants_edge_traffic`].
    EdgeTraffic {
        /// Round number.
        round: usize,
        /// Sending endpoint.
        from: NodeId,
        /// Receiving endpoint.
        to: NodeId,
        /// Messages sent over the direction this round.
        messages: usize,
        /// Bits sent over the direction this round.
        bits: usize,
        /// Whether the edge crosses the metered cut.
        cut: bool,
    },
    /// A committed message was lost.
    Dropped {
        /// Round the loss occurred in: the send round for
        /// [`DropReason::Fault`] and [`DropReason::LinkDown`], the
        /// delivery round for [`DropReason::ReceiverCrashed`].
        round: usize,
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Why it was lost.
        reason: DropReason,
    },
    /// A committed message was mangled in flight by corruption fault
    /// injection but still parsed at the receiver (a destroyed frame is
    /// reported as [`TraceEvent::Dropped`] with [`DropReason::Corrupt`]
    /// instead).
    Corrupted {
        /// Round it was sent in.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// How the frame was mangled.
        kind: crate::fault::CorruptionKind,
    },
    /// A checksummed delivery layer detected and discarded a corrupt
    /// frame (the sender's retransmission machinery repairs the loss).
    CorruptFrameDetected {
        /// Round the frame arrived in.
        round: usize,
        /// Receiving node.
        node: NodeId,
        /// Peer whose frame failed verification.
        peer: NodeId,
    },
    /// A committed message was duplicated by fault injection.
    Duplicated {
        /// Round it was sent in.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A committed message was held back one round by fault injection.
    Delayed {
        /// Round it was sent in.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A node entered a crash window.
    NodeDown {
        /// First round the node is down.
        round: usize,
        /// The crashed node.
        node: NodeId,
    },
    /// A node recovered from a crash window.
    NodeUp {
        /// First round the node is back up.
        round: usize,
        /// The recovered node.
        node: NodeId,
    },
    /// The reliable-delivery layer retransmitted a timed-out frame.
    Retransmission {
        /// Round of the retransmission.
        round: usize,
        /// Retransmitting node.
        node: NodeId,
        /// Peer the frame is addressed to.
        peer: NodeId,
        /// Sequence number of the retransmitted frame.
        seq: u8,
    },
    /// The reliable-delivery layer discarded an already-delivered copy.
    DuplicateSuppressed {
        /// Round the duplicate arrived in.
        round: usize,
        /// Receiving node.
        node: NodeId,
        /// Peer that (re)sent the frame.
        peer: NodeId,
    },
    /// A failure detector declared the channel to `peer` permanently
    /// dead.
    DeadLinkDeclared {
        /// Round of the declaration.
        round: usize,
        /// Declaring node.
        node: NodeId,
        /// The peer declared unreachable.
        peer: NodeId,
        /// `true` when detected by timeout strikes at runtime, `false`
        /// when preseeded from prior knowledge.
        detected: bool,
    },
    /// An application-level counter published by a node program (e.g.
    /// walk tokens absorbed at the target this round).
    App {
        /// Round the observation was made in.
        round: usize,
        /// Publishing node.
        node: NodeId,
        /// Counter name (protocol-defined, e.g. `absorbed`).
        key: String,
        /// Counter value.
        value: u64,
    },
}

impl TraceEvent {
    /// Zeroes the wall-clock field, leaving only deterministic content.
    /// Two same-seed runs at different thread counts compare equal
    /// event-for-event after this.
    pub fn strip_wall_clock(&mut self) {
        if let TraceEvent::PhaseEnd { elapsed_us, .. } = self {
            *elapsed_us = 0;
        }
    }
}

/// A sink for [`TraceEvent`]s.
///
/// Implementations run on the engine's single-threaded spine (event
/// buffers from parallel workers are drained in node order before this
/// is called), so no `Send`/`Sync` bound is needed. The `Debug` bound
/// keeps `Simulator`'s own `Debug` derive intact.
pub trait Tracer: fmt::Debug {
    /// Receives one event. Called in deterministic order.
    fn record(&mut self, event: &TraceEvent);

    /// Whether the engine should emit per-edge
    /// [`TraceEvent::EdgeTraffic`] samples (the highest-volume event
    /// class). Defaults to `true`.
    fn wants_edge_traffic(&self) -> bool {
        true
    }
}

/// A tracer that discards everything.
///
/// Exists so generic call sites can pass "no tracing" explicitly; a
/// run with a `NoopTracer` attached produces bit-identical statistics
/// and checkpoints to an untraced run (the engine still constructs
/// events for it, so prefer *not* attaching a tracer on hot paths).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&mut self, _event: &TraceEvent) {}

    fn wants_edge_traffic(&self) -> bool {
        false
    }
}

/// A tracer that collects events into a `Vec`, for tests and in-memory
/// aggregation.
#[derive(Debug, Default)]
pub struct MemoryTracer {
    /// Events recorded so far, in emission order.
    pub events: Vec<TraceEvent>,
    edge_traffic: bool,
}

impl MemoryTracer {
    /// A collector that records every event class.
    pub fn new() -> MemoryTracer {
        MemoryTracer {
            events: Vec::new(),
            edge_traffic: true,
        }
    }

    /// A collector that skips per-edge traffic samples.
    pub fn without_edge_traffic() -> MemoryTracer {
        MemoryTracer {
            events: Vec::new(),
            edge_traffic: false,
        }
    }

    /// Consumes the tracer, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Tracer for MemoryTracer {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }

    fn wants_edge_traffic(&self) -> bool {
        self.edge_traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_wall_clock_only_touches_phase_end() {
        let mut e = TraceEvent::PhaseEnd {
            name: "walk".to_string(),
            rounds: 10,
            elapsed_us: 1234,
        };
        e.strip_wall_clock();
        assert_eq!(
            e,
            TraceEvent::PhaseEnd {
                name: "walk".to_string(),
                rounds: 10,
                elapsed_us: 0,
            }
        );
        let mut r = TraceEvent::Round {
            round: 1,
            messages: 2,
            bits: 3,
            cut_messages: 0,
            cut_bits: 0,
        };
        let before = r.clone();
        r.strip_wall_clock();
        assert_eq!(r, before);
    }

    #[test]
    fn memory_tracer_collects_in_order() {
        let mut t = MemoryTracer::new();
        t.record(&TraceEvent::PhaseStart {
            name: "a".to_string(),
        });
        t.record(&TraceEvent::Meta { schema: 1 });
        assert_eq!(t.events.len(), 2);
        assert!(matches!(t.events[0], TraceEvent::PhaseStart { .. }));
    }
}
