//! Crash-safe flight recorder: a bounded ring of recent trace events
//! per subsystem, dumpable atomically as a valid JSONL trace.
//!
//! The JSONL tracer records *everything*; the flight recorder records
//! the *last N* events per subsystem into memory so a long-running
//! process can leave a useful post-mortem without unbounded storage.
//! [`FlightRecorder::dump_to`] writes the rings as an ordinary JSONL
//! trace document — schema header first, each subsystem bracketed by
//! `PhaseStart`/`PhaseEnd` — via a temp file + rename, so a reader
//! never observes a torn dump and the CLI `validate` subcommand
//! accepts it unchanged. Callers dump periodically *and* at exit:
//! `SIGKILL` cannot be intercepted, so crash coverage comes from the
//! periodic cadence, not the exit hook.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use super::jsonl::encode_event;
use super::{TraceEvent, TRACE_SCHEMA_VERSION};

/// Default per-subsystem ring capacity.
pub const FLIGHT_DEFAULT_CAPACITY: usize = 256;

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    /// Events evicted from the ring since the recorder was created.
    evicted: u64,
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    rings: BTreeMap<String, Ring>,
}

/// A thread-safe, bounded, per-subsystem event ring. Cloning shares the
/// recorder; any clone may record or dump.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FLIGHT_DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events per
    /// subsystem (clamped to at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                capacity: capacity.max(1),
                rings: BTreeMap::new(),
            })),
        }
    }

    /// Appends `event` to `subsystem`'s ring, evicting the oldest entry
    /// when full.
    pub fn record(&self, subsystem: &str, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        let capacity = inner.capacity;
        let ring = inner.rings.entry(subsystem.to_string()).or_default();
        if ring.events.len() == capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(event);
    }

    /// Total events currently held across all rings.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        inner.rings.values().map(|r| r.events.len()).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the rings as a self-contained trace-event sequence:
    /// a `Meta` schema header, then each subsystem (ascending by name)
    /// bracketed by `PhaseStart`/`PhaseEnd`, its retained events in
    /// arrival order. A ring that evicted events reports the loss as an
    /// `App { key: "flight_evicted" }` event so a post-mortem reader
    /// knows the window was exceeded.
    pub fn dump_events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        let mut out = Vec::with_capacity(2 + 3 * inner.rings.len() + self.len_locked(&inner));
        out.push(TraceEvent::Meta {
            schema: TRACE_SCHEMA_VERSION,
        });
        for (name, ring) in &inner.rings {
            out.push(TraceEvent::PhaseStart { name: name.clone() });
            if ring.evicted > 0 {
                out.push(TraceEvent::App {
                    round: 0,
                    node: 0,
                    key: "flight_evicted".to_string(),
                    value: ring.evicted,
                });
            }
            out.extend(ring.events.iter().cloned());
            out.push(TraceEvent::PhaseEnd {
                name: name.clone(),
                rounds: ring.events.len(),
                elapsed_us: 0,
            });
        }
        out
    }

    fn len_locked(&self, inner: &FlightInner) -> usize {
        inner.rings.values().map(|r| r.events.len()).sum()
    }

    /// Writes [`FlightRecorder::dump_events`] as JSONL to `path`
    /// atomically: the document lands in `<path>.tmp` first and is
    /// renamed over `path`, so a concurrent reader (or a post-crash
    /// one) sees either the previous complete dump or this one — never
    /// a torn file.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, writing, flushing, or renaming.
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        let events = self.dump_events();
        let tmp = path.with_extension("tmp");
        {
            let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
            for event in &events {
                writeln!(f, "{}", encode_event(event))?;
            }
            f.flush()?;
            f.into_inner()?.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::super::jsonl::decode_trace;
    use super::*;

    fn app(key: &str, value: u64) -> TraceEvent {
        TraceEvent::App {
            round: 0,
            node: 0,
            key: key.to_string(),
            value,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_reports_eviction() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record("serve", app("req", i));
        }
        fr.record("solver", app("ckpt", 1));
        assert_eq!(fr.len(), 4);
        let events = fr.dump_events();
        assert_eq!(
            events[0],
            TraceEvent::Meta {
                schema: TRACE_SCHEMA_VERSION
            }
        );
        // Subsystems come out in name order: serve, then solver.
        assert_eq!(
            events[1],
            TraceEvent::PhaseStart {
                name: "serve".to_string()
            }
        );
        assert_eq!(events[2], app("flight_evicted", 2));
        assert_eq!(
            &events[3..6],
            &[app("req", 2), app("req", 3), app("req", 4)]
        );
        assert!(
            matches!(&events[6], TraceEvent::PhaseEnd { name, rounds: 3, .. } if name == "serve")
        );
        assert!(matches!(&events[7], TraceEvent::PhaseStart { name } if name == "solver"));
    }

    #[test]
    fn dump_round_trips_through_jsonl() {
        let dir = std::env::temp_dir().join(format!("rwbc-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let fr = FlightRecorder::new(8);
        fr.record("serve", app("timeout", 250));
        fr.record(
            "solver",
            TraceEvent::Round {
                round: 7,
                messages: 10,
                bits: 240,
                cut_messages: 0,
                cut_bits: 0,
            },
        );
        fr.dump_to(&path).unwrap();
        // Overwrite with more data: the rename replaces the old dump.
        fr.record("serve", app("shed", 1));
        fr.dump_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let decoded = decode_trace(&text).unwrap();
        assert_eq!(decoded, fr.dump_events());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_recorder_dumps_header_only() {
        let fr = FlightRecorder::default();
        assert!(fr.is_empty());
        assert_eq!(
            fr.dump_events(),
            vec![TraceEvent::Meta {
                schema: TRACE_SCHEMA_VERSION
            }]
        );
    }
}
