//! Line-delimited JSON trace encoding.
//!
//! Every [`TraceEvent`] maps to one compact JSON object per line, with
//! a stable field order, keyed by an `"ev"` type tag:
//!
//! | `ev` | event | fields |
//! |------|-------|--------|
//! | `meta` | [`TraceEvent::Meta`] | `schema` |
//! | `phase_start` | [`TraceEvent::PhaseStart`] | `name` |
//! | `phase_end` | [`TraceEvent::PhaseEnd`] | `name`, `rounds`, `elapsed_us` |
//! | `round` | [`TraceEvent::Round`] | `round`, `messages`, `bits`, `cut_messages`, `cut_bits` |
//! | `edge` | [`TraceEvent::EdgeTraffic`] | `round`, `from`, `to`, `messages`, `bits`, `cut` |
//! | `drop` | [`TraceEvent::Dropped`] | `round`, `from`, `to`, `reason` |
//! | `corrupt` | [`TraceEvent::Corrupted`] | `round`, `from`, `to`, `kind` |
//! | `corrupt_frame` | [`TraceEvent::CorruptFrameDetected`] | `round`, `node`, `peer` |
//! | `dup` | [`TraceEvent::Duplicated`] | `round`, `from`, `to` |
//! | `delay` | [`TraceEvent::Delayed`] | `round`, `from`, `to` |
//! | `node_down` | [`TraceEvent::NodeDown`] | `round`, `node` |
//! | `node_up` | [`TraceEvent::NodeUp`] | `round`, `node` |
//! | `retransmit` | [`TraceEvent::Retransmission`] | `round`, `node`, `peer`, `seq` |
//! | `dup_suppressed` | [`TraceEvent::DuplicateSuppressed`] | `round`, `node`, `peer` |
//! | `dead_link` | [`TraceEvent::DeadLinkDeclared`] | `round`, `node`, `peer`, `detected` |
//! | `app` | [`TraceEvent::App`] | `round`, `node`, `key`, `value` |
//!
//! The encoding is canonical: `decode_event(encode_event(e)) == e` and
//! re-encoding a decoded line reproduces it byte for byte, which is
//! what the CLI `validate` subcommand checks.

use std::fmt;
use std::io::{self, Write};

use super::json::Json;
use super::{DropReason, TraceEvent, Tracer, TRACE_SCHEMA_VERSION};

fn obj(tag: &str, fields: Vec<(&str, Json)>) -> Json {
    let mut all = Vec::with_capacity(fields.len() + 1);
    all.push(("ev".to_string(), Json::Str(tag.to_string())));
    for (k, v) in fields {
        all.push((k.to_string(), v));
    }
    Json::Obj(all)
}

fn int(v: impl TryInto<i64>) -> Json {
    Json::Int(v.try_into().unwrap_or(i64::MAX))
}

/// Encodes one event as its canonical single-line JSON form (no
/// trailing newline).
pub fn encode_event(event: &TraceEvent) -> String {
    let value = match event {
        TraceEvent::Meta { schema } => obj("meta", vec![("schema", int(*schema))]),
        TraceEvent::PhaseStart { name } => {
            obj("phase_start", vec![("name", Json::Str(name.clone()))])
        }
        TraceEvent::PhaseEnd {
            name,
            rounds,
            elapsed_us,
        } => obj(
            "phase_end",
            vec![
                ("name", Json::Str(name.clone())),
                ("rounds", int(*rounds)),
                ("elapsed_us", int(*elapsed_us)),
            ],
        ),
        TraceEvent::Round {
            round,
            messages,
            bits,
            cut_messages,
            cut_bits,
        } => obj(
            "round",
            vec![
                ("round", int(*round)),
                ("messages", int(*messages)),
                ("bits", int(*bits)),
                ("cut_messages", int(*cut_messages)),
                ("cut_bits", int(*cut_bits)),
            ],
        ),
        TraceEvent::EdgeTraffic {
            round,
            from,
            to,
            messages,
            bits,
            cut,
        } => obj(
            "edge",
            vec![
                ("round", int(*round)),
                ("from", int(*from)),
                ("to", int(*to)),
                ("messages", int(*messages)),
                ("bits", int(*bits)),
                ("cut", Json::Bool(*cut)),
            ],
        ),
        TraceEvent::Dropped {
            round,
            from,
            to,
            reason,
        } => obj(
            "drop",
            vec![
                ("round", int(*round)),
                ("from", int(*from)),
                ("to", int(*to)),
                ("reason", Json::Str(reason.as_str().to_string())),
            ],
        ),
        TraceEvent::Corrupted {
            round,
            from,
            to,
            kind,
        } => obj(
            "corrupt",
            vec![
                ("round", int(*round)),
                ("from", int(*from)),
                ("to", int(*to)),
                ("kind", Json::Str(kind.as_str().to_string())),
            ],
        ),
        TraceEvent::CorruptFrameDetected { round, node, peer } => obj(
            "corrupt_frame",
            vec![
                ("round", int(*round)),
                ("node", int(*node)),
                ("peer", int(*peer)),
            ],
        ),
        TraceEvent::Duplicated { round, from, to } => obj(
            "dup",
            vec![
                ("round", int(*round)),
                ("from", int(*from)),
                ("to", int(*to)),
            ],
        ),
        TraceEvent::Delayed { round, from, to } => obj(
            "delay",
            vec![
                ("round", int(*round)),
                ("from", int(*from)),
                ("to", int(*to)),
            ],
        ),
        TraceEvent::NodeDown { round, node } => obj(
            "node_down",
            vec![("round", int(*round)), ("node", int(*node))],
        ),
        TraceEvent::NodeUp { round, node } => obj(
            "node_up",
            vec![("round", int(*round)), ("node", int(*node))],
        ),
        TraceEvent::Retransmission {
            round,
            node,
            peer,
            seq,
        } => obj(
            "retransmit",
            vec![
                ("round", int(*round)),
                ("node", int(*node)),
                ("peer", int(*peer)),
                ("seq", int(*seq)),
            ],
        ),
        TraceEvent::DuplicateSuppressed { round, node, peer } => obj(
            "dup_suppressed",
            vec![
                ("round", int(*round)),
                ("node", int(*node)),
                ("peer", int(*peer)),
            ],
        ),
        TraceEvent::DeadLinkDeclared {
            round,
            node,
            peer,
            detected,
        } => obj(
            "dead_link",
            vec![
                ("round", int(*round)),
                ("node", int(*node)),
                ("peer", int(*peer)),
                ("detected", Json::Bool(*detected)),
            ],
        ),
        TraceEvent::App {
            round,
            node,
            key,
            value,
        } => obj(
            "app",
            vec![
                ("round", int(*round)),
                ("node", int(*node)),
                ("key", Json::Str(key.clone())),
                ("value", int(*value)),
            ],
        ),
    };
    value.to_json()
}

fn field<'j>(v: &'j Json, key: &str, tag: &str) -> Result<&'j Json, String> {
    v.get(key)
        .ok_or_else(|| format!("'{tag}' event is missing field '{key}'"))
}

fn get_usize(v: &Json, key: &str, tag: &str) -> Result<usize, String> {
    field(v, key, tag)?
        .as_usize()
        .ok_or_else(|| format!("'{tag}.{key}' is not a non-negative integer"))
}

fn get_u64(v: &Json, key: &str, tag: &str) -> Result<u64, String> {
    field(v, key, tag)?
        .as_u64()
        .ok_or_else(|| format!("'{tag}.{key}' is not a non-negative integer"))
}

fn get_str(v: &Json, key: &str, tag: &str) -> Result<String, String> {
    Ok(field(v, key, tag)?
        .as_str()
        .ok_or_else(|| format!("'{tag}.{key}' is not a string"))?
        .to_string())
}

fn get_bool(v: &Json, key: &str, tag: &str) -> Result<bool, String> {
    field(v, key, tag)?
        .as_bool()
        .ok_or_else(|| format!("'{tag}.{key}' is not a boolean"))
}

/// Decodes one JSONL line back into a [`TraceEvent`].
///
/// # Errors
///
/// A human-readable description of the first schema violation (parse
/// error, unknown tag, missing or mistyped field).
pub fn decode_event(line: &str) -> Result<TraceEvent, String> {
    let v = Json::parse(line)?;
    let tag = v
        .get("ev")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing 'ev' type tag".to_string())?
        .to_string();
    let t = tag.as_str();
    match t {
        "meta" => Ok(TraceEvent::Meta {
            schema: get_u64(&v, "schema", t)?,
        }),
        "phase_start" => Ok(TraceEvent::PhaseStart {
            name: get_str(&v, "name", t)?,
        }),
        "phase_end" => Ok(TraceEvent::PhaseEnd {
            name: get_str(&v, "name", t)?,
            rounds: get_usize(&v, "rounds", t)?,
            elapsed_us: get_u64(&v, "elapsed_us", t)?,
        }),
        "round" => Ok(TraceEvent::Round {
            round: get_usize(&v, "round", t)?,
            messages: get_u64(&v, "messages", t)?,
            bits: get_u64(&v, "bits", t)?,
            cut_messages: get_u64(&v, "cut_messages", t)?,
            cut_bits: get_u64(&v, "cut_bits", t)?,
        }),
        "edge" => Ok(TraceEvent::EdgeTraffic {
            round: get_usize(&v, "round", t)?,
            from: get_usize(&v, "from", t)?,
            to: get_usize(&v, "to", t)?,
            messages: get_usize(&v, "messages", t)?,
            bits: get_usize(&v, "bits", t)?,
            cut: get_bool(&v, "cut", t)?,
        }),
        "drop" => Ok(TraceEvent::Dropped {
            round: get_usize(&v, "round", t)?,
            from: get_usize(&v, "from", t)?,
            to: get_usize(&v, "to", t)?,
            reason: {
                let r = get_str(&v, "reason", t)?;
                DropReason::from_str_opt(&r).ok_or_else(|| format!("unknown drop reason '{r}'"))?
            },
        }),
        "corrupt" => Ok(TraceEvent::Corrupted {
            round: get_usize(&v, "round", t)?,
            from: get_usize(&v, "from", t)?,
            to: get_usize(&v, "to", t)?,
            kind: {
                let k = get_str(&v, "kind", t)?;
                crate::fault::CorruptionKind::from_str_opt(&k)
                    .ok_or_else(|| format!("unknown corruption kind '{k}'"))?
            },
        }),
        "corrupt_frame" => Ok(TraceEvent::CorruptFrameDetected {
            round: get_usize(&v, "round", t)?,
            node: get_usize(&v, "node", t)?,
            peer: get_usize(&v, "peer", t)?,
        }),
        "dup" => Ok(TraceEvent::Duplicated {
            round: get_usize(&v, "round", t)?,
            from: get_usize(&v, "from", t)?,
            to: get_usize(&v, "to", t)?,
        }),
        "delay" => Ok(TraceEvent::Delayed {
            round: get_usize(&v, "round", t)?,
            from: get_usize(&v, "from", t)?,
            to: get_usize(&v, "to", t)?,
        }),
        "node_down" => Ok(TraceEvent::NodeDown {
            round: get_usize(&v, "round", t)?,
            node: get_usize(&v, "node", t)?,
        }),
        "node_up" => Ok(TraceEvent::NodeUp {
            round: get_usize(&v, "round", t)?,
            node: get_usize(&v, "node", t)?,
        }),
        "retransmit" => Ok(TraceEvent::Retransmission {
            round: get_usize(&v, "round", t)?,
            node: get_usize(&v, "node", t)?,
            peer: get_usize(&v, "peer", t)?,
            seq: u8::try_from(get_u64(&v, "seq", t)?)
                .map_err(|_| "'retransmit.seq' exceeds u8".to_string())?,
        }),
        "dup_suppressed" => Ok(TraceEvent::DuplicateSuppressed {
            round: get_usize(&v, "round", t)?,
            node: get_usize(&v, "node", t)?,
            peer: get_usize(&v, "peer", t)?,
        }),
        "dead_link" => Ok(TraceEvent::DeadLinkDeclared {
            round: get_usize(&v, "round", t)?,
            node: get_usize(&v, "node", t)?,
            peer: get_usize(&v, "peer", t)?,
            detected: get_bool(&v, "detected", t)?,
        }),
        "app" => Ok(TraceEvent::App {
            round: get_usize(&v, "round", t)?,
            node: get_usize(&v, "node", t)?,
            key: get_str(&v, "key", t)?,
            value: get_u64(&v, "value", t)?,
        }),
        other => Err(format!("unknown event tag '{other}'")),
    }
}

/// Decodes a whole JSONL document (e.g. a trace file read to a
/// string), skipping blank lines.
///
/// # Errors
///
/// The 1-based line number and description of the first bad line.
pub fn decode_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(decode_event(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// A [`Tracer`] that streams events to a writer as JSONL.
///
/// Opens the stream with a [`TraceEvent::Meta`] header line carrying
/// [`TRACE_SCHEMA_VERSION`]. I/O errors are sticky: the first one is
/// kept and subsequent writes are skipped; surface it with
/// [`JsonlTracer::finish`].
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlTracer<W> {
    /// Wraps `out`, immediately writing the schema header line.
    pub fn new(mut out: W) -> JsonlTracer<W> {
        let header = encode_event(&TraceEvent::Meta {
            schema: TRACE_SCHEMA_VERSION,
        });
        let error = writeln!(out, "{header}").err();
        JsonlTracer {
            out,
            lines: 1,
            error,
        }
    }

    /// Lines written so far (including the header).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first I/O error hit
    /// while recording.
    ///
    /// # Errors
    ///
    /// The sticky recording error, or the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write + fmt::Debug> Tracer for JsonlTracer<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = encode_event(event);
        match writeln!(self.out, "{line}") {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Meta { schema: 1 },
            TraceEvent::PhaseStart {
                name: "walk".to_string(),
            },
            TraceEvent::Round {
                round: 3,
                messages: 17,
                bits: 412,
                cut_messages: 2,
                cut_bits: 48,
            },
            TraceEvent::EdgeTraffic {
                round: 3,
                from: 1,
                to: 7,
                messages: 1,
                bits: 24,
                cut: true,
            },
            TraceEvent::Dropped {
                round: 4,
                from: 0,
                to: 2,
                reason: DropReason::LinkDown,
            },
            TraceEvent::Dropped {
                round: 5,
                from: 3,
                to: 1,
                reason: DropReason::Corrupt,
            },
            TraceEvent::Corrupted {
                round: 4,
                from: 1,
                to: 3,
                kind: crate::fault::CorruptionKind::BitFlip,
            },
            TraceEvent::Corrupted {
                round: 5,
                from: 3,
                to: 1,
                kind: crate::fault::CorruptionKind::Garbage,
            },
            TraceEvent::CorruptFrameDetected {
                round: 6,
                node: 3,
                peer: 1,
            },
            TraceEvent::Duplicated {
                round: 4,
                from: 2,
                to: 0,
            },
            TraceEvent::Delayed {
                round: 5,
                from: 2,
                to: 3,
            },
            TraceEvent::NodeDown { round: 6, node: 4 },
            TraceEvent::NodeUp { round: 9, node: 4 },
            TraceEvent::Retransmission {
                round: 7,
                node: 1,
                peer: 4,
                seq: 3,
            },
            TraceEvent::DuplicateSuppressed {
                round: 8,
                node: 4,
                peer: 1,
            },
            TraceEvent::DeadLinkDeclared {
                round: 15,
                node: 1,
                peer: 4,
                detected: true,
            },
            TraceEvent::App {
                round: 12,
                node: 9,
                key: "absorbed".to_string(),
                value: 5,
            },
            TraceEvent::PhaseEnd {
                name: "walk".to_string(),
                rounds: 15,
                elapsed_us: 9001,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for event in sample_events() {
            let line = encode_event(&event);
            let back = decode_event(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "round-trip mismatch for {line}");
            // Canonical: re-encoding reproduces the line exactly.
            assert_eq!(encode_event(&back), line);
        }
    }

    #[test]
    fn decode_rejects_bad_lines() {
        assert!(decode_event("not json").is_err());
        assert!(decode_event("{}").is_err());
        assert!(decode_event(r#"{"ev":"warp"}"#).is_err());
        assert!(decode_event(r#"{"ev":"round","round":1}"#).is_err());
        assert!(
            decode_event(r#"{"ev":"drop","round":1,"from":0,"to":1,"reason":"gremlin"}"#).is_err()
        );
        assert!(
            decode_event(r#"{"ev":"corrupt","round":1,"from":0,"to":1,"kind":"melted"}"#).is_err()
        );
        assert!(decode_event(r#"{"ev":"corrupt_frame","round":1,"node":0}"#).is_err());
    }

    #[test]
    fn jsonl_tracer_streams_lines() {
        let mut tracer = JsonlTracer::new(Vec::new());
        for event in sample_events() {
            tracer.record(&event);
        }
        let lines = tracer.lines();
        let buf = tracer.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let decoded = decode_trace(&text).unwrap();
        // Header + every sample event.
        assert_eq!(decoded.len() as u64, lines);
        assert_eq!(decoded[0], TraceEvent::Meta { schema: 1 });
        assert_eq!(&decoded[1..], &sample_events()[..]);
    }
}
