//! Minimal zero-dependency JSON value, writer, and parser.
//!
//! The workspace has no registry access and the vendored `serde` is a
//! marker-trait stand-in with no runtime serialization, so the trace
//! layer carries its own JSON core. It supports exactly the subset the
//! trace schema needs — objects, arrays, strings, integers, floats,
//! booleans, null — with a stable field order on output so encoded
//! traces are byte-stable and diffable.

use std::fmt;

/// A parsed JSON value. Object fields keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number (the trace schema never emits non-integers,
    /// but floats are still parsed for forward compatibility).
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON (no whitespace, object
    /// fields in stored order).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                use fmt::Write;
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                use fmt::Write;
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes the value to a fresh compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses one JSON value from `input`, requiring the whole input
    /// (modulo surrounding whitespace) to be consumed.
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per level, so untrusted input like
/// `[[[[…` must hit a typed error before it hits the real stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn nested(&mut self, inner: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        let result = inner(self);
        self.depth -= 1;
        result
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the
                            // writer; lone surrogates decode to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        b => return Err(format!("bad escape '\\{}'", b as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| "bad utf-8".to_string())?;
                    let c = text.chars().next().ok_or_else(|| "empty".to_string())?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_objects() {
        let src = r#"{"ev":"round","round":3,"bits":128,"ok":true,"x":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_json(), src);
        assert_eq!(v.get("round").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ev").unwrap().as_str(), Some("round"));
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd".to_string());
        let enc = v.to_json();
        assert_eq!(Json::parse(&enc).unwrap(), v);
    }

    #[test]
    fn parses_nested_arrays() {
        let v = Json::parse("[1, [2, 3], {\"k\": -4}]").unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![
                Json::Int(1),
                Json::Arr(vec![Json::Int(2), Json::Int(3)]),
                Json::Obj(vec![("k".to_string(), Json::Int(-4))]),
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // At the limit itself, parsing still works.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&over).is_err());
    }
}
