//! In-memory aggregation of a trace into a round-level profile.
//!
//! [`TraceProfile::from_events`] folds an event stream (from a
//! [`MemoryTracer`](super::MemoryTracer) or a decoded JSONL file) into
//! the quantities the paper reasons about: per-round message/bit rows
//! grouped by phase, log-bucketed per-round histograms, per-edge
//! totals with a top-k "hottest edges" view, fault and reliability
//! event tallies, and a per-phase timing breakdown.

use std::collections::BTreeMap;

use rwbc_graph::NodeId;

use super::TraceEvent;

// The shared log-bucketed histogram now lives with the live-metrics
// types; re-exported here so trace-oriented callers keep their path.
pub use crate::metrics::LogHistogram;

/// One phase occurrence (between a `PhaseStart` and its `PhaseEnd`),
/// or the implicit `run` phase for events outside any span.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Phase name.
    pub name: String,
    /// Simulated rounds reported by the closing `PhaseEnd` (or rounds
    /// observed, for an implicit/unterminated phase).
    pub rounds: usize,
    /// Wall-clock duration in microseconds (0 if never closed).
    pub elapsed_us: u64,
    /// Messages committed while the phase was open.
    pub messages: u64,
    /// Bits committed while the phase was open.
    pub bits: u64,
    /// Cut-crossing bits committed while the phase was open.
    pub cut_bits: u64,
}

/// One round's aggregates, tagged with the phase it ran under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSample {
    /// Index into [`TraceProfile::phases`].
    pub phase: usize,
    /// Round number within the phase's simulator run.
    pub round: usize,
    /// Messages committed.
    pub messages: u64,
    /// Bits committed.
    pub bits: u64,
    /// Cut-crossing messages.
    pub cut_messages: u64,
    /// Cut-crossing bits.
    pub cut_bits: u64,
    /// Messages lost this round (all drop reasons).
    pub dropped: u64,
    /// Retransmissions sent this round.
    pub retransmissions: u64,
    /// Dead links declared this round.
    pub dead_links: u64,
}

/// Lifetime totals for one edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeTotal {
    /// Total messages over the direction.
    pub messages: u64,
    /// Total bits over the direction.
    pub bits: u64,
    /// Largest single-round bit load observed.
    pub max_bits_round: u64,
    /// Whether the edge crosses the metered cut.
    pub cut: bool,
}

/// Event-class tallies over the whole trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventTotals {
    /// `Dropped` events.
    pub dropped: u64,
    /// `Duplicated` events.
    pub duplicated: u64,
    /// `Delayed` events.
    pub delayed: u64,
    /// `NodeDown` events.
    pub node_down: u64,
    /// `NodeUp` events.
    pub node_up: u64,
    /// `Retransmission` events.
    pub retransmissions: u64,
    /// `DuplicateSuppressed` events.
    pub duplicates_suppressed: u64,
    /// `DeadLinkDeclared` events.
    pub dead_links: u64,
    /// `Corrupted` events (messages mangled in flight but delivered).
    pub corrupted: u64,
    /// `CorruptFrameDetected` events (checksummed frames caught and
    /// discarded by the delivery layer).
    pub corrupt_frames_detected: u64,
}

/// The aggregated view of one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceProfile {
    /// Schema version from the `meta` header (0 if absent).
    pub schema: u64,
    /// Phase occurrences in order of appearance.
    pub phases: Vec<PhaseProfile>,
    /// Per-round rows in emission order.
    pub rounds: Vec<RoundSample>,
    /// Per-edge-direction lifetime totals.
    pub edges: BTreeMap<(NodeId, NodeId), EdgeTotal>,
    /// Histogram of per-round bit totals.
    pub bits_per_round: LogHistogram,
    /// Histogram of per-round message totals.
    pub messages_per_round: LogHistogram,
    /// Whole-trace event tallies.
    pub totals: EventTotals,
    /// Total events folded (including `meta`).
    pub events: u64,
}

impl TraceProfile {
    /// Folds an event stream into a profile.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> TraceProfile {
        let mut p = TraceProfile::default();
        // Events between a PhaseStart and its PhaseEnd belong to that
        // occurrence; anything outside lands in an implicit "run"
        // phase created on demand.
        let mut open: Option<usize> = None;
        let mut round_dropped = 0u64;
        let mut round_retrans = 0u64;
        let mut round_dead = 0u64;
        for event in events {
            p.events += 1;
            match event {
                TraceEvent::Meta { schema } => p.schema = *schema,
                TraceEvent::PhaseStart { name } => {
                    p.phases.push(PhaseProfile {
                        name: name.clone(),
                        rounds: 0,
                        elapsed_us: 0,
                        messages: 0,
                        bits: 0,
                        cut_bits: 0,
                    });
                    open = Some(p.phases.len() - 1);
                }
                TraceEvent::PhaseEnd {
                    name,
                    rounds,
                    elapsed_us,
                } => {
                    if let Some(i) = open.take() {
                        let phase = &mut p.phases[i];
                        if phase.name == *name {
                            phase.rounds = *rounds;
                            phase.elapsed_us = *elapsed_us;
                        }
                    }
                }
                TraceEvent::Round {
                    round,
                    messages,
                    bits,
                    cut_messages,
                    cut_bits,
                } => {
                    let phase = p.current_phase(&mut open);
                    {
                        let ph = &mut p.phases[phase];
                        ph.messages += messages;
                        ph.bits += bits;
                        ph.cut_bits += cut_bits;
                        ph.rounds = ph.rounds.max(*round);
                    }
                    p.bits_per_round.add(*bits);
                    p.messages_per_round.add(*messages);
                    p.rounds.push(RoundSample {
                        phase,
                        round: *round,
                        messages: *messages,
                        bits: *bits,
                        cut_messages: *cut_messages,
                        cut_bits: *cut_bits,
                        dropped: round_dropped,
                        retransmissions: round_retrans,
                        dead_links: round_dead,
                    });
                    round_dropped = 0;
                    round_retrans = 0;
                    round_dead = 0;
                }
                TraceEvent::EdgeTraffic {
                    from,
                    to,
                    messages,
                    bits,
                    cut,
                    ..
                } => {
                    let entry = p.edges.entry((*from, *to)).or_default();
                    entry.messages += *messages as u64;
                    entry.bits += *bits as u64;
                    entry.max_bits_round = entry.max_bits_round.max(*bits as u64);
                    entry.cut = *cut;
                }
                TraceEvent::Dropped { .. } => {
                    p.totals.dropped += 1;
                    round_dropped += 1;
                }
                TraceEvent::Duplicated { .. } => p.totals.duplicated += 1,
                TraceEvent::Delayed { .. } => p.totals.delayed += 1,
                TraceEvent::NodeDown { .. } => p.totals.node_down += 1,
                TraceEvent::NodeUp { .. } => p.totals.node_up += 1,
                TraceEvent::Retransmission { .. } => {
                    p.totals.retransmissions += 1;
                    round_retrans += 1;
                }
                TraceEvent::DuplicateSuppressed { .. } => p.totals.duplicates_suppressed += 1,
                TraceEvent::DeadLinkDeclared { .. } => {
                    p.totals.dead_links += 1;
                    round_dead += 1;
                }
                TraceEvent::Corrupted { .. } => p.totals.corrupted += 1,
                TraceEvent::CorruptFrameDetected { .. } => p.totals.corrupt_frames_detected += 1,
                TraceEvent::App { .. } => {}
            }
        }
        p
    }

    /// Index of the currently open phase, creating the implicit `run`
    /// phase if no span is open.
    fn current_phase(&mut self, open: &mut Option<usize>) -> usize {
        match open {
            Some(i) => *i,
            None => {
                self.phases.push(PhaseProfile {
                    name: "run".to_string(),
                    rounds: 0,
                    elapsed_us: 0,
                    messages: 0,
                    bits: 0,
                    cut_bits: 0,
                });
                let i = self.phases.len() - 1;
                *open = Some(i);
                i
            }
        }
    }

    /// Total messages across all phases.
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.messages).sum()
    }

    /// Total bits across all phases.
    pub fn total_bits(&self) -> u64 {
        self.phases.iter().map(|p| p.bits).sum()
    }

    /// The `k` edge directions carrying the most bits, descending.
    /// Ties break toward the smaller `(from, to)` pair, so the ranking
    /// is deterministic.
    pub fn hottest_edges(&self, k: usize) -> Vec<((NodeId, NodeId), EdgeTotal)> {
        let mut all: Vec<((NodeId, NodeId), EdgeTotal)> =
            self.edges.iter().map(|(&e, &t)| (e, t)).collect();
        all.sort_by(|a, b| b.1.bits.cmp(&a.1.bits).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Per-round `(phase name, round, cut_bits)` rows for phases that
    /// metered a cut — the lower-bound "bits across the cut" curve.
    pub fn cut_timeline(&self) -> Vec<(&str, usize, u64)> {
        self.rounds
            .iter()
            .filter(|r| r.cut_bits > 0 || r.cut_messages > 0)
            .map(|r| (self.phases[r.phase].name.as_str(), r.round, r.cut_bits))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.add(v);
        }
        assert_eq!(h.samples(), 8);
        assert_eq!(h.max(), 1024);
        let buckets = h.buckets();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (1024, 2047, 1),
            ]
        );
    }

    #[test]
    fn profile_groups_rounds_by_phase() {
        let events = vec![
            TraceEvent::Meta { schema: 1 },
            TraceEvent::PhaseStart {
                name: "walk".to_string(),
            },
            TraceEvent::Retransmission {
                round: 1,
                node: 0,
                peer: 1,
                seq: 0,
            },
            TraceEvent::Round {
                round: 1,
                messages: 4,
                bits: 96,
                cut_messages: 1,
                cut_bits: 24,
            },
            TraceEvent::Round {
                round: 2,
                messages: 2,
                bits: 48,
                cut_messages: 0,
                cut_bits: 0,
            },
            TraceEvent::PhaseEnd {
                name: "walk".to_string(),
                rounds: 2,
                elapsed_us: 10,
            },
        ];
        let p = TraceProfile::from_events(&events);
        assert_eq!(p.schema, 1);
        assert_eq!(p.phases.len(), 1);
        assert_eq!(p.phases[0].name, "walk");
        assert_eq!(p.phases[0].rounds, 2);
        assert_eq!(p.phases[0].messages, 6);
        assert_eq!(p.phases[0].bits, 144);
        assert_eq!(p.rounds.len(), 2);
        assert_eq!(p.rounds[0].retransmissions, 1);
        assert_eq!(p.rounds[1].retransmissions, 0);
        assert_eq!(p.cut_timeline(), vec![("walk", 1, 24)]);
    }

    #[test]
    fn profile_invents_run_phase_for_bare_traces() {
        let events = vec![TraceEvent::Round {
            round: 1,
            messages: 1,
            bits: 8,
            cut_messages: 0,
            cut_bits: 0,
        }];
        let p = TraceProfile::from_events(&events);
        assert_eq!(p.phases.len(), 1);
        assert_eq!(p.phases[0].name, "run");
        assert_eq!(p.total_bits(), 8);
    }

    #[test]
    fn hottest_edges_rank_deterministically() {
        let events = vec![
            TraceEvent::EdgeTraffic {
                round: 1,
                from: 0,
                to: 1,
                messages: 1,
                bits: 10,
                cut: false,
            },
            TraceEvent::EdgeTraffic {
                round: 2,
                from: 2,
                to: 3,
                messages: 1,
                bits: 10,
                cut: false,
            },
            TraceEvent::EdgeTraffic {
                round: 2,
                from: 0,
                to: 1,
                messages: 1,
                bits: 30,
                cut: false,
            },
        ];
        let p = TraceProfile::from_events(&events);
        let top = p.hottest_edges(2);
        assert_eq!(top[0].0, (0, 1));
        assert_eq!(top[0].1.bits, 40);
        assert_eq!(top[0].1.max_bits_round, 30);
        assert_eq!(top[1].0, (2, 3));
    }
}
