use rand::rngs::StdRng;
use rand::Rng;

use crate::fault::CorruptionKind;
use crate::wire::Crc32;

/// A message that can travel over a CONGEST edge.
///
/// Implementors declare how many bits they occupy on the wire; the
/// [`Simulator`] charges this against the per-edge budget
/// `B(n) = bandwidth_coeff · ⌈log₂ n⌉` every round. The paper's Theorem 4
/// ("our algorithms satisfy the CONGEST model") is checked *mechanically*
/// by running under [`ViolationPolicy::Strict`].
///
/// The [`wire`] module provides a concrete bit-exact encoder so that
/// declared sizes can be validated against real encodings in tests.
///
/// [`Simulator`]: crate::Simulator
/// [`ViolationPolicy::Strict`]: crate::ViolationPolicy::Strict
/// [`wire`]: crate::wire
pub trait Message: Clone + Send + Sync + 'static {
    /// Number of bits this message occupies on an edge of a network with
    /// `n` nodes.
    fn bit_size(&self, n: usize) -> usize;

    /// Feeds this message's wire content into an integrity checksum.
    ///
    /// Used by checksummed delivery layers
    /// ([`Reliable::with_checksums`](crate::Reliable::with_checksums)) to
    /// seal and verify frames. The default digests only the declared bit
    /// size, which catches size-changing corruption (truncation, garbage
    /// of a different length) but **not** in-place value flips — any type
    /// that overrides [`Message::corrupted`] to mutate values in place
    /// must override this too, covering every bit the mutation can touch.
    fn digest(&self, n: usize, crc: &mut Crc32) {
        crc.update_u64(self.bit_size(n) as u64);
    }

    /// Returns a fault-mangled variant of this message, or `None` when
    /// the damage leaves nothing a receiver could parse (the engine then
    /// counts the message as corrupted *and* dropped — undecodable bytes
    /// and lost bytes are indistinguishable to the receiver).
    ///
    /// The default destroys the frame for every [`CorruptionKind`]. Types
    /// with a real wire encoding should override this with a
    /// structure-aware mutation (encode, mangle, re-decode) so corruption
    /// exercises the receiver's decode path instead of vanishing.
    ///
    /// Determinism contract: implementations draw only from `rng`, which
    /// the engine advances in deterministic message order.
    fn corrupted(&self, kind: CorruptionKind, n: usize, rng: &mut StdRng) -> Option<Self> {
        let _ = (kind, n, rng);
        None
    }
}

/// Bits needed to address a node in a network of `n` nodes: `⌈log₂ n⌉`
/// (minimum 1).
///
/// # Example
///
/// ```
/// use congest_sim::bits_for_node_id;
/// assert_eq!(bits_for_node_id(1024), 10);
/// assert_eq!(bits_for_node_id(1000), 10);
/// assert_eq!(bits_for_node_id(2), 1);
/// ```
pub fn bits_for_node_id(n: usize) -> usize {
    crate::config::log2_ceil(n).max(1)
}

/// Bits needed to transmit an integer in `0..=max_value`.
///
/// # Example
///
/// ```
/// use congest_sim::bits_for_count;
/// assert_eq!(bits_for_count(0), 1);
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(255), 8);
/// assert_eq!(bits_for_count(256), 9);
/// ```
pub fn bits_for_count(max_value: u64) -> usize {
    if max_value <= 1 {
        1
    } else {
        (u64::BITS - max_value.leading_zeros()) as usize
    }
}

impl Message for u64 {
    fn bit_size(&self, _n: usize) -> usize {
        bits_for_count(*self)
    }

    fn digest(&self, _n: usize, crc: &mut Crc32) {
        crc.update_u64(*self);
    }

    fn corrupted(&self, kind: CorruptionKind, _n: usize, rng: &mut StdRng) -> Option<u64> {
        let width = bits_for_count(*self);
        match kind {
            // Invert one bit within the value's wire width.
            CorruptionKind::BitFlip => Some(*self ^ (1 << rng.gen_range(0..width))),
            // A truncated frame keeps only a prefix of the MSB-first
            // encoding: the low-order tail is lost.
            CorruptionKind::Truncate => {
                let keep = rng.gen_range(0..width);
                Some(if keep == 0 {
                    0
                } else {
                    *self >> (width - keep)
                })
            }
            // Garbage of the same width.
            CorruptionKind::Garbage => Some(rng.gen_range(0..u64::MAX) & mask(width)),
        }
    }
}

/// Low `width` bits set (width in `1..=64`).
fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl Message for () {
    /// A pure "pulse" still costs one bit on the wire.
    fn bit_size(&self, _n: usize) -> usize {
        1
    }

    fn digest(&self, _n: usize, crc: &mut Crc32) {
        crc.update_bits(1, 1);
    }

    // A mangled 1-bit pulse is unparseable; the default (destroy) applies.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_match_log() {
        assert_eq!(bits_for_node_id(1), 1);
        assert_eq!(bits_for_node_id(2), 1);
        assert_eq!(bits_for_node_id(3), 2);
        assert_eq!(bits_for_node_id(16), 4);
        assert_eq!(bits_for_node_id(17), 5);
    }

    #[test]
    fn count_bits_match_binary_length() {
        assert_eq!(bits_for_count(2), 2);
        assert_eq!(bits_for_count(7), 3);
        assert_eq!(bits_for_count(8), 4);
        assert_eq!(bits_for_count(u64::MAX), 64);
    }

    #[test]
    fn primitive_impls() {
        assert_eq!(Message::bit_size(&(), 100), 1);
        assert_eq!(Message::bit_size(&42u64, 100), 6);
    }

    #[test]
    fn default_corruption_destroys_the_frame() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for kind in CorruptionKind::ALL {
            assert_eq!(Message::corrupted(&(), kind, 16, &mut rng), None);
        }
    }

    #[test]
    fn u64_corruption_stays_within_the_wire_width() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let value = 42u64; // 6 wire bits
        for _ in 0..200 {
            for kind in CorruptionKind::ALL {
                let mangled = Message::corrupted(&value, kind, 16, &mut rng)
                    .expect("u64 corruption always parses");
                assert!(mangled < 64, "{kind:?} escaped the 6-bit width: {mangled}");
                if kind == CorruptionKind::BitFlip {
                    assert_ne!(mangled, value, "a bit flip must change the value");
                }
            }
        }
        // Full-width values do not overflow the mask/shift arithmetic.
        for _ in 0..50 {
            for kind in CorruptionKind::ALL {
                Message::corrupted(&u64::MAX, kind, 16, &mut rng).unwrap();
            }
        }
    }

    #[test]
    fn digests_separate_different_values() {
        let d = |v: u64| {
            let mut crc = Crc32::new();
            v.digest(100, &mut crc);
            crc.finish()
        };
        assert_ne!(d(42), d(43));
        assert_eq!(d(42), d(42));
    }
}
