/// A message that can travel over a CONGEST edge.
///
/// Implementors declare how many bits they occupy on the wire; the
/// [`Simulator`] charges this against the per-edge budget
/// `B(n) = bandwidth_coeff · ⌈log₂ n⌉` every round. The paper's Theorem 4
/// ("our algorithms satisfy the CONGEST model") is checked *mechanically*
/// by running under [`ViolationPolicy::Strict`].
///
/// The [`wire`] module provides a concrete bit-exact encoder so that
/// declared sizes can be validated against real encodings in tests.
///
/// [`Simulator`]: crate::Simulator
/// [`ViolationPolicy::Strict`]: crate::ViolationPolicy::Strict
/// [`wire`]: crate::wire
pub trait Message: Clone + Send + Sync + 'static {
    /// Number of bits this message occupies on an edge of a network with
    /// `n` nodes.
    fn bit_size(&self, n: usize) -> usize;
}

/// Bits needed to address a node in a network of `n` nodes: `⌈log₂ n⌉`
/// (minimum 1).
///
/// # Example
///
/// ```
/// use congest_sim::bits_for_node_id;
/// assert_eq!(bits_for_node_id(1024), 10);
/// assert_eq!(bits_for_node_id(1000), 10);
/// assert_eq!(bits_for_node_id(2), 1);
/// ```
pub fn bits_for_node_id(n: usize) -> usize {
    crate::config::log2_ceil(n).max(1)
}

/// Bits needed to transmit an integer in `0..=max_value`.
///
/// # Example
///
/// ```
/// use congest_sim::bits_for_count;
/// assert_eq!(bits_for_count(0), 1);
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(255), 8);
/// assert_eq!(bits_for_count(256), 9);
/// ```
pub fn bits_for_count(max_value: u64) -> usize {
    if max_value <= 1 {
        1
    } else {
        (u64::BITS - max_value.leading_zeros()) as usize
    }
}

impl Message for u64 {
    fn bit_size(&self, _n: usize) -> usize {
        bits_for_count(*self)
    }
}

impl Message for () {
    /// A pure "pulse" still costs one bit on the wire.
    fn bit_size(&self, _n: usize) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_match_log() {
        assert_eq!(bits_for_node_id(1), 1);
        assert_eq!(bits_for_node_id(2), 1);
        assert_eq!(bits_for_node_id(3), 2);
        assert_eq!(bits_for_node_id(16), 4);
        assert_eq!(bits_for_node_id(17), 5);
    }

    #[test]
    fn count_bits_match_binary_length() {
        assert_eq!(bits_for_count(2), 2);
        assert_eq!(bits_for_count(7), 3);
        assert_eq!(bits_for_count(8), 4);
        assert_eq!(bits_for_count(u64::MAX), 64);
    }

    #[test]
    fn primitive_impls() {
        assert_eq!(Message::bit_size(&(), 100), 1);
        assert_eq!(Message::bit_size(&42u64, 100), 6);
    }
}
