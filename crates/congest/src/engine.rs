use std::collections::HashSet;

use rand::rngs::StdRng;

use rwbc_graph::{Graph, NodeId};

use crate::config::ViolationPolicy;
use crate::fault::{CorruptionKind, FaultPlan};
use crate::metrics::EngineMetrics;
use crate::node::{Context, Incoming};
use crate::rng::node_rng;
use crate::stats::ordered;
use crate::trace::{DropReason, TraceEvent, Tracer};
use crate::wire::{crc32, BitReader, BitWriter, WireState};
use crate::{Message, NodeProgram, RunStats, SimConfig, SimError};

/// Magic word opening every checkpoint image.
/// Per-node outgoing `(destination, message)` buffers for one round.
type Outboxes<M> = Vec<Vec<(NodeId, M)>>;

const CHECKPOINT_MAGIC: u64 = 0xC4EC_5A7E;
/// Bumped whenever the checkpoint layout changes incompatibly. Version
/// 2 added [`RunStats::peak_edge`]; version 3 added the corruption
/// counters and reframed the body into CRC-guarded sections (see
/// [`Simulator::checkpoint`]). Version-1 and version-2 images still
/// restore through dedicated legacy decode paths.
const CHECKPOINT_VERSION: u64 = 3;
/// Oldest checkpoint version [`Simulator::restore`] still accepts.
const CHECKPOINT_MIN_VERSION: u64 = 1;
/// First checkpoint version with CRC-guarded sections.
const CHECKPOINT_SECTIONED_VERSION: u64 = 3;

/// Renders a worker panic payload for [`SimError::WorkerPanic`]. Panics
/// raised via `panic!("..")` carry `&str` or `String`; anything else is
/// opaque and rendered as a placeholder.
fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// The synchronous CONGEST round engine.
///
/// Owns one [`NodeProgram`] per node and drives them in lockstep. See the
/// crate docs for the model and an example.
///
/// The engine is deterministic: a fixed `(graph, config.seed, program)`
/// triple replays the identical execution, bit for bit, regardless of the
/// configured thread count.
#[derive(Debug)]
pub struct Simulator<'g, P: NodeProgram> {
    graph: &'g Graph,
    config: SimConfig,
    programs: Vec<P>,
    rngs: Vec<StdRng>,
    /// Messages to be delivered at the start of the next round.
    pending: Vec<Vec<Incoming<P::Msg>>>,
    /// Messages held back one round by fault-injected delay; they join
    /// `pending` at the next step and are delivered the round after.
    delayed: Vec<Vec<Incoming<P::Msg>>>,
    /// Double buffer for `pending`: each step swaps the two, delivers
    /// from this side, and clears it (keeping capacity), so steady-state
    /// rounds allocate no inbox storage at all. Always empty between
    /// steps — checkpoints never see it.
    inboxes: Vec<Vec<Incoming<P::Msg>>>,
    /// Persistent per-node outgoing buffers, drained by `commit` each
    /// round and reused. Always empty between steps.
    outboxes: Outboxes<P::Msg>,
    /// Commit scratch: one `(destination, count, bits)` entry per
    /// per-edge-direction message group of the sender being committed.
    group_scratch: Vec<(NodeId, usize, usize)>,
    /// The worker count the round loop actually uses:
    /// [`SimConfig::effective_threads`] evaluated once for this graph.
    /// 1 means every round runs sequentially.
    effective_threads: usize,
    /// Per-sender `(destination, count, bits)` groups computed by wave 1
    /// of the parallel commit fan-out and read by the accounting spine.
    /// Persistent scratch — refilled each parallel round, empty (or
    /// stale-but-about-to-be-cleared) between rounds, never
    /// checkpointed.
    sender_groups: Vec<Vec<(NodeId, usize, usize)>>,
    /// Per-worker scatter arenas (`workers × n` destination columns):
    /// wave 1 moves each worker's outgoing messages into its own arena,
    /// and the merge wave splices column `to` of every arena into
    /// `pending[to]` in worker order — ascending worker index is
    /// ascending sender range, so delivery order is bit-identical to a
    /// sequential commit. Only used when the fault plan consumes no
    /// per-message randomness; persistent scratch, empty between
    /// rounds.
    worker_inboxes: Vec<Vec<Vec<Incoming<P::Msg>>>>,
    /// Route delivery through the pre-optimization reference
    /// implementation (testing only; see
    /// [`Simulator::with_reference_delivery`]).
    reference_delivery: bool,
    in_flight: usize,
    stats: RunStats,
    round: usize,
    started: bool,
    cut_set: HashSet<(NodeId, NodeId)>,
    /// Dedicated RNG for fault injection, independent of node coins. Only
    /// consulted when a probabilistic fault is enabled, so an empty
    /// [`FaultPlan`](crate::FaultPlan) replays fault-free traces exactly.
    fault_rng: StdRng,
    /// Optional event sink. `None` (the default) keeps every tracing
    /// hook behind a single branch, so untraced runs construct no
    /// events at all and stay bit-identical to pre-tracing builds.
    tracer: Option<&'g mut dyn Tracer>,
    /// Optional live-metrics handles, updated once per committed round
    /// on the single-threaded commit spine — so metric *content* is
    /// thread-count-invariant exactly like the trace stream. `None`
    /// keeps the hot path branch-free apart from a single check.
    metrics: Option<EngineMetrics>,
    /// Per-node buffers for program-emitted events; drained in node
    /// order each round so traces are thread-count independent. Empty
    /// unless a tracer is attached.
    node_trace: Vec<Vec<TraceEvent>>,
    /// Last observed crash state per node, for emitting
    /// [`TraceEvent::NodeDown`]/[`TraceEvent::NodeUp`] transitions.
    /// Populated lazily and only when traced.
    crashed_prev: Vec<bool>,
}

impl<'g, P> Simulator<'g, P>
where
    P: NodeProgram + Send,
    P::Msg: Message,
{
    /// Creates a simulator, instantiating one program per node via
    /// `factory(node_id)`.
    pub fn new(graph: &'g Graph, config: SimConfig, mut factory: impl FnMut(NodeId) -> P) -> Self {
        let n = graph.node_count();
        let programs: Vec<P> = (0..n).map(&mut factory).collect();
        let rngs: Vec<StdRng> = (0..n).map(|v| node_rng(config.seed, v)).collect();
        let cut_set: HashSet<(NodeId, NodeId)> =
            config.cut.iter().map(|&(u, v)| ordered(u, v)).collect();
        let effective_threads = config.effective_threads(n);
        let stats = RunStats {
            budget_bits: config.budget_bits(n),
            effective_threads,
            granularity: config.granularity.max(1),
            ..RunStats::default()
        };
        let fault_rng = node_rng(config.seed ^ 0xFA_17, usize::MAX / 2);
        Simulator {
            graph,
            config,
            programs,
            rngs,
            pending: (0..n).map(|_| Vec::new()).collect(),
            delayed: (0..n).map(|_| Vec::new()).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            outboxes: (0..n).map(|_| Vec::new()).collect(),
            group_scratch: Vec::new(),
            effective_threads,
            sender_groups: Vec::new(),
            worker_inboxes: Vec::new(),
            reference_delivery: false,
            in_flight: 0,
            stats,
            round: 0,
            started: false,
            cut_set,
            fault_rng,
            tracer: None,
            metrics: None,
            node_trace: Vec::new(),
            crashed_prev: Vec::new(),
        }
    }

    /// Routes delivery through the pre-optimization reference
    /// implementation (per-group allocation, no buffer reuse). The
    /// observable execution — stats, traces, checkpoints, RNG streams —
    /// is identical to the fast path; only allocation behavior differs.
    /// Exists so the test suite can A/B the two paths; not useful
    /// otherwise.
    #[doc(hidden)]
    pub fn with_reference_delivery(mut self, reference: bool) -> Self {
        self.reference_delivery = reference;
        self
    }

    /// Attaches a [`Tracer`] that will receive the run's event stream.
    /// The event sequence is deterministic at any thread count (see the
    /// [`trace`](crate::trace) module docs); only wall-clock fields in
    /// driver-emitted spans vary between replays. Tracing never alters
    /// the simulation: statistics and checkpoints are bit-identical
    /// with or without a tracer attached.
    pub fn with_tracer(mut self, tracer: &'g mut dyn Tracer) -> Self {
        self.node_trace = (0..self.graph.node_count()).map(|_| Vec::new()).collect();
        self.tracer = Some(tracer);
        self
    }

    /// Attaches live-metrics handles (see [`EngineMetrics`]). Updates
    /// happen once per committed round on the commit spine: the rounds
    /// counter advances per round, message/bit counters by that round's
    /// committed totals, and the inbox-depth gauge is set to the number
    /// of messages in flight into the next round. Like tracing, metrics
    /// never alter the simulation.
    pub fn with_metrics(mut self, metrics: EngineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches (or replaces) live-metrics handles in place — the
    /// post-[`restore`](Simulator::restore) form of
    /// [`Simulator::with_metrics`].
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        self.metrics = Some(metrics);
    }

    /// The simulated graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Read access to node `v`'s program (e.g. to harvest results).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn program(&self, v: NodeId) -> &P {
        &self.programs[v]
    }

    /// All node programs, indexed by node id.
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether every program has terminated and no messages are in flight.
    /// Nodes that are crashed with no scheduled recovery can never report
    /// termination themselves and are treated as terminated.
    pub fn is_finished(&self) -> bool {
        self.in_flight == 0
            && self.programs.iter().enumerate().all(|(v, p)| {
                p.is_terminated() || self.config.faults.node_permanently_down(v, self.round)
            })
    }

    /// Executes a single round (running `on_start` first if needed).
    /// Returns `true` when the system has globally terminated.
    ///
    /// # Errors
    ///
    /// Propagates CONGEST violations under the strict policy, sends to
    /// non-neighbors, and the round cap.
    pub fn step(&mut self) -> Result<bool, SimError> {
        if !self.started {
            self.started = true;
            self.trace_crash_transitions(0);
            let mut outboxes = std::mem::take(&mut self.outboxes);
            for (v, (outbox, rng)) in outboxes.iter_mut().zip(&mut self.rngs).enumerate() {
                if self.config.faults.node_crashed(v, 0) {
                    self.stats.crashed_node_rounds += 1;
                    continue;
                }
                let mut ctx = Context::new(v, self.graph, rng, 0, outbox)
                    .with_trace(self.node_trace.get_mut(v));
                self.programs[v].on_start(&mut ctx);
            }
            self.drain_node_trace();
            let committed = self.commit(&mut outboxes);
            self.outboxes = outboxes;
            committed?;
            if self.is_finished() {
                return Ok(true);
            }
        }
        if self.round >= self.config.max_rounds {
            return Err(SimError::RoundBudgetExceeded {
                limit: self.config.max_rounds,
            });
        }
        self.round += 1;
        self.stats.rounds = self.round;
        self.trace_crash_transitions(self.round);

        let n = self.graph.node_count();
        // Swap in the double buffer: this round delivers out of
        // `inboxes` (last round's `pending`), while `pending` becomes
        // the emptied buffers from two rounds ago — capacity intact, so
        // a steady-state round allocates no inbox storage.
        std::mem::swap(&mut self.pending, &mut self.inboxes);
        // Delayed traffic joins the next delivery wave; everything still
        // undelivered after this swap is exactly the delayed backlog.
        self.in_flight = 0;
        for (pending, delayed) in self.pending.iter_mut().zip(&mut self.delayed) {
            self.in_flight += delayed.len();
            pending.append(delayed);
        }
        // A crashed receiver loses everything delivered while it is down.
        if !self.config.faults.crashes.is_empty() {
            for (v, inbox) in self.inboxes.iter_mut().enumerate() {
                if self.config.faults.node_crashed(v, self.round) && !inbox.is_empty() {
                    self.stats.dropped += inbox.len() as u64;
                    if let Some(tr) = self.tracer.as_deref_mut() {
                        for m in inbox.iter() {
                            tr.record(&TraceEvent::Dropped {
                                round: self.round,
                                from: m.from,
                                to: v,
                                reason: DropReason::ReceiverCrashed,
                            });
                        }
                    }
                    inbox.clear();
                }
            }
        }
        for inbox in &mut self.inboxes {
            // Delivery order must be by ascending sender. Clean commits
            // already fill inboxes in that order (senders are committed
            // 0..n); only delayed arrivals break it, so the (allocating,
            // stable) sort usually short-circuits here.
            if !inbox.windows(2).all(|w| w[0].from <= w[1].from) {
                inbox.sort_by_key(|m| m.from);
            }
        }

        if !self.config.faults.crashes.is_empty() {
            for v in 0..n {
                if self.config.faults.node_crashed(v, self.round) {
                    self.stats.crashed_node_rounds += 1;
                }
            }
        }

        // Both buffer sets are moved out for the duration of the round
        // (the borrow checker cannot see that `programs`/`stats` and the
        // buffers are disjoint fields) and moved back — empty but with
        // their capacity — before returning, so every round reuses them.
        let inboxes = std::mem::take(&mut self.inboxes);
        let mut outboxes = std::mem::take(&mut self.outboxes);
        let committed = if self.effective_threads <= 1 {
            self.run_round_sequential(&inboxes, &mut outboxes);
            self.drain_node_trace();
            self.commit(&mut outboxes)
        } else if self.reference_delivery {
            // A/B testing path: compute the round in parallel, then
            // deliver through the reference implementation on the spine.
            self.run_round_parallel_compute(&inboxes, &mut outboxes)
                .and_then(|()| {
                    self.drain_node_trace();
                    self.commit(&mut outboxes)
                })
        } else {
            self.run_round_parallel(&inboxes, &mut outboxes)
        };
        self.inboxes = inboxes;
        for inbox in &mut self.inboxes {
            let used = inbox.len();
            inbox.clear();
            shrink_after_burst(inbox, used);
        }
        self.outboxes = outboxes;
        committed?;
        Ok(self.is_finished())
    }

    /// Forwards buffered program-emitted events to the tracer in
    /// ascending node order — the step that makes node-originated
    /// events independent of the worker-thread layout.
    fn drain_node_trace(&mut self) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            for buf in &mut self.node_trace {
                for ev in buf.drain(..) {
                    tr.record(&ev);
                }
            }
        }
    }

    /// Emits crash-state transitions for round `round`. Cheap no-op for
    /// untraced runs and crash-free fault plans.
    fn trace_crash_transitions(&mut self, round: usize) {
        if self.tracer.is_none() || self.config.faults.crashes.is_empty() {
            return;
        }
        let n = self.graph.node_count();
        if self.crashed_prev.len() != n {
            self.crashed_prev = vec![false; n];
        }
        for v in 0..n {
            let now = self.config.faults.node_crashed(v, round);
            if now != self.crashed_prev[v] {
                self.crashed_prev[v] = now;
                let event = if now {
                    TraceEvent::NodeDown { round, node: v }
                } else {
                    TraceEvent::NodeUp { round, node: v }
                };
                if let Some(tr) = self.tracer.as_deref_mut() {
                    tr.record(&event);
                }
            }
        }
    }

    /// Runs rounds until global termination.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        loop {
            if self.step()? {
                self.fold_reliability_stats();
                // The engine's only stats clone: once per *run*, at
                // termination. All per-round paths mutate `self.stats`
                // in place.
                return Ok(self.stats.clone());
            }
        }
    }

    /// Folds per-node delivery-layer counters (if the programs report any)
    /// into the run statistics. `delivery_overhead_rounds` is only
    /// meaningful when every node runs behind a delivery layer: it is the
    /// tail of the run after the last application-level activity anywhere
    /// in the network — rounds spent purely on acks and retransmissions.
    fn fold_reliability_stats(&mut self) {
        self.stats.retransmissions = 0;
        self.stats.duplicates_suppressed = 0;
        self.stats.dead_links_declared = 0;
        self.stats.undeliverable_messages = 0;
        self.stats.corrupt_frames_detected = 0;
        let mut last_active = 0usize;
        let mut all_reported = true;
        for p in &self.programs {
            match p.reliability_stats() {
                Some(rs) => {
                    self.stats.retransmissions += rs.retransmissions;
                    self.stats.duplicates_suppressed += rs.duplicates_suppressed;
                    self.stats.dead_links_declared += rs.dead_links_declared;
                    self.stats.undeliverable_messages += rs.undeliverable_messages;
                    self.stats.corrupt_frames_detected += rs.corrupt_frames_detected;
                    last_active = last_active.max(rs.inner_last_active_round.unwrap_or(0));
                }
                None => all_reported = false,
            }
        }
        if all_reported {
            self.stats.delivery_overhead_rounds = self.round.saturating_sub(last_active) as u64;
        }
    }

    fn run_round_sequential(
        &mut self,
        inboxes: &[Vec<Incoming<P::Msg>>],
        outboxes: &mut Outboxes<P::Msg>,
    ) {
        let n = self.graph.node_count();
        for v in 0..n {
            if self.config.faults.node_crashed(v, self.round) {
                continue;
            }
            let mut ctx = Context::new(
                v,
                self.graph,
                &mut self.rngs[v],
                self.round,
                &mut outboxes[v],
            )
            .with_trace(self.node_trace.get_mut(v));
            self.programs[v].on_round(&mut ctx, &inboxes[v]);
        }
    }

    /// Runs one round's node programs across worker threads *without*
    /// touching delivery — the compute half of the old parallel path,
    /// kept for the reference-delivery A/B harness: after it returns,
    /// the spine commits through [`Simulator::commit_reference`]
    /// exactly as a sequential run would.
    fn run_round_parallel_compute(
        &mut self,
        inboxes: &[Vec<Incoming<P::Msg>>],
        outboxes: &mut Outboxes<P::Msg>,
    ) -> Result<(), SimError> {
        let n = self.graph.node_count();
        let threads = self.effective_threads;
        let chunk = n.div_ceil(threads);
        let graph = self.graph;
        let round = self.round;

        let programs = &mut self.programs;
        let rngs = &mut self.rngs;
        let faults = &self.config.faults;
        let traced = !self.node_trace.is_empty();
        let node_trace = &mut self.node_trace;
        // Every handle is joined explicitly so the whole pool drains even
        // when a worker panics; the first panic payload is captured and
        // surfaced as a structured error instead of aborting the process.
        let panicked = crossbeam::thread::scope(|scope| {
            let prog_chunks = programs.chunks_mut(chunk);
            let rng_chunks = rngs.chunks_mut(chunk);
            let out_chunks = outboxes.chunks_mut(chunk);
            let in_chunks = inboxes.chunks(chunk);
            let mut trace_chunks = node_trace.chunks_mut(chunk);
            let mut handles = Vec::new();
            for (idx, (((progs, rngs), outs), ins)) in prog_chunks
                .zip(rng_chunks)
                .zip(out_chunks)
                .zip(in_chunks)
                .enumerate()
            {
                let base = idx * chunk;
                // Workers buffer events per node; the engine drains the
                // buffers in node order afterwards, so the trace never
                // observes the thread layout. (`&mut []` is promoted to
                // 'static, covering the untraced case where
                // `node_trace` has no chunks to hand out.)
                let traces: &mut [Vec<TraceEvent>] = if traced {
                    trace_chunks
                        .next()
                        .expect("trace chunks align with program chunks")
                } else {
                    &mut []
                };
                handles.push(scope.spawn(move |_| {
                    for (offset, prog) in progs.iter_mut().enumerate() {
                        let v = base + offset;
                        if faults.node_crashed(v, round) {
                            continue;
                        }
                        let mut ctx =
                            Context::new(v, graph, &mut rngs[offset], round, &mut outs[offset])
                                .with_trace(traces.get_mut(offset));
                        prog.on_round(&mut ctx, &ins[offset]);
                    }
                }));
            }
            let mut first: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    first.get_or_insert(payload);
                }
            }
            first
        });
        match panicked {
            Ok(None) => Ok(()),
            // `&*payload` reborrows the boxed payload itself; a plain
            // `&payload` would unsize the `Box` into a fresh trait object
            // and every downcast would miss.
            Ok(Some(payload)) => Err(SimError::WorkerPanic {
                round,
                payload: panic_payload_string(&*payload),
            }),
            Err(payload) => Err(SimError::WorkerPanic {
                round,
                payload: panic_payload_string(&*payload),
            }),
        }
    }

    /// The parallel commit fan-out: one round computed, validated, and
    /// delivered with per-worker scratch and no per-round allocation in
    /// the steady state.
    ///
    /// **Wave 1** (workers, chunked by sender): run `on_round`, then
    /// sort/group/validate the node's outbox ([`prepare_outbox`]) into
    /// its persistent group scratch; when the fault plan consumes no
    /// per-message randomness, also scatter the messages into the
    /// worker's own arena ([`scatter_outbox`]).
    ///
    /// **Spine** (single-threaded, [`Simulator::commit_prepared`]):
    /// books every group in ascending-sender order — budgets, stats,
    /// cut meter, trace events, metrics, and (when per-message fault
    /// randomness is in play) the actual routing with its RNG draws —
    /// exactly the order the sequential fast path uses, which is what
    /// keeps all observable output bit-identical at any thread count.
    ///
    /// **Wave 2** (workers, chunked by destination; scatter mode only):
    /// splices arena columns into `pending` in worker order (ascending
    /// sender), overlapped with the spine — the merge touches only
    /// `pending`/arenas, the spine only stats/trace/metrics.
    ///
    /// Error paths abort the run: the first failure in ascending sender
    /// order is reported (workers stop at their first failure and are
    /// joined in chunk order), and all scratch is cleared so a caller
    /// that keeps the simulator alive can never re-commit stale sends.
    /// Side effects already applied by an aborted round (partial stats,
    /// partially merged inboxes) may differ from the sequential path's
    /// partial state; completed rounds never differ.
    fn run_round_parallel(
        &mut self,
        inboxes: &[Vec<Incoming<P::Msg>>],
        outboxes: &mut Outboxes<P::Msg>,
    ) -> Result<(), SimError> {
        let n = self.graph.node_count();
        let workers = self.effective_threads;
        let chunk = n.div_ceil(workers);
        let graph = self.graph;
        let round = self.round;
        let faults = &self.config.faults;
        // Per-message fault randomness (drops, duplicates, delays,
        // corruption) must be drawn on the spine in deterministic
        // order. Without it, delivery is a pure function of the outage
        // schedule, and wave 1 can scatter messages straight into
        // per-worker arenas.
        let scatter = !faults.uses_rng();

        if self.sender_groups.len() != n {
            self.sender_groups.resize_with(n, Vec::new);
        }
        if scatter {
            if self.worker_inboxes.len() != workers {
                self.worker_inboxes.resize_with(workers, Vec::new);
            }
            for arena in &mut self.worker_inboxes {
                if arena.len() != n {
                    arena.resize_with(n, Vec::new);
                }
            }
        }

        let wave1: Result<(), SimError> = {
            let programs = &mut self.programs;
            let rngs = &mut self.rngs;
            let traced = !self.node_trace.is_empty();
            let node_trace = &mut self.node_trace;
            let sender_groups = &mut self.sender_groups;
            let arenas = &mut self.worker_inboxes;
            let scoped = crossbeam::thread::scope(|scope| {
                let prog_chunks = programs.chunks_mut(chunk);
                let rng_chunks = rngs.chunks_mut(chunk);
                let out_chunks = outboxes.chunks_mut(chunk);
                let in_chunks = inboxes.chunks(chunk);
                let group_chunks = sender_groups.chunks_mut(chunk);
                let mut trace_chunks = node_trace.chunks_mut(chunk);
                let mut arena_iter = arenas.iter_mut();
                let mut handles = Vec::new();
                for (idx, ((((progs, rngs), outs), ins), grps)) in prog_chunks
                    .zip(rng_chunks)
                    .zip(out_chunks)
                    .zip(in_chunks)
                    .zip(group_chunks)
                    .enumerate()
                {
                    let base = idx * chunk;
                    // Workers buffer events per node; the engine drains
                    // the buffers in node order afterwards, so the trace
                    // never observes the thread layout. (`&mut []` is
                    // promoted to 'static, covering the untraced case
                    // where `node_trace` has no chunks to hand out.)
                    let traces: &mut [Vec<TraceEvent>] = if traced {
                        trace_chunks
                            .next()
                            .expect("trace chunks align with program chunks")
                    } else {
                        &mut []
                    };
                    let arena: &mut [Vec<Incoming<P::Msg>>] = if scatter {
                        arena_iter.next().expect("one arena per worker")
                    } else {
                        &mut []
                    };
                    handles.push(scope.spawn(move |_| -> Result<(), SimError> {
                        for (offset, prog) in progs.iter_mut().enumerate() {
                            let v = base + offset;
                            if !faults.node_crashed(v, round) {
                                let mut ctx = Context::new(
                                    v,
                                    graph,
                                    &mut rngs[offset],
                                    round,
                                    &mut outs[offset],
                                )
                                .with_trace(traces.get_mut(offset));
                                prog.on_round(&mut ctx, &ins[offset]);
                            }
                            // Even a crashed node's (empty) outbox goes
                            // through prepare: it clears the group
                            // scratch left by an earlier round.
                            prepare_outbox(graph, v, &mut outs[offset], &mut grps[offset])?;
                            if scatter {
                                scatter_outbox(
                                    faults,
                                    round,
                                    v,
                                    &mut outs[offset],
                                    &grps[offset],
                                    arena,
                                );
                            }
                        }
                        Ok(())
                    }));
                }
                // Join in chunk order: chunks cover ascending sender
                // ranges and each worker stops at its first failure, so
                // the failure reported is the ascending-sender-order
                // first — the same sender the sequential path would
                // blame.
                let mut first: Option<SimError> = None;
                for handle in handles {
                    match handle.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            first.get_or_insert(e);
                        }
                        Err(payload) => {
                            first.get_or_insert(SimError::WorkerPanic {
                                round,
                                payload: panic_payload_string(&*payload),
                            });
                        }
                    }
                }
                match first {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            });
            match scoped {
                Ok(result) => result,
                Err(payload) => Err(SimError::WorkerPanic {
                    round,
                    payload: panic_payload_string(&*payload),
                }),
            }
        };
        if let Err(e) = wave1 {
            self.clear_parallel_scratch(outboxes);
            return Err(e);
        }
        self.drain_node_trace();

        let groups = std::mem::take(&mut self.sender_groups);
        let result = if scatter {
            let mut pending = std::mem::take(&mut self.pending);
            let mut arenas = std::mem::take(&mut self.worker_inboxes);
            let scoped = crossbeam::thread::scope(|scope| {
                // Transpose the arenas: merge worker `i` owns
                // destination slice `i` of *every* arena, so each
                // `pending[to]` column is appended from arena 0, 1, …
                // in order — ascending sender, the delivery order the
                // next round's inbox sort expects to already hold.
                let mut slices: Vec<ArenaSlices<'_, P::Msg>> = (0..workers)
                    .map(|_| Vec::with_capacity(arenas.len()))
                    .collect();
                for arena in arenas.iter_mut() {
                    for (i, cols) in arena.chunks_mut(chunk).enumerate() {
                        slices[i].push(cols);
                    }
                }
                let mut handles = Vec::new();
                for (pend, mut cols) in pending.chunks_mut(chunk).zip(slices) {
                    handles.push(scope.spawn(move |_| {
                        for (rel, dst) in pend.iter_mut().enumerate() {
                            for arena_cols in cols.iter_mut() {
                                let col = &mut arena_cols[rel];
                                let used = col.len();
                                dst.append(col);
                                shrink_after_burst(col, used);
                            }
                        }
                    }));
                }
                // The spine runs concurrently with the merge: it
                // touches stats/trace/metrics only, the merge touches
                // `pending`/arenas only.
                let spine = self.commit_prepared(outboxes, &groups, false);
                let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
                for handle in handles {
                    if let Err(payload) = handle.join() {
                        panic.get_or_insert(payload);
                    }
                }
                (spine, panic)
            });
            self.pending = pending;
            self.worker_inboxes = arenas;
            match scoped {
                Ok((spine, None)) => spine,
                Ok((spine, Some(payload))) => spine.and(Err(SimError::WorkerPanic {
                    round,
                    payload: panic_payload_string(&*payload),
                })),
                Err(payload) => Err(SimError::WorkerPanic {
                    round,
                    payload: panic_payload_string(&*payload),
                }),
            }
        } else {
            // Per-message fault randomness in play: the spine routes
            // every message itself, drawing from the fault RNG in the
            // sequential order.
            self.commit_prepared(outboxes, &groups, true)
        };
        self.sender_groups = groups;
        if result.is_err() {
            self.clear_parallel_scratch(outboxes);
        }
        result
    }

    /// Discards everything a failed parallel round left behind —
    /// undrained outboxes, destination groups, scattered arena columns —
    /// so a caller that keeps the simulator alive can never re-commit
    /// stale sends (the same guarantee [`Simulator::commit`] gives the
    /// sequential path).
    fn clear_parallel_scratch(&mut self, outboxes: &mut Outboxes<P::Msg>) {
        for outbox in outboxes.iter_mut() {
            outbox.clear();
        }
        for groups in &mut self.sender_groups {
            groups.clear();
        }
        for arena in &mut self.worker_inboxes {
            for col in arena.iter_mut() {
                col.clear();
            }
        }
    }

    /// The accounting spine of the parallel commit fan-out: books every
    /// sender's pre-computed destination groups in ascending-sender
    /// order — message-count and bit-budget checks, statistics, cut
    /// metering, `EdgeTraffic`/link-down events, the `Round` event and
    /// metrics — exactly the order [`Simulator::commit_fast`] uses, so
    /// all observable output is bit-identical to a sequential run.
    ///
    /// With `route` set (the fault plan consumes per-message
    /// randomness), the spine also drains each outbox and routes every
    /// message through [`Simulator::route_one`], preserving the fault
    /// RNG draw order; otherwise wave 1 has already scattered the
    /// messages into worker arenas and only `in_flight` advances here.
    fn commit_prepared(
        &mut self,
        outboxes: &mut Outboxes<P::Msg>,
        groups: &[Vec<(NodeId, usize, usize)>],
        route: bool,
    ) -> Result<(), SimError> {
        let send_round = self.round;
        let edge_detail = self
            .tracer
            .as_deref()
            .is_some_and(|t| t.wants_edge_traffic());
        let mut counters = RoundCounters::default();
        for (from, sender) in groups.iter().enumerate() {
            if sender.is_empty() {
                continue;
            }
            if route {
                let outbox = &mut outboxes[from];
                let used = outbox.len();
                let mut queue = outbox.drain(..);
                for &(to, count, bits) in sender {
                    let deliver = self.account_group(
                        from,
                        to,
                        count,
                        bits,
                        send_round,
                        edge_detail,
                        &mut counters,
                    )?;
                    if deliver {
                        for _ in 0..count {
                            let (_, msg) = queue.next().expect("group sizes cover the outbox");
                            self.route_one(from, to, send_round, msg);
                        }
                    } else {
                        for _ in 0..count {
                            queue.next();
                        }
                    }
                }
                drop(queue);
                shrink_after_burst(outbox, used);
            } else {
                for &(to, count, bits) in sender {
                    let deliver = self.account_group(
                        from,
                        to,
                        count,
                        bits,
                        send_round,
                        edge_detail,
                        &mut counters,
                    )?;
                    if deliver {
                        self.in_flight += count;
                    }
                }
            }
        }
        self.emit_round_event(send_round, &counters);
        Ok(())
    }

    /// Serializes the complete simulation state at the current round
    /// boundary: round counter, statistics, every node's program and RNG,
    /// the fault RNG, and all in-flight traffic (pending and delayed).
    ///
    /// The image is host-side — it is never charged against the CONGEST
    /// budget — and [`Simulator::restore`] resumes it bit-identically:
    /// checkpoint → kill → restore → run produces exactly the trace of the
    /// uninterrupted run, at any thread count.
    ///
    /// Layout (version 3): an unframed header (magic, version, node count,
    /// seed, round, started flag) followed by five CRC-guarded sections —
    /// `stats`, `rngs`, `programs`, `pending`, `delayed` — each framed as
    /// `u64 byte length + u32 CRC-32 + payload bytes`. A flipped bit
    /// anywhere in a section fails that section's checksum on restore
    /// with a [`SimError::CorruptCheckpoint`] naming the section, instead
    /// of silently resuming from mangled state.
    pub fn checkpoint(&self) -> bytes::Bytes
    where
        P: WireState,
        P::Msg: WireState,
    {
        let mut w = BitWriter::new();
        w.write_bits(CHECKPOINT_MAGIC, 64);
        w.write_bits(CHECKPOINT_VERSION, 64);
        self.graph.node_count().encode_state(&mut w);
        self.config.seed.encode_state(&mut w);
        self.round.encode_state(&mut w);
        self.started.encode_state(&mut w);
        write_section(&mut w, |sw| self.stats.encode_state(sw));
        write_section(&mut w, |sw| {
            for rng in &self.rngs {
                for word in rng.state() {
                    word.encode_state(sw);
                }
            }
            for word in self.fault_rng.state() {
                word.encode_state(sw);
            }
        });
        write_section(&mut w, |sw| {
            for prog in &self.programs {
                prog.encode_state(sw);
            }
        });
        write_section(&mut w, |sw| {
            for inbox in &self.pending {
                inbox.encode_state(sw);
            }
        });
        write_section(&mut w, |sw| {
            for inbox in &self.delayed {
                inbox.encode_state(sw);
            }
        });
        w.finish()
    }

    /// Reconstructs a simulator from a [`Simulator::checkpoint`] image.
    ///
    /// `graph` and `config` must describe the same run that produced the
    /// image (the node count and seed are validated against it); the cut
    /// set and budget are rebuilt from `config`, so policy knobs that don't
    /// alter the trace (e.g. `threads`) may differ.
    ///
    /// # Errors
    ///
    /// [`SimError::CorruptCheckpoint`] when the image is truncated, has the
    /// wrong magic/version, fails a section checksum, or disagrees with
    /// `graph`/`config`. The reason names the offending section, so a
    /// flipped bit in (say) the RNG block reports `rngs section failed
    /// its checksum` rather than a downstream decode artifact.
    pub fn restore(graph: &'g Graph, config: SimConfig, data: &[u8]) -> Result<Self, SimError>
    where
        P: WireState,
        P::Msg: WireState,
    {
        fn corrupt(reason: &str) -> SimError {
            SimError::CorruptCheckpoint {
                reason: reason.to_string(),
            }
        }
        let mut r = BitReader::new(data);
        if r.read_bits(64) != Some(CHECKPOINT_MAGIC) {
            return Err(corrupt("bad magic word"));
        }
        let version = r.read_bits(64).ok_or_else(|| corrupt("truncated header"))?;
        if !(CHECKPOINT_MIN_VERSION..=CHECKPOINT_VERSION).contains(&version) {
            return Err(corrupt("unsupported checkpoint version"));
        }
        let n = usize::decode_state(&mut r).ok_or_else(|| corrupt("truncated header"))?;
        if n != graph.node_count() {
            return Err(corrupt("node count disagrees with the provided graph"));
        }
        let seed = u64::decode_state(&mut r).ok_or_else(|| corrupt("truncated header"))?;
        if seed != config.seed {
            return Err(corrupt("seed disagrees with the provided config"));
        }
        let round = usize::decode_state(&mut r).ok_or_else(|| corrupt("truncated header"))?;
        let started = bool::decode_state(&mut r).ok_or_else(|| corrupt("truncated header"))?;
        // Shared decoders, used both on the legacy inline stream (v1/v2)
        // and on the checksummed section payloads (v3+).
        let decode_stats = |r: &mut BitReader<'_>| match version {
            1 => RunStats::decode_state_v1(r),
            2 => RunStats::decode_state_v2(r),
            _ => RunStats::decode_state(r),
        };
        let read_rng = |r: &mut BitReader<'_>| -> Option<StdRng> {
            let mut words = [0u64; 4];
            for w in &mut words {
                *w = u64::decode_state(r)?;
            }
            Some(StdRng::from_state(words))
        };
        let decode_rngs = |r: &mut BitReader<'_>| -> Result<(Vec<StdRng>, StdRng), SimError> {
            let mut rngs = Vec::with_capacity(n);
            for _ in 0..n {
                rngs.push(read_rng(r).ok_or_else(|| corrupt("truncated rng state"))?);
            }
            let fault_rng = read_rng(r).ok_or_else(|| corrupt("truncated fault rng state"))?;
            Ok((rngs, fault_rng))
        };
        let decode_programs = |r: &mut BitReader<'_>| -> Result<Vec<P>, SimError> {
            let mut programs = Vec::with_capacity(n);
            for _ in 0..n {
                programs.push(P::decode_state(r).ok_or_else(|| corrupt("truncated program"))?);
            }
            Ok(programs)
        };
        let read_boxes =
            |r: &mut BitReader<'_>, what: &str| -> Result<Vec<Vec<Incoming<P::Msg>>>, SimError> {
                let mut boxes = Vec::with_capacity(n);
                for _ in 0..n {
                    boxes.push(
                        Vec::<Incoming<P::Msg>>::decode_state(r)
                            .ok_or_else(|| corrupt(&format!("truncated {what} traffic")))?,
                    );
                }
                Ok(boxes)
            };
        let (stats, (rngs, fault_rng), programs, pending, delayed) = if version
            >= CHECKPOINT_SECTIONED_VERSION
        {
            // v3+: each section is length-framed and CRC-guarded; the
            // checksum is verified before any decoding touches the
            // payload, so a flipped bit is caught at its section.
            let read_section = |r: &mut BitReader<'_>, what: &str| -> Result<Vec<u8>, SimError> {
                let len = r
                    .read_bits(64)
                    .ok_or_else(|| corrupt(&format!("truncated {what} section header")))?;
                let len = usize::try_from(len)
                    .map_err(|_| corrupt(&format!("oversized {what} section length")))?;
                let sum = r
                    .read_bits(32)
                    .ok_or_else(|| corrupt(&format!("truncated {what} section header")))?
                    as u32;
                let bytes = r
                    .read_bytes(len)
                    .ok_or_else(|| corrupt(&format!("truncated {what} section")))?;
                if crc32(&bytes) != sum {
                    return Err(corrupt(&format!("{what} section failed its checksum")));
                }
                Ok(bytes)
            };
            let stats_bytes = read_section(&mut r, "stats")?;
            let stats = decode_stats(&mut BitReader::new(&stats_bytes))
                .ok_or_else(|| corrupt("truncated stats"))?;
            let rng_bytes = read_section(&mut r, "rngs")?;
            let rng_state = decode_rngs(&mut BitReader::new(&rng_bytes))?;
            let prog_bytes = read_section(&mut r, "programs")?;
            let programs = decode_programs(&mut BitReader::new(&prog_bytes))?;
            let pending_bytes = read_section(&mut r, "pending")?;
            let pending = read_boxes(&mut BitReader::new(&pending_bytes), "pending")?;
            let delayed_bytes = read_section(&mut r, "delayed")?;
            let delayed = read_boxes(&mut BitReader::new(&delayed_bytes), "delayed")?;
            (stats, rng_state, programs, pending, delayed)
        } else {
            // v1/v2: one continuous unframed stream.
            let stats = decode_stats(&mut r).ok_or_else(|| corrupt("truncated stats"))?;
            let rng_state = decode_rngs(&mut r)?;
            let programs = decode_programs(&mut r)?;
            let pending = read_boxes(&mut r, "pending")?;
            let delayed = read_boxes(&mut r, "delayed")?;
            (stats, rng_state, programs, pending, delayed)
        };
        let in_flight = pending.iter().map(Vec::len).sum::<usize>()
            + delayed.iter().map(Vec::len).sum::<usize>();
        let cut_set: HashSet<(NodeId, NodeId)> =
            config.cut.iter().map(|&(u, v)| ordered(u, v)).collect();
        // The execution-environment echoes are never checkpointed (the
        // image is thread-count-invariant); re-derive them from the
        // *restoring* config, which may legitimately differ from the
        // one that wrote the image.
        let effective_threads = config.effective_threads(n);
        let mut stats = stats;
        stats.effective_threads = effective_threads;
        stats.granularity = config.granularity.max(1);
        Ok(Simulator {
            graph,
            config,
            programs,
            rngs,
            pending,
            delayed,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            outboxes: (0..n).map(|_| Vec::new()).collect(),
            group_scratch: Vec::new(),
            effective_threads,
            sender_groups: Vec::new(),
            worker_inboxes: Vec::new(),
            reference_delivery: false,
            in_flight,
            stats,
            round,
            started,
            cut_set,
            fault_rng,
            tracer: None,
            metrics: None,
            node_trace: Vec::new(),
            crashed_prev: Vec::new(),
        })
    }

    /// Validates and books one round's worth of outgoing traffic, moving it
    /// into `pending` (or `delayed`) for later delivery. Every outbox is
    /// left drained (empty, capacity retained) on success.
    ///
    /// Runs single-threaded, and every fault decision is made here in
    /// deterministic `(from, to, send order)` order — the thread count can
    /// never change which messages a fault plan affects.
    fn commit(&mut self, outboxes: &mut Outboxes<P::Msg>) -> Result<(), SimError> {
        let result = if self.reference_delivery {
            self.commit_reference(outboxes)
        } else {
            self.commit_fast(outboxes)
        };
        if result.is_err() {
            // Terminal error: discard whatever was left undrained so a
            // caller that keeps the simulator alive can never re-commit
            // stale sends (the pre-refactor path consumed the buffers
            // by value, dropping them on error).
            for outbox in outboxes.iter_mut() {
                outbox.clear();
            }
        }
        result
    }

    /// Fast-path delivery: destination groups are located by index in a
    /// single scan, their accounting reads messages in place, and one
    /// forward `drain` then routes them out — no per-group buffer, no
    /// outbox reallocation. Event order, fault-RNG draw order, stats,
    /// and delivery order are identical to [`Simulator::commit_reference`]
    /// (property-tested in `tests/engine_fast_path.rs`).
    fn commit_fast(&mut self, outboxes: &mut Outboxes<P::Msg>) -> Result<(), SimError> {
        let mut groups = std::mem::take(&mut self.group_scratch);
        let result = self.commit_fast_inner(outboxes, &mut groups);
        groups.clear();
        self.group_scratch = groups;
        result
    }

    fn commit_fast_inner(
        &mut self,
        outboxes: &mut Outboxes<P::Msg>,
        groups: &mut Vec<(NodeId, usize, usize)>,
    ) -> Result<(), SimError> {
        let n = self.graph.node_count();
        let send_round = self.round;
        let edge_detail = self
            .tracer
            .as_deref()
            .is_some_and(|t| t.wants_edge_traffic());
        let mut counters = RoundCounters::default();
        for (from, outbox) in outboxes.iter_mut().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            // Group by destination to charge per-edge-direction budgets.
            // The sort is stable, preserving each destination's send
            // order — and is skipped entirely when the program already
            // sent in ascending-destination order (the common case:
            // programs iterate their neighbor lists), since a stable
            // sort allocates.
            if !outbox.windows(2).all(|w| w[0].0 <= w[1].0) {
                outbox.sort_by_key(|(to, _)| *to);
            }
            // Pass 1, by reference: destination-group boundaries and bit
            // totals into the reusable scratch.
            groups.clear();
            let mut i = 0;
            while i < outbox.len() {
                let to = outbox[i].0;
                let start = i;
                let mut bits = 0usize;
                while i < outbox.len() && outbox[i].0 == to {
                    bits += outbox[i].1.bit_size(n);
                    i += 1;
                }
                groups.push((to, i - start, bits));
            }
            // Pass 2: one forward drain. Each group's accounting runs
            // immediately before its messages are consumed, preserving
            // the reference path's exact event and fault-draw order.
            // Neighbor validation merge-walks the sorted neighbor slice
            // against the (sorted) groups: O(deg + groups) per sender
            // instead of a `has_edge` binary search per group — which a
            // broadcast-heavy round pays per *message*.
            let neigh: &[NodeId] = self.graph.neighbor_slice(from);
            let mut ni = 0usize;
            let used = outbox.len();
            let mut queue = outbox.drain(..);
            for &(to, count, bits) in groups.iter() {
                while ni < neigh.len() && neigh[ni] < to {
                    ni += 1;
                }
                if ni >= neigh.len() || neigh[ni] != to {
                    return Err(SimError::NotNeighbor { from, to });
                }
                let deliver = self.account_group(
                    from,
                    to,
                    count,
                    bits,
                    send_round,
                    edge_detail,
                    &mut counters,
                )?;
                if deliver {
                    for _ in 0..count {
                        let (_, msg) = queue.next().expect("group sizes cover the outbox");
                        self.route_one(from, to, send_round, msg);
                    }
                } else {
                    // Link down: the whole group is lost (already
                    // accounted); skip its messages.
                    for _ in 0..count {
                        queue.next();
                    }
                }
            }
            drop(queue);
            shrink_after_burst(outbox, used);
        }
        self.emit_round_event(send_round, &counters);
        Ok(())
    }

    /// The pre-optimization delivery path: rebuilds each sender's outbox
    /// by value and allocates a fresh `Vec` per destination group, as the
    /// engine did before the fast path landed. Kept (in release builds
    /// too) purely so the test suite can A/B the two implementations —
    /// see [`Simulator::with_reference_delivery`].
    fn commit_reference(&mut self, outboxes: &mut Outboxes<P::Msg>) -> Result<(), SimError> {
        let n = self.graph.node_count();
        let send_round = self.round;
        let edge_detail = self
            .tracer
            .as_deref()
            .is_some_and(|t| t.wants_edge_traffic());
        let mut counters = RoundCounters::default();
        for (from, outbox) in outboxes.iter_mut().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            let mut drained = std::mem::take(outbox);
            drained.sort_by_key(|(to, _)| *to);
            let mut queue = drained.into_iter().peekable();
            while let Some((to, first)) = queue.next() {
                let mut msgs = vec![first];
                while queue.peek().is_some_and(|(d, _)| *d == to) {
                    msgs.push(queue.next().expect("peeked element exists").1);
                }
                let count = msgs.len();
                let bits: usize = msgs.iter().map(|m| m.bit_size(n)).sum();
                if !self.graph.has_edge(from, to) {
                    return Err(SimError::NotNeighbor { from, to });
                }
                let deliver = self.account_group(
                    from,
                    to,
                    count,
                    bits,
                    send_round,
                    edge_detail,
                    &mut counters,
                )?;
                if deliver {
                    for msg in msgs {
                        self.route_one(from, to, send_round, msg);
                    }
                }
            }
        }
        self.emit_round_event(send_round, &counters);
        Ok(())
    }

    /// Books one `(from → to)` message group: the message-count and
    /// bit-budget checks, statistics, cut metering, and the
    /// `EdgeTraffic`/link-down events. Returns whether the group's
    /// messages should be routed (`false`: the link is out and the whole
    /// group was dropped, with no randomness consumed).
    ///
    /// The caller has already validated that `(from, to)` is an edge —
    /// the reference path with a per-group `has_edge`, the fast path by
    /// merge-walking the sorted neighbor slice alongside the sorted
    /// destination groups.
    #[allow(clippy::too_many_arguments)]
    fn account_group(
        &mut self,
        from: NodeId,
        to: NodeId,
        count: usize,
        bits: usize,
        send_round: usize,
        edge_detail: bool,
        counters: &mut RoundCounters,
    ) -> Result<bool, SimError> {
        let budget = self.stats.budget_bits;
        let mut violated = false;
        if count > self.config.messages_per_edge {
            match self.config.violation_policy {
                ViolationPolicy::Strict => {
                    return Err(SimError::TooManyMessages {
                        from,
                        to,
                        round: self.round,
                        count,
                        limit: self.config.messages_per_edge,
                    })
                }
                ViolationPolicy::Record => violated = true,
            }
        }
        if bits > budget {
            match self.config.violation_policy {
                ViolationPolicy::Strict => {
                    return Err(SimError::BandwidthExceeded {
                        from,
                        to,
                        round: self.round,
                        bits,
                        budget,
                    })
                }
                ViolationPolicy::Record => violated = true,
            }
        }
        if violated {
            self.stats.violations += 1;
        }
        self.stats.total_messages += count as u64;
        self.stats.total_bits += bits as u64;
        // Strictly-greater keeps the *first* edge-round that set
        // the record, so the peak location is deterministic.
        if bits > self.stats.max_bits_edge_round {
            self.stats.max_bits_edge_round = bits;
            self.stats.peak_edge = Some((from, to, send_round));
        }
        self.stats.max_messages_edge_round = self.stats.max_messages_edge_round.max(count);
        // Gating on emptiness skips the hash-and-probe per group in the
        // (typical) meterless configuration; the result is unchanged.
        let crosses_cut = !self.cut_set.is_empty() && self.cut_set.contains(&ordered(from, to));
        if crosses_cut {
            self.stats.cut.messages += count as u64;
            self.stats.cut.bits += bits as u64;
        }
        counters.messages += count as u64;
        counters.bits += bits as u64;
        if crosses_cut {
            counters.cut_messages += count as u64;
            counters.cut_bits += bits as u64;
        }
        if edge_detail {
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.record(&TraceEvent::EdgeTraffic {
                    round: send_round,
                    from,
                    to,
                    messages: count,
                    bits,
                    cut: crosses_cut,
                });
            }
        }
        if self.config.faults.link_down(from, to, send_round) {
            // The edge is out: everything sent over it this round
            // is lost, with no randomness consumed.
            self.stats.dropped += count as u64;
            if let Some(tr) = self.tracer.as_deref_mut() {
                for _ in 0..count {
                    tr.record(&TraceEvent::Dropped {
                        round: send_round,
                        from,
                        to,
                        reason: DropReason::LinkDown,
                    });
                }
            }
            return Ok(false);
        }
        Ok(true)
    }

    /// Routes one already-accounted message through fault injection into
    /// `pending` or `delayed`. Each probabilistic fault draws from the
    /// dedicated fault RNG only when enabled, in a fixed order per
    /// message (drop, then corrupt, then delay, then duplicate), so a
    /// given plan replays identically.
    fn route_one(&mut self, from: NodeId, to: NodeId, send_round: usize, msg: P::Msg) {
        let faults = &self.config.faults;
        if faults.drop_probability > 0.0
            && rand::Rng::gen_bool(&mut self.fault_rng, faults.drop_probability)
        {
            self.stats.dropped += 1;
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.record(&TraceEvent::Dropped {
                    round: send_round,
                    from,
                    to,
                    reason: DropReason::Fault,
                });
            }
            return;
        }
        // Corruption: a probabilistic hit or a scheduled corrupting link
        // mangles the message in flight. The *whether* may come from the
        // deterministic link schedule, but the *how* (kind and mutation)
        // always draws from the fault RNG — the one documented case where
        // a schedule-driven fault consumes randomness (see
        // [`FaultPlan::uses_rng`](crate::FaultPlan::uses_rng)).
        let corrupt_p = self.config.faults.corrupt_probability;
        let hit = (corrupt_p > 0.0 && rand::Rng::gen_bool(&mut self.fault_rng, corrupt_p))
            || self.config.faults.link_corrupts(from, to, send_round);
        let msg = if hit {
            let idx = rand::Rng::gen_range(&mut self.fault_rng, 0..CorruptionKind::ALL.len());
            let kind = CorruptionKind::ALL[idx];
            let n = self.graph.node_count();
            self.stats.corrupted += 1;
            match msg.corrupted(kind, n, &mut self.fault_rng) {
                Some(mangled) => {
                    if let Some(tr) = self.tracer.as_deref_mut() {
                        tr.record(&TraceEvent::Corrupted {
                            round: send_round,
                            from,
                            to,
                            kind,
                        });
                    }
                    mangled
                }
                // Nothing parseable remains: to the receiver an
                // undecodable frame and a lost frame are the same event,
                // so it is booked as corrupted *and* dropped.
                None => {
                    self.stats.dropped += 1;
                    if let Some(tr) = self.tracer.as_deref_mut() {
                        tr.record(&TraceEvent::Dropped {
                            round: send_round,
                            from,
                            to,
                            reason: DropReason::Corrupt,
                        });
                    }
                    return;
                }
            }
        } else {
            msg
        };
        let faults = &self.config.faults;
        let late = faults.delay_probability > 0.0
            && rand::Rng::gen_bool(&mut self.fault_rng, faults.delay_probability);
        let duplicated = faults.duplicate_probability > 0.0
            && rand::Rng::gen_bool(&mut self.fault_rng, faults.duplicate_probability);
        if duplicated {
            // The extra copy always takes the fast path; if the
            // original is simultaneously delayed, the pair
            // arrives reordered across rounds. This clone is the one
            // delivery-path clone left: two independent copies genuinely
            // enter the network, and the branch is fault-only and rare,
            // so it never taxes the clean path.
            self.stats.duplicated += 1;
            self.in_flight += 1;
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.record(&TraceEvent::Duplicated {
                    round: send_round,
                    from,
                    to,
                });
            }
            self.pending[to].push(Incoming {
                from,
                msg: msg.clone(),
            });
        }
        self.in_flight += 1;
        if late {
            self.stats.delayed += 1;
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.record(&TraceEvent::Delayed {
                    round: send_round,
                    from,
                    to,
                });
            }
            self.delayed[to].push(Incoming { from, msg });
        } else {
            self.pending[to].push(Incoming { from, msg });
        }
    }

    /// Emits the per-round summary trace event and applies the round's
    /// live-metrics updates. Runs on the single-threaded commit spine,
    /// once per commit, so metric content cannot depend on the worker
    /// layout. The `on_start` wave commits as round 0 and advances no
    /// round counter; its traffic still counts.
    fn emit_round_event(&mut self, send_round: usize, counters: &RoundCounters) {
        if let Some(m) = &self.metrics {
            if send_round > 0 {
                m.rounds.inc();
            }
            m.messages.add(counters.messages);
            m.bits.add(counters.bits);
            m.inbox_depth.set(self.in_flight as u64);
        }
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.record(&TraceEvent::Round {
                round: send_round,
                messages: counters.messages,
                bits: counters.bits,
                cut_messages: counters.cut_messages,
                cut_bits: counters.cut_bits,
            });
        }
    }
}

/// Frames one checkpoint section: the body is encoded into its own
/// [`BitWriter`], then embedded as `u64 byte length + u32 CRC-32 +
/// payload bytes`. Restore verifies the checksum before decoding.
fn write_section(w: &mut BitWriter, body: impl FnOnce(&mut BitWriter)) {
    let mut sw = BitWriter::new();
    body(&mut sw);
    let bytes = sw.finish();
    w.write_bits(bytes.len() as u64, 64);
    w.write_bits(u64::from(crc32(&bytes)), 32);
    w.write_bytes(&bytes);
}

/// One merge worker's view of every wave-1 scatter arena: for each
/// arena (ascending sender chunk), the slice of destination columns
/// this worker owns.
type ArenaSlices<'a, M> = Vec<&'a mut [Vec<Incoming<M>>]>;

/// Wave 1 of the parallel commit fan-out, per sender: sorts the outbox
/// by destination when needed (stable — each destination's send order
/// is preserved), records per-destination `(to, count, bits)` groups
/// into the sender's persistent scratch, and merge-walks the sorted
/// neighbor slice against the (sorted) groups to reject sends to
/// non-neighbors — the same sort/group/validate work
/// [`Simulator::commit_fast`] does inline, hoisted off the spine so
/// workers do it concurrently.
fn prepare_outbox<M: Message>(
    graph: &Graph,
    from: NodeId,
    outbox: &mut [(NodeId, M)],
    groups: &mut Vec<(NodeId, usize, usize)>,
) -> Result<(), SimError> {
    groups.clear();
    if outbox.is_empty() {
        return Ok(());
    }
    let n = graph.node_count();
    if !outbox.windows(2).all(|w| w[0].0 <= w[1].0) {
        outbox.sort_by_key(|(to, _)| *to);
    }
    let mut i = 0;
    while i < outbox.len() {
        let to = outbox[i].0;
        let start = i;
        let mut bits = 0usize;
        while i < outbox.len() && outbox[i].0 == to {
            bits += outbox[i].1.bit_size(n);
            i += 1;
        }
        groups.push((to, i - start, bits));
    }
    let neigh: &[NodeId] = graph.neighbor_slice(from);
    let mut ni = 0usize;
    for &(to, _, _) in groups.iter() {
        while ni < neigh.len() && neigh[ni] < to {
            ni += 1;
        }
        if ni >= neigh.len() || neigh[ni] != to {
            return Err(SimError::NotNeighbor { from, to });
        }
    }
    Ok(())
}

/// Drains one prepared outbox into a worker's scratch arena (wave 1,
/// fault-transparent mode only): messages land in `arena[to]` in send
/// order, and groups addressed to a downed link are consumed and
/// skipped — a pure schedule lookup, so no fault randomness is
/// involved; the spine books that drop (and all other accounting)
/// from the groups afterwards.
fn scatter_outbox<M: Message>(
    faults: &FaultPlan,
    round: usize,
    from: NodeId,
    outbox: &mut Vec<(NodeId, M)>,
    groups: &[(NodeId, usize, usize)],
    arena: &mut [Vec<Incoming<M>>],
) {
    let used = outbox.len();
    let mut queue = outbox.drain(..);
    for &(to, count, _) in groups {
        if faults.link_down(from, to, round) {
            for _ in 0..count {
                queue.next();
            }
        } else {
            for _ in 0..count {
                let (_, msg) = queue.next().expect("group sizes cover the outbox");
                arena[to].push(Incoming { from, msg });
            }
        }
    }
    drop(queue);
    shrink_after_burst(outbox, used);
}

/// Whole-round traffic totals for the `Round` trace event.
#[derive(Debug, Default)]
struct RoundCounters {
    messages: u64,
    bits: u64,
    cut_messages: u64,
    cut_bits: u64,
}

/// Reclaims burst growth in a reused buffer: once a round used less than
/// a quarter of the buffer's capacity, halve the capacity. Repeated
/// quiet rounds decay a chaos-inflated buffer geometrically instead of
/// pinning its high-water mark forever; the floor leaves steady-state
/// buffers alone.
fn shrink_after_burst<T>(buf: &mut Vec<T>, used: usize) {
    let cap = buf.capacity();
    if cap > 64 && used < cap / 4 {
        buf.shrink_to(cap / 2);
    }
}
