//! Declarative fault injection for the simulator.
//!
//! A [`FaultPlan`] describes every deviation from the reliable CONGEST
//! model that a run should experience:
//!
//! * **Bernoulli drops** — each committed message is independently lost
//!   with [`FaultPlan::drop_probability`];
//! * **duplication** — each delivered message is independently delivered
//!   twice with [`FaultPlan::duplicate_probability`];
//! * **delay** — each delivered message is independently held back one
//!   round with [`FaultPlan::delay_probability`];
//! * **link outages** — scheduled intervals during which an edge silently
//!   discards everything sent over it ([`LinkOutage`]);
//! * **node crashes** — scheduled intervals during which a node's program
//!   is not stepped and all traffic addressed to it is discarded
//!   ([`NodeCrash`]).
//!
//! All random decisions are drawn from the simulator's dedicated fault RNG
//! inside the single-threaded commit step, in deterministic message order,
//! so a `(graph, seed, plan)` triple replays bit-identically at any thread
//! count. A plan whose probabilities are all zero draws nothing from that
//! RNG, which is why an empty plan reproduces a fault-free trace exactly.
//!
//! Schedule-driven faults (outages, crashes) consume no randomness at all.

use serde::{Deserialize, Serialize};

use rwbc_graph::NodeId;

use crate::stats::ordered;

/// A scheduled bidirectional link failure.
///
/// Messages sent over the edge `{u, v}` in any round of
/// `[from_round, until_round)` are discarded (in both directions). Rounds
/// are the simulator's send rounds: `on_start` sends happen in round 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// One endpoint of the failed edge.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// First send round of the outage (inclusive).
    pub from_round: usize,
    /// End of the outage (exclusive). Use `usize::MAX` for a permanent cut.
    pub until_round: usize,
}

impl LinkOutage {
    /// Whether this outage covers edge `{a, b}` at `round`.
    pub fn covers(&self, a: NodeId, b: NodeId, round: usize) -> bool {
        ordered(self.u, self.v) == ordered(a, b)
            && round >= self.from_round
            && round < self.until_round
    }
}

/// A scheduled node crash, optionally followed by recovery.
///
/// While crashed (rounds in `[crash_round, recover_round)`), the node's
/// program is not stepped, it sends nothing, and every message addressed
/// to it is discarded on delivery. A recovered node resumes from its
/// pre-crash local state (crash-recover semantics with stable storage);
/// messages that arrived while it was down stay lost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: NodeId,
    /// First round the node is down (inclusive). A value of 0 suppresses
    /// the node's `on_start` as well.
    pub crash_round: usize,
    /// Round the node comes back (exclusive end of the outage), or `None`
    /// for a permanent crash.
    pub recover_round: Option<usize>,
}

impl NodeCrash {
    /// Whether `node` is down at `round` under this schedule.
    pub fn covers(&self, node: NodeId, round: usize) -> bool {
        self.node == node
            && round >= self.crash_round
            && self.recover_round.is_none_or(|r| round < r)
    }

    /// Whether this crash never recovers.
    pub fn is_permanent(&self) -> bool {
        self.recover_round.is_none()
    }
}

/// The complete fault schedule of one simulation run.
///
/// The default plan is empty: no drops, no duplication, no delay, no
/// outages, no crashes — byte-for-byte the reliable CONGEST model.
///
/// # Example
///
/// ```
/// use congest_sim::{FaultPlan, LinkOutage};
///
/// let plan = FaultPlan::default()
///     .with_drop_probability(0.05)
///     .with_link_outage(LinkOutage { u: 0, v: 1, from_round: 10, until_round: 20 });
/// assert!(!plan.is_empty());
/// assert!(plan.link_down(1, 0, 15));
/// assert!(!plan.link_down(1, 0, 20));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Independent per-message loss probability (0 disables, NaN is
    /// treated as 0).
    pub drop_probability: f64,
    /// Independent per-message probability of being delivered twice in the
    /// same round (0 disables, NaN is treated as 0). Duplicates are fault
    /// artifacts: they are not charged against the sender's budget.
    pub duplicate_probability: f64,
    /// Independent per-message probability of arriving one round late
    /// (0 disables, NaN is treated as 0).
    pub delay_probability: f64,
    /// Scheduled link failures.
    pub outages: Vec<LinkOutage>,
    /// Scheduled node crashes.
    pub crashes: Vec<NodeCrash>,
}

/// Clamps a probability to `[0, 1]`, mapping NaN to 0 (NaN would otherwise
/// survive `f64::clamp` and panic inside the Bernoulli draw).
pub(crate) fn sanitize_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

impl FaultPlan {
    /// Sets the per-message drop probability (builder style). Clamped to
    /// `[0, 1]`; NaN becomes 0.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> FaultPlan {
        self.drop_probability = sanitize_probability(p);
        self
    }

    /// Sets the per-message duplication probability (builder style).
    /// Clamped to `[0, 1]`; NaN becomes 0.
    #[must_use]
    pub fn with_duplicate_probability(mut self, p: f64) -> FaultPlan {
        self.duplicate_probability = sanitize_probability(p);
        self
    }

    /// Sets the per-message one-round-delay probability (builder style).
    /// Clamped to `[0, 1]`; NaN becomes 0.
    #[must_use]
    pub fn with_delay_probability(mut self, p: f64) -> FaultPlan {
        self.delay_probability = sanitize_probability(p);
        self
    }

    /// Adds a scheduled link outage (builder style).
    #[must_use]
    pub fn with_link_outage(mut self, outage: LinkOutage) -> FaultPlan {
        self.outages.push(outage);
        self
    }

    /// Adds a scheduled node crash (builder style).
    #[must_use]
    pub fn with_node_crash(mut self, crash: NodeCrash) -> FaultPlan {
        self.crashes.push(crash);
        self
    }

    /// Whether this plan injects nothing (the reliable model).
    pub fn is_empty(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.delay_probability <= 0.0
            && self.outages.is_empty()
            && self.crashes.is_empty()
    }

    /// Whether any probabilistic fault is enabled (and hence the fault RNG
    /// will be consulted).
    pub fn uses_rng(&self) -> bool {
        self.drop_probability > 0.0
            || self.duplicate_probability > 0.0
            || self.delay_probability > 0.0
    }

    /// Whether edge `{u, v}` is down at send round `round`.
    pub fn link_down(&self, u: NodeId, v: NodeId, round: usize) -> bool {
        self.outages.iter().any(|o| o.covers(u, v, round))
    }

    /// Whether `node` is down at `round`.
    pub fn node_crashed(&self, node: NodeId, round: usize) -> bool {
        self.crashes.iter().any(|c| c.covers(node, round))
    }

    /// Projects the plan onto a *recovery sub-phase*: permanent faults
    /// (outages with `until_round == usize::MAX`, crashes that never
    /// recover) are shifted to fire from round 0 — they are facts of the
    /// topology now, not scheduled events — while transient scheduled
    /// faults are dropped (their windows belong to the original run's
    /// clock). Probabilistic faults carry over unchanged.
    #[must_use]
    pub fn collapse_permanent(&self) -> FaultPlan {
        FaultPlan {
            drop_probability: self.drop_probability,
            duplicate_probability: self.duplicate_probability,
            delay_probability: self.delay_probability,
            outages: self
                .outages
                .iter()
                .filter(|o| o.until_round == usize::MAX)
                .map(|o| LinkOutage {
                    u: o.u,
                    v: o.v,
                    from_round: 0,
                    until_round: usize::MAX,
                })
                .collect(),
            crashes: self
                .crashes
                .iter()
                .filter(|c| c.is_permanent())
                .map(|c| NodeCrash {
                    node: c.node,
                    crash_round: 0,
                    recover_round: None,
                })
                .collect(),
        }
    }

    /// Whether `node` is down at `round` with no scheduled recovery.
    /// Permanently-down nodes are exempt from the global termination
    /// condition (they will never report termination themselves).
    pub fn node_permanently_down(&self, node: NodeId, round: usize) -> bool {
        self.crashes
            .iter()
            .any(|c| c.covers(node, round) && c.is_permanent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.uses_rng());
        assert!(!plan.link_down(0, 1, 5));
        assert!(!plan.node_crashed(0, 5));
    }

    #[test]
    fn probabilities_are_sanitized() {
        let plan = FaultPlan::default()
            .with_drop_probability(7.5)
            .with_duplicate_probability(-2.0)
            .with_delay_probability(f64::NAN);
        assert_eq!(plan.drop_probability, 1.0);
        assert_eq!(plan.duplicate_probability, 0.0);
        assert_eq!(plan.delay_probability, 0.0);
        let nan_drop = FaultPlan::default().with_drop_probability(f64::NAN);
        assert_eq!(nan_drop.drop_probability, 0.0);
        assert!(nan_drop.is_empty());
    }

    #[test]
    fn outage_covers_unordered_interval() {
        let o = LinkOutage {
            u: 3,
            v: 1,
            from_round: 2,
            until_round: 4,
        };
        assert!(o.covers(1, 3, 2));
        assert!(o.covers(3, 1, 3));
        assert!(!o.covers(1, 3, 4));
        assert!(!o.covers(1, 3, 1));
        assert!(!o.covers(1, 2, 3));
    }

    #[test]
    fn collapse_permanent_keeps_only_standing_faults() {
        let plan = FaultPlan::default()
            .with_drop_probability(0.1)
            .with_link_outage(LinkOutage {
                u: 0,
                v: 1,
                from_round: 5,
                until_round: usize::MAX,
            })
            .with_link_outage(LinkOutage {
                u: 2,
                v: 3,
                from_round: 5,
                until_round: 9,
            })
            .with_node_crash(NodeCrash {
                node: 4,
                crash_round: 7,
                recover_round: None,
            })
            .with_node_crash(NodeCrash {
                node: 5,
                crash_round: 1,
                recover_round: Some(3),
            });
        let sub = plan.collapse_permanent();
        assert_eq!(sub.drop_probability, 0.1);
        // The permanent outage now covers round 0; the transient one is
        // gone entirely.
        assert!(sub.link_down(0, 1, 0));
        assert!(!sub.link_down(2, 3, 6));
        assert!(sub.node_permanently_down(4, 0));
        assert!(!sub.node_crashed(5, 2));
    }

    #[test]
    fn crash_windows_and_permanence() {
        let temp = NodeCrash {
            node: 5,
            crash_round: 3,
            recover_round: Some(6),
        };
        let perm = NodeCrash {
            node: 7,
            crash_round: 1,
            recover_round: None,
        };
        let plan = FaultPlan::default()
            .with_node_crash(temp)
            .with_node_crash(perm);
        assert!(!plan.node_crashed(5, 2));
        assert!(plan.node_crashed(5, 3));
        assert!(plan.node_crashed(5, 5));
        assert!(!plan.node_crashed(5, 6));
        assert!(!plan.node_permanently_down(5, 4));
        assert!(plan.node_crashed(7, 100));
        assert!(plan.node_permanently_down(7, 100));
        assert!(!plan.node_permanently_down(7, 0));
        assert!(!plan.is_empty());
        assert!(!plan.uses_rng());
    }
}
