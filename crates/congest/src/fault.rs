//! Declarative fault injection for the simulator.
//!
//! A [`FaultPlan`] describes every deviation from the reliable CONGEST
//! model that a run should experience:
//!
//! * **Bernoulli drops** — each committed message is independently lost
//!   with [`FaultPlan::drop_probability`];
//! * **duplication** — each delivered message is independently delivered
//!   twice with [`FaultPlan::duplicate_probability`];
//! * **delay** — each delivered message is independently held back one
//!   round with [`FaultPlan::delay_probability`];
//! * **corruption** — each delivered message is independently mangled in
//!   flight with [`FaultPlan::corrupt_probability`]: a bit flip, a
//!   truncation, or wholesale garbage substitution ([`CorruptionKind`]),
//!   drawn uniformly per event;
//! * **link outages** — scheduled intervals during which an edge silently
//!   discards everything sent over it ([`LinkOutage`]);
//! * **persistent link corruption** — scheduled intervals during which an
//!   edge mangles *every* message crossing it ([`LinkCorruption`]) — the
//!   fault a checksummed transport escalates to quarantine;
//! * **node crashes** — scheduled intervals during which a node's program
//!   is not stepped and all traffic addressed to it is discarded
//!   ([`NodeCrash`]).
//!
//! All random decisions are drawn from the simulator's dedicated fault RNG
//! inside the single-threaded commit step, in deterministic message order,
//! so a `(graph, seed, plan)` triple replays bit-identically at any thread
//! count. A plan whose probabilities are all zero draws nothing from that
//! RNG, which is why an empty plan reproduces a fault-free trace exactly.
//!
//! Schedule-driven faults (outages, crashes) consume no randomness at all.
//! The one exception is [`LinkCorruption`]: the schedule decides *whether*
//! a message is mangled, but the mangling itself (which kind, which bit)
//! still draws from the fault RNG — corruption without randomness would
//! always flip the same bit.

use serde::{Deserialize, Serialize};

use rwbc_graph::NodeId;

use crate::stats::ordered;

/// A scheduled bidirectional link failure.
///
/// Messages sent over the edge `{u, v}` in any round of
/// `[from_round, until_round)` are discarded (in both directions). Rounds
/// are the simulator's send rounds: `on_start` sends happen in round 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// One endpoint of the failed edge.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// First send round of the outage (inclusive).
    pub from_round: usize,
    /// End of the outage (exclusive). Use `usize::MAX` for a permanent cut.
    pub until_round: usize,
}

impl LinkOutage {
    /// Whether this outage covers edge `{a, b}` at `round`.
    pub fn covers(&self, a: NodeId, b: NodeId, round: usize) -> bool {
        ordered(self.u, self.v) == ordered(a, b)
            && round >= self.from_round
            && round < self.until_round
    }
}

/// How a corruption event mangles a message in flight.
///
/// The kind is drawn uniformly from the fault RNG per corruption event;
/// what each kind does to a concrete payload is decided by the message
/// type's [`Message::corrupted`](crate::Message::corrupted) hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// One bit of the encoded frame is inverted.
    BitFlip,
    /// The tail of the encoded frame is cut off.
    Truncate,
    /// The frame content is replaced with random bytes.
    Garbage,
}

impl CorruptionKind {
    /// All kinds, in draw order (index 0, 1, 2).
    pub const ALL: [CorruptionKind; 3] = [
        CorruptionKind::BitFlip,
        CorruptionKind::Truncate,
        CorruptionKind::Garbage,
    ];

    /// Stable schema name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            CorruptionKind::BitFlip => "bit_flip",
            CorruptionKind::Truncate => "truncate",
            CorruptionKind::Garbage => "garbage",
        }
    }

    /// Parses a schema name back into a kind.
    pub fn from_str_opt(s: &str) -> Option<CorruptionKind> {
        match s {
            "bit_flip" => Some(CorruptionKind::BitFlip),
            "truncate" => Some(CorruptionKind::Truncate),
            "garbage" => Some(CorruptionKind::Garbage),
            _ => None,
        }
    }
}

/// A scheduled interval of persistent corruption on one edge.
///
/// Every message sent over `{u, v}` (either direction) in a round of
/// `[from_round, until_round)` is mangled with a [`CorruptionKind`] drawn
/// from the fault RNG. Unlike an outage the bits still flow — which is
/// worse: an unprotected receiver decodes garbage silently, and only a
/// checksummed transport can detect the pattern and quarantine the link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCorruption {
    /// One endpoint of the corrupting edge.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// First send round of the corruption window (inclusive).
    pub from_round: usize,
    /// End of the window (exclusive). Use `usize::MAX` for a permanently
    /// corrupting link.
    pub until_round: usize,
}

impl LinkCorruption {
    /// Whether this window covers edge `{a, b}` at `round`.
    pub fn covers(&self, a: NodeId, b: NodeId, round: usize) -> bool {
        ordered(self.u, self.v) == ordered(a, b)
            && round >= self.from_round
            && round < self.until_round
    }

    /// Whether this window never closes.
    pub fn is_permanent(&self) -> bool {
        self.until_round == usize::MAX
    }
}

/// A scheduled node crash, optionally followed by recovery.
///
/// While crashed (rounds in `[crash_round, recover_round)`), the node's
/// program is not stepped, it sends nothing, and every message addressed
/// to it is discarded on delivery. A recovered node resumes from its
/// pre-crash local state (crash-recover semantics with stable storage);
/// messages that arrived while it was down stay lost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: NodeId,
    /// First round the node is down (inclusive). A value of 0 suppresses
    /// the node's `on_start` as well.
    pub crash_round: usize,
    /// Round the node comes back (exclusive end of the outage), or `None`
    /// for a permanent crash.
    pub recover_round: Option<usize>,
}

impl NodeCrash {
    /// Whether `node` is down at `round` under this schedule.
    pub fn covers(&self, node: NodeId, round: usize) -> bool {
        self.node == node
            && round >= self.crash_round
            && self.recover_round.is_none_or(|r| round < r)
    }

    /// Whether this crash never recovers.
    pub fn is_permanent(&self) -> bool {
        self.recover_round.is_none()
    }
}

/// The complete fault schedule of one simulation run.
///
/// The default plan is empty: no drops, no duplication, no delay, no
/// outages, no crashes — byte-for-byte the reliable CONGEST model.
///
/// # Example
///
/// ```
/// use congest_sim::{FaultPlan, LinkOutage};
///
/// let plan = FaultPlan::default()
///     .with_drop_probability(0.05)
///     .with_link_outage(LinkOutage { u: 0, v: 1, from_round: 10, until_round: 20 });
/// assert!(!plan.is_empty());
/// assert!(plan.link_down(1, 0, 15));
/// assert!(!plan.link_down(1, 0, 20));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Independent per-message loss probability (0 disables, NaN is
    /// treated as 0).
    pub drop_probability: f64,
    /// Independent per-message probability of being delivered twice in the
    /// same round (0 disables, NaN is treated as 0). Duplicates are fault
    /// artifacts: they are not charged against the sender's budget.
    pub duplicate_probability: f64,
    /// Independent per-message probability of arriving one round late
    /// (0 disables, NaN is treated as 0).
    pub delay_probability: f64,
    /// Independent per-message probability of being mangled in flight
    /// (0 disables, NaN is treated as 0). The [`CorruptionKind`] is drawn
    /// uniformly per event.
    pub corrupt_probability: f64,
    /// Scheduled link failures.
    pub outages: Vec<LinkOutage>,
    /// Scheduled persistent-corruption windows.
    pub corruptions: Vec<LinkCorruption>,
    /// Scheduled node crashes.
    pub crashes: Vec<NodeCrash>,
}

/// Clamps a probability to `[0, 1]`, mapping NaN to 0 (NaN would otherwise
/// survive `f64::clamp` and panic inside the Bernoulli draw).
pub(crate) fn sanitize_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

impl FaultPlan {
    /// Sets the per-message drop probability (builder style). Clamped to
    /// `[0, 1]`; NaN becomes 0.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> FaultPlan {
        self.drop_probability = sanitize_probability(p);
        self
    }

    /// Sets the per-message duplication probability (builder style).
    /// Clamped to `[0, 1]`; NaN becomes 0.
    #[must_use]
    pub fn with_duplicate_probability(mut self, p: f64) -> FaultPlan {
        self.duplicate_probability = sanitize_probability(p);
        self
    }

    /// Sets the per-message one-round-delay probability (builder style).
    /// Clamped to `[0, 1]`; NaN becomes 0.
    #[must_use]
    pub fn with_delay_probability(mut self, p: f64) -> FaultPlan {
        self.delay_probability = sanitize_probability(p);
        self
    }

    /// Sets the per-message corruption probability (builder style).
    /// Clamped to `[0, 1]`; NaN becomes 0.
    #[must_use]
    pub fn with_corrupt_probability(mut self, p: f64) -> FaultPlan {
        self.corrupt_probability = sanitize_probability(p);
        self
    }

    /// Adds a scheduled link outage (builder style).
    #[must_use]
    pub fn with_link_outage(mut self, outage: LinkOutage) -> FaultPlan {
        self.outages.push(outage);
        self
    }

    /// Adds a scheduled persistent-corruption window (builder style).
    #[must_use]
    pub fn with_link_corruption(mut self, corruption: LinkCorruption) -> FaultPlan {
        self.corruptions.push(corruption);
        self
    }

    /// Adds a scheduled node crash (builder style).
    #[must_use]
    pub fn with_node_crash(mut self, crash: NodeCrash) -> FaultPlan {
        self.crashes.push(crash);
        self
    }

    /// Whether this plan injects nothing (the reliable model).
    pub fn is_empty(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.delay_probability <= 0.0
            && self.corrupt_probability <= 0.0
            && self.outages.is_empty()
            && self.corruptions.is_empty()
            && self.crashes.is_empty()
    }

    /// Whether any probabilistic fault is enabled (and hence the fault RNG
    /// will be consulted). Persistent link corruption counts: its schedule
    /// decides whether a message is mangled, but the mangling itself draws
    /// from the RNG.
    pub fn uses_rng(&self) -> bool {
        self.drop_probability > 0.0
            || self.duplicate_probability > 0.0
            || self.delay_probability > 0.0
            || self.corrupt_probability > 0.0
            || !self.corruptions.is_empty()
    }

    /// Whether edge `{u, v}` is down at send round `round`.
    pub fn link_down(&self, u: NodeId, v: NodeId, round: usize) -> bool {
        self.outages.iter().any(|o| o.covers(u, v, round))
    }

    /// Whether edge `{u, v}` persistently corrupts at send round `round`.
    pub fn link_corrupts(&self, u: NodeId, v: NodeId, round: usize) -> bool {
        self.corruptions.iter().any(|c| c.covers(u, v, round))
    }

    /// Whether `node` is down at `round`.
    pub fn node_crashed(&self, node: NodeId, round: usize) -> bool {
        self.crashes.iter().any(|c| c.covers(node, round))
    }

    /// Projects the plan onto a *recovery sub-phase*: permanent faults
    /// (outages with `until_round == usize::MAX`, crashes that never
    /// recover) are shifted to fire from round 0 — they are facts of the
    /// topology now, not scheduled events — while transient scheduled
    /// faults are dropped (their windows belong to the original run's
    /// clock). Probabilistic faults carry over unchanged.
    #[must_use]
    pub fn collapse_permanent(&self) -> FaultPlan {
        FaultPlan {
            drop_probability: self.drop_probability,
            duplicate_probability: self.duplicate_probability,
            delay_probability: self.delay_probability,
            corrupt_probability: self.corrupt_probability,
            outages: self
                .outages
                .iter()
                .filter(|o| o.until_round == usize::MAX)
                .map(|o| LinkOutage {
                    u: o.u,
                    v: o.v,
                    from_round: 0,
                    until_round: usize::MAX,
                })
                .collect(),
            corruptions: self
                .corruptions
                .iter()
                .filter(|c| c.is_permanent())
                .map(|c| LinkCorruption {
                    u: c.u,
                    v: c.v,
                    from_round: 0,
                    until_round: usize::MAX,
                })
                .collect(),
            crashes: self
                .crashes
                .iter()
                .filter(|c| c.is_permanent())
                .map(|c| NodeCrash {
                    node: c.node,
                    crash_round: 0,
                    recover_round: None,
                })
                .collect(),
        }
    }

    /// Whether `node` is down at `round` with no scheduled recovery.
    /// Permanently-down nodes are exempt from the global termination
    /// condition (they will never report termination themselves).
    pub fn node_permanently_down(&self, node: NodeId, round: usize) -> bool {
        self.crashes
            .iter()
            .any(|c| c.covers(node, round) && c.is_permanent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.uses_rng());
        assert!(!plan.link_down(0, 1, 5));
        assert!(!plan.node_crashed(0, 5));
    }

    #[test]
    fn probabilities_are_sanitized() {
        let plan = FaultPlan::default()
            .with_drop_probability(7.5)
            .with_duplicate_probability(-2.0)
            .with_delay_probability(f64::NAN)
            .with_corrupt_probability(f64::INFINITY);
        assert_eq!(plan.drop_probability, 1.0);
        assert_eq!(plan.duplicate_probability, 0.0);
        assert_eq!(plan.delay_probability, 0.0);
        assert_eq!(plan.corrupt_probability, 1.0);
        let nan_drop = FaultPlan::default().with_drop_probability(f64::NAN);
        assert_eq!(nan_drop.drop_probability, 0.0);
        assert!(nan_drop.is_empty());
    }

    #[test]
    fn every_setter_rejects_every_garbage_edge() {
        // NaN, ±∞, and out-of-range values must all land back in [0, 1]
        // (a NaN fed to `Rng::gen_bool` would panic mid-run).
        let edges = [
            (f64::NAN, 0.0),
            (f64::INFINITY, 1.0),
            (f64::NEG_INFINITY, 0.0),
            (-0.5, 0.0),
            (1.5, 1.0),
            (0.25, 0.25),
            (0.0, 0.0),
            (1.0, 1.0),
        ];
        for (input, want) in edges {
            let plan = FaultPlan::default()
                .with_drop_probability(input)
                .with_duplicate_probability(input)
                .with_delay_probability(input)
                .with_corrupt_probability(input);
            assert_eq!(plan.drop_probability, want, "drop({input})");
            assert_eq!(plan.duplicate_probability, want, "dup({input})");
            assert_eq!(plan.delay_probability, want, "delay({input})");
            assert_eq!(plan.corrupt_probability, want, "corrupt({input})");
        }
    }

    #[test]
    fn corruption_windows_cover_and_count_as_rng_users() {
        let plan = FaultPlan::default().with_link_corruption(LinkCorruption {
            u: 4,
            v: 2,
            from_round: 3,
            until_round: 8,
        });
        assert!(!plan.is_empty());
        // Schedule-driven corruption still draws the mangling from the RNG.
        assert!(plan.uses_rng());
        assert!(plan.link_corrupts(2, 4, 3));
        assert!(plan.link_corrupts(4, 2, 7));
        assert!(!plan.link_corrupts(2, 4, 8));
        assert!(!plan.link_corrupts(2, 4, 2));
        assert!(!plan.link_corrupts(2, 3, 5));
        assert!(!plan.link_down(2, 4, 5), "corruption is not an outage");

        let p = FaultPlan::default().with_corrupt_probability(0.3);
        assert!(!p.is_empty());
        assert!(p.uses_rng());
    }

    #[test]
    fn corruption_kind_names_round_trip() {
        for kind in CorruptionKind::ALL {
            assert_eq!(CorruptionKind::from_str_opt(kind.as_str()), Some(kind));
        }
        assert_eq!(CorruptionKind::from_str_opt("melted"), None);
    }

    #[test]
    fn collapse_permanent_keeps_standing_corruption() {
        let plan = FaultPlan::default()
            .with_corrupt_probability(0.05)
            .with_link_corruption(LinkCorruption {
                u: 0,
                v: 1,
                from_round: 9,
                until_round: usize::MAX,
            })
            .with_link_corruption(LinkCorruption {
                u: 2,
                v: 3,
                from_round: 1,
                until_round: 4,
            });
        let sub = plan.collapse_permanent();
        assert_eq!(sub.corrupt_probability, 0.05);
        assert!(sub.link_corrupts(0, 1, 0));
        assert!(!sub.link_corrupts(2, 3, 2), "transient window dropped");
    }

    #[test]
    fn outage_covers_unordered_interval() {
        let o = LinkOutage {
            u: 3,
            v: 1,
            from_round: 2,
            until_round: 4,
        };
        assert!(o.covers(1, 3, 2));
        assert!(o.covers(3, 1, 3));
        assert!(!o.covers(1, 3, 4));
        assert!(!o.covers(1, 3, 1));
        assert!(!o.covers(1, 2, 3));
    }

    #[test]
    fn collapse_permanent_keeps_only_standing_faults() {
        let plan = FaultPlan::default()
            .with_drop_probability(0.1)
            .with_link_outage(LinkOutage {
                u: 0,
                v: 1,
                from_round: 5,
                until_round: usize::MAX,
            })
            .with_link_outage(LinkOutage {
                u: 2,
                v: 3,
                from_round: 5,
                until_round: 9,
            })
            .with_node_crash(NodeCrash {
                node: 4,
                crash_round: 7,
                recover_round: None,
            })
            .with_node_crash(NodeCrash {
                node: 5,
                crash_round: 1,
                recover_round: Some(3),
            });
        let sub = plan.collapse_permanent();
        assert_eq!(sub.drop_probability, 0.1);
        // The permanent outage now covers round 0; the transient one is
        // gone entirely.
        assert!(sub.link_down(0, 1, 0));
        assert!(!sub.link_down(2, 3, 6));
        assert!(sub.node_permanently_down(4, 0));
        assert!(!sub.node_crashed(5, 2));
    }

    #[test]
    fn crash_windows_and_permanence() {
        let temp = NodeCrash {
            node: 5,
            crash_round: 3,
            recover_round: Some(6),
        };
        let perm = NodeCrash {
            node: 7,
            crash_round: 1,
            recover_round: None,
        };
        let plan = FaultPlan::default()
            .with_node_crash(temp)
            .with_node_crash(perm);
        assert!(!plan.node_crashed(5, 2));
        assert!(plan.node_crashed(5, 3));
        assert!(plan.node_crashed(5, 5));
        assert!(!plan.node_crashed(5, 6));
        assert!(!plan.node_permanently_down(5, 4));
        assert!(plan.node_crashed(7, 100));
        assert!(plan.node_permanently_down(7, 100));
        assert!(!plan.node_permanently_down(7, 0));
        assert!(!plan.is_empty());
        assert!(!plan.uses_rng());
    }
}
