//! `rwbc-bench` — end-to-end perf scenarios with JSON output.
//!
//! ```text
//! rwbc-bench [--list] [--smoke] [--sweep] [--large] [--threads LIST]
//!            [--allow-oversubscribe] [--scenario NAME]... [--trials T]
//!            [--warmup W] [--out-dir DIR] [--tag TAG]
//! rwbc-bench --validate FILE...
//! rwbc-bench --compare BASELINE.json CURRENT.json
//! ```
//!
//! Each selected scenario is run with warmup + timed trials and its
//! result is written to `<out-dir>/BENCH_[<tag>-]<scenario>.json` (see
//! `rwbc_bench::perf` for the schema). `--validate` checks existing
//! files against the schema and exits non-zero on the first failure;
//! `--compare` prints the median-wall-clock speedup of the second file
//! relative to the first.
//!
//! `--sweep` runs the threads-sweep matrix (`clean-er` at n = 4096, or
//! n = 128 combined with `--smoke`) once per thread count in `--threads`
//! (default `1,2,4,8`) and then checks that every workload's
//! deterministic fingerprint is bit-identical across thread counts.
//! `--large` adds the n = 65536 scale point to a full sweep. Requesting
//! more threads than the host exposes is an error unless
//! `--allow-oversubscribe` is passed, in which case the artifact records
//! `oversubscribed: true`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use congest_sim::trace::json::Json;
use rwbc_bench::perf::{
    bench_filename, check_sweep_fingerprints, default_matrix, host_parallelism, run_scenario,
    smoke_matrix, smoke_sweep_matrix, sweep_matrix, validate_bench_json, Mode, Scenario, Topology,
};

struct Options {
    list: bool,
    smoke: bool,
    sweep: bool,
    large: bool,
    allow_oversubscribe: bool,
    threads: Option<Vec<usize>>,
    scenarios: Vec<String>,
    trials: Option<usize>,
    warmup: usize,
    out_dir: PathBuf,
    tag: String,
    validate: Vec<PathBuf>,
    compare: Option<(PathBuf, PathBuf)>,
}

fn usage() -> &'static str {
    "usage: rwbc-bench [--list] [--smoke] [--sweep] [--large] [--threads LIST] \
     [--allow-oversubscribe] [--scenario NAME]... [--trials T] \
     [--warmup W] [--out-dir DIR] [--tag TAG]\n       rwbc-bench --validate FILE...\n       \
     rwbc-bench --compare BASELINE.json CURRENT.json"
}

fn parse_threads_list(raw: &str) -> Result<Vec<usize>, String> {
    let list: Vec<usize> = raw
        .split(',')
        .map(|part| part.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| "--threads expects a comma-separated list of positive integers".to_string())?;
    if list.is_empty() || list.contains(&0) {
        return Err("--threads expects a comma-separated list of positive integers".into());
    }
    Ok(list)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        smoke: false,
        sweep: false,
        large: false,
        allow_oversubscribe: false,
        threads: None,
        scenarios: Vec::new(),
        trials: None,
        warmup: 1,
        out_dir: PathBuf::from("."),
        tag: String::new(),
        validate: Vec::new(),
        compare: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--list" => opts.list = true,
            "--smoke" => opts.smoke = true,
            "--sweep" => opts.sweep = true,
            "--large" => opts.large = true,
            "--allow-oversubscribe" => opts.allow_oversubscribe = true,
            "--threads" => opts.threads = Some(parse_threads_list(&value("--threads")?)?),
            "--scenario" => opts.scenarios.push(value("--scenario")?),
            "--trials" => {
                opts.trials = Some(
                    value("--trials")?
                        .parse()
                        .map_err(|_| "--trials expects a positive integer".to_string())?,
                );
            }
            "--warmup" => {
                opts.warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| "--warmup expects a non-negative integer".to_string())?;
            }
            "--out-dir" => opts.out_dir = PathBuf::from(value("--out-dir")?),
            "--tag" => opts.tag = value("--tag")?,
            "--validate" => {
                opts.validate.extend(args.by_ref().map(PathBuf::from));
                if opts.validate.is_empty() {
                    return Err("--validate expects at least one file".into());
                }
            }
            "--compare" => {
                let a = PathBuf::from(value("--compare")?);
                let b = args
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--compare expects two files")?;
                opts.compare = Some((a, b));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn median_of(doc: &Json, path: &Path) -> Result<f64, String> {
    match doc.get("wall_clock_ms").and_then(|w| w.get("median")) {
        Some(Json::Float(f)) => Ok(*f),
        Some(Json::Int(i)) => Ok(*i as f64),
        _ => Err(format!("{}: missing wall_clock_ms.median", path.display())),
    }
}

/// Warns — loudly, on stderr — when two artifacts were produced in
/// different execution environments: a wall-clock ratio between a run
/// on a 4-core box and one on a 64-core box (or between an honest run
/// and an oversubscribed one) measures the machines, not the code.
fn warn_environment_mismatch(base_doc: &Json, cur_doc: &Json, baseline: &Path, current: &Path) {
    let host = |doc: &Json| doc.get("host_parallelism").and_then(Json::as_u64);
    let oversub = |doc: &Json| doc.get("oversubscribed").and_then(Json::as_bool);
    if let (Some(b), Some(c)) = (host(base_doc), host(cur_doc)) {
        if b != c {
            eprintln!(
                "WARNING: host_parallelism differs: {} ran on {b} hardware threads, \
                 {} on {c}; the speedup below compares machines, not code",
                baseline.display(),
                current.display()
            );
        }
    }
    if let (Some(b), Some(c)) = (oversub(base_doc), oversub(cur_doc)) {
        if b != c {
            eprintln!(
                "WARNING: oversubscription differs: {}={b}, {}={c}; the oversubscribed \
                 side measured scheduler time-slicing, not parallel speedup",
                baseline.display(),
                current.display()
            );
        }
    }
}

fn run_compare(baseline: &Path, current: &Path) -> Result<(), String> {
    let (base_doc, cur_doc) = (load_json(baseline)?, load_json(current)?);
    validate_bench_json(&base_doc).map_err(|e| format!("{}: {e}", baseline.display()))?;
    validate_bench_json(&cur_doc).map_err(|e| format!("{}: {e}", current.display()))?;
    warn_environment_mismatch(&base_doc, &cur_doc, baseline, current);
    let (base, cur) = (
        median_of(&base_doc, baseline)?,
        median_of(&cur_doc, current)?,
    );
    let speedup = base / cur.max(f64::MIN_POSITIVE);
    println!(
        "baseline {:>10.2} ms  current {:>10.2} ms  speedup {speedup:.2}x",
        base, cur
    );
    Ok(())
}

fn select(opts: &Options) -> Result<Vec<Scenario>, String> {
    let matrix = if opts.sweep {
        let threads = opts.threads.clone().unwrap_or_else(|| vec![1, 2, 4, 8]);
        if opts.smoke {
            smoke_sweep_matrix(&threads)
        } else {
            sweep_matrix(&threads, opts.large)
        }
    } else if opts.smoke {
        smoke_matrix()
    } else if let Some(threads) = &opts.threads {
        // An explicit --threads list is honored verbatim: the base
        // matrix plus one n = 4096 parallel scenario per t > 1 (never
        // silently clamped to the host's core count).
        let mut m = default_matrix(1);
        m.extend(
            threads
                .iter()
                .filter(|&&t| t > 1)
                .map(|&t| Scenario::new(Mode::Clean, Topology::Er, 4096, t)),
        );
        m
    } else {
        // No explicit list: size the one parallel scenario to the host.
        let threads_n = std::thread::available_parallelism().map_or(1, |p| p.get().min(8));
        default_matrix(threads_n)
    };
    if opts.scenarios.is_empty() {
        return Ok(matrix);
    }
    let mut picked = Vec::new();
    for want in &opts.scenarios {
        let found = matrix
            .iter()
            .find(|s| &s.name() == want)
            .ok_or_else(|| format!("unknown scenario `{want}` (try --list)"))?;
        picked.push(found.clone());
    }
    Ok(picked)
}

/// Rejects scenarios whose requested thread count exceeds the host's —
/// loudly, instead of silently measuring time-slicing — unless the user
/// opted in with `--allow-oversubscribe`.
fn check_oversubscription(scenarios: &[Scenario], opts: &Options) -> Result<(), String> {
    if opts.allow_oversubscribe {
        return Ok(());
    }
    let Some(host) = host_parallelism() else {
        return Ok(());
    };
    if let Some(s) = scenarios.iter().find(|s| s.threads as u64 > host) {
        return Err(format!(
            "scenario `{}` requests {} threads but this machine exposes {host}; \
             pass --allow-oversubscribe to run it anyway (the artifact will \
             record oversubscribed=true)",
            s.name(),
            s.threads
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !opts.validate.is_empty() {
        for path in &opts.validate {
            match load_json(path).and_then(|doc| {
                validate_bench_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
            }) {
                Ok(()) => println!("{}: ok", path.display()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    if let Some((baseline, current)) = &opts.compare {
        return match run_compare(baseline, current) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let scenarios = match select(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.list {
        for s in &scenarios {
            println!("{}", s.name());
        }
        return ExitCode::SUCCESS;
    }

    if let Err(e) = check_oversubscription(&scenarios, &opts) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("error: creating {}: {e}", opts.out_dir.display());
        return ExitCode::FAILURE;
    }

    let (warmup, smoke) = if opts.smoke {
        (0, true)
    } else {
        (opts.warmup, false)
    };
    let mut results = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let trials = opts
            .trials
            .unwrap_or_else(|| if smoke { 1 } else { scenario.default_trials() });
        let result = run_scenario(scenario, warmup, trials);
        let path = opts
            .out_dir
            .join(bench_filename(&opts.tag, &scenario.name()));
        let doc = result.to_json();
        if let Err(e) = validate_bench_json(&doc) {
            eprintln!("error: emitted JSON failed self-validation: {e}");
            return ExitCode::FAILURE;
        }
        let mut text = doc.to_json();
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "{:<24} median {:>9.2} ms  p95 {:>9.2} ms  rounds {:>6}  msgs {:>12}  -> {}",
            scenario.name(),
            result.median_ms(),
            result.p95_ms(),
            result.rounds,
            result.total_messages,
            path.display()
        );
        results.push(result);
    }
    // Every run doubles as a determinism gate: workloads that appear at
    // more than one thread count must fingerprint identically. Outside
    // a sweep the groups are singletons and this is a no-op.
    if let Err(e) = check_sweep_fingerprints(&results) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if opts.sweep {
        println!("sweep fingerprints bit-identical across thread counts");
    }
    ExitCode::SUCCESS
}
