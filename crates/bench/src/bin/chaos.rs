//! `rwbc-chaos` — data-integrity chaos tooling.
//!
//! ```text
//! rwbc-chaos run    (--preset NAME | --plan FILE) [--reliable] [--n N] [--seed S]
//! rwbc-chaos fuzz   [--seed S] [--budget CASES]
//! rwbc-chaos shrink (--preset NAME | --plan FILE) [--property P]
//!                   [--reliable] [--max-tests T] [--out FILE]
//! rwbc-chaos replay --plan FILE [--property P] [--reliable]
//! rwbc-chaos presets
//! ```
//!
//! `run` executes the full RWBC pipeline on a small deterministic graph
//! under a fault plan and prints the degradation report. `fuzz` mutates
//! real encoded artifacts and feeds them to every decoder in the repo,
//! failing if any decode panics (the CI gate). `shrink` minimizes a
//! failing plan to the smallest schedule that still violates the chosen
//! property (`walks-lost`, `not-clean`, or `run-error`) and writes the
//! repro as JSON. `replay` re-checks a previously shrunk plan file.

use std::path::PathBuf;
use std::process::ExitCode;

use congest_sim::trace::json::Json;
use rwbc_bench::chaos::{
    fuzz_all_codecs, plan_from_json, plan_to_json, preset, shrink_plan, ChaosProperty,
    ChaosWorkload, PRESET_NAMES,
};

struct Options {
    command: String,
    preset: Option<String>,
    plan: Option<PathBuf>,
    property: ChaosProperty,
    reliable: bool,
    n: Option<usize>,
    seed: u64,
    budget: usize,
    max_tests: usize,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: rwbc-chaos run    (--preset NAME | --plan FILE) [--reliable] [--n N] [--seed S]\n       \
     rwbc-chaos fuzz   [--seed S] [--budget CASES]\n       \
     rwbc-chaos shrink (--preset NAME | --plan FILE) [--property P] [--reliable] \
     [--max-tests T] [--out FILE]\n       \
     rwbc-chaos replay --plan FILE [--property P] [--reliable]\n       \
     rwbc-chaos presets\n\n\
     properties: walks-lost (default), not-clean, run-error"
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| usage().to_string())?;
    let mut opts = Options {
        command,
        preset: None,
        plan: None,
        property: ChaosProperty::WalksLost,
        reliable: false,
        n: None,
        seed: 0x000C_4A05,
        budget: 400,
        max_tests: 600,
        out: None,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--preset" => opts.preset = Some(value("--preset")?),
            "--plan" => opts.plan = Some(PathBuf::from(value("--plan")?)),
            "--property" => {
                let name = value("--property")?;
                opts.property = ChaosProperty::from_str_opt(&name)
                    .ok_or_else(|| format!("unknown property `{name}`"))?;
            }
            "--reliable" => opts.reliable = true,
            "--n" => {
                opts.n = Some(
                    value("--n")?
                        .parse()
                        .map_err(|_| "--n expects a positive integer".to_string())?,
                );
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an unsigned integer".to_string())?;
            }
            "--budget" => {
                opts.budget = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget expects a positive integer".to_string())?;
            }
            "--max-tests" => {
                opts.max_tests = value("--max-tests")?
                    .parse()
                    .map_err(|_| "--max-tests expects a positive integer".to_string())?;
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn load_plan(opts: &Options) -> Result<congest_sim::FaultPlan, String> {
    if let Some(name) = &opts.preset {
        let (plan, _) = preset(name)
            .ok_or_else(|| format!("unknown preset `{name}` (try `rwbc-chaos presets`)"))?;
        return Ok(plan);
    }
    let path = opts
        .plan
        .as_ref()
        .ok_or("expected --preset NAME or --plan FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    plan_from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

fn workload(opts: &Options) -> ChaosWorkload {
    let mut w = ChaosWorkload {
        reliable: opts.reliable,
        ..ChaosWorkload::default()
    };
    if let Some(n) = opts.n {
        w.n = n;
    }
    w
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let plan = load_plan(opts)?;
    let w = workload(opts);
    let graph = w.build_graph();
    let cfg = w.build_config(&plan);
    let run =
        rwbc::distributed::approximate(&graph, &cfg).map_err(|e| format!("run failed: {e}"))?;
    let d = &run.degradation;
    println!(
        "n {}  reliable {}  checksums {}",
        w.n, cfg.reliable, cfg.checksums
    );
    println!(
        "clean {}  walks_lost {}  relaunched {}  subphases {}  cells_missing {}",
        d.is_clean(),
        d.walks_lost,
        d.walks_relaunched,
        d.walk_subphases,
        d.count_cells_missing
    );
    println!(
        "corrupt_frames_detected {}  links_quarantined {}  target_redraws {}",
        d.corrupt_frames_detected, d.links_quarantined, d.target_redraws
    );
    Ok(())
}

fn cmd_fuzz(opts: &Options) -> Result<(), String> {
    let report = fuzz_all_codecs(opts.seed, opts.budget);
    println!(
        "fuzz seed {:#x}  budget {} cases/codec",
        report.seed, opts.budget
    );
    for codec in &report.codecs {
        println!(
            "{:<12} cases {:>6}  accepted {:>6}  rejected {:>6}  panics {}",
            codec.name,
            codec.cases,
            codec.accepted,
            codec.rejected,
            codec.panics.len()
        );
        for msg in &codec.panics {
            eprintln!("  PANIC: {msg}");
        }
    }
    if report.is_clean() {
        println!("{} cases, zero panics", report.total_cases());
        Ok(())
    } else {
        Err("decoder panicked on mutated input".into())
    }
}

fn cmd_shrink(opts: &Options) -> Result<(), String> {
    let plan = load_plan(opts)?;
    let w = workload(opts);
    if !w.fails(&plan, opts.property) {
        return Err(format!(
            "input plan does not fail `{}` on this workload; nothing to shrink",
            opts.property.as_str()
        ));
    }
    let outcome = shrink_plan(&w, &plan, opts.property, opts.max_tests);
    for step in &outcome.steps {
        println!("  - {step}");
    }
    println!(
        "shrunk in {} steps ({} pipeline runs), property `{}` still fails",
        outcome.steps.len(),
        outcome.tests,
        opts.property.as_str()
    );
    let mut text = plan_to_json(&outcome.plan).to_json();
    text.push('\n');
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("minimal repro written to {}", path.display());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_replay(opts: &Options) -> Result<(), String> {
    let plan = load_plan(opts)?;
    let w = workload(opts);
    if w.fails(&plan, opts.property) {
        println!("plan still fails `{}`", opts.property.as_str());
        Ok(())
    } else {
        Err(format!(
            "plan no longer fails `{}` — repro is stale",
            opts.property.as_str()
        ))
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match opts.command.as_str() {
        "run" => cmd_run(&opts),
        "fuzz" => cmd_fuzz(&opts),
        "shrink" => cmd_shrink(&opts),
        "replay" => cmd_replay(&opts),
        "presets" => {
            for name in PRESET_NAMES {
                let (_, desc) = preset(name).expect("preset table out of sync");
                println!("{name:<12} {desc}");
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
