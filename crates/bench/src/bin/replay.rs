//! `rwbc-replay` — load-replay a running (or self-hosted) `rwbc-serve`
//! daemon and emit a `BENCH_serve-*.json` artifact.
//!
//! ```text
//! rwbc-replay --spawn [--n N] [--seed S] [--threads T] [--checkpoint FILE]
//!             [--mode closed|open] [--clients C] [--rate-hz R]
//!             [--duration-s SEC] [--deadline-ms MS] [--out-dir DIR] [--tag TAG]
//! rwbc-replay --addr A --n N [load flags as above] [--out-dir DIR] [--tag TAG]
//! rwbc-replay --validate FILE...
//! ```
//!
//! `--spawn` hosts the daemon in-process (checkpointing to a scratch
//! file so the artifact's checkpoint-overhead fields are populated),
//! waits for readiness, replays, drains, and writes
//! `BENCH_[<tag>-]serve-er-n<N>-t<T>.json`. `--addr` replays an
//! external daemon instead. `--validate` checks existing artifacts
//! against the schema.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use congest_sim::trace::json::Json;
use rwbc_bench::perf::bench_filename;
use rwbc_bench::serve_load::{
    run_replay, validate_serve_bench_json, ReplayConfig, ReplayMode, ServeBenchResult,
};
use rwbc_serve::{Client, Daemon, Response, ServeConfig, SolverConfig};

struct Options {
    spawn: bool,
    addr: Option<String>,
    n: usize,
    seed: u64,
    threads: usize,
    checkpoint: Option<PathBuf>,
    mode: String,
    clients: usize,
    rate_hz: f64,
    duration_s: f64,
    deadline_ms: u32,
    metrics_every_ms: u64,
    out_dir: PathBuf,
    tag: String,
    validate: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: rwbc-replay --spawn [--n N] [--seed S] [--threads T] [--checkpoint FILE]\n       \
     \t[--mode closed|open] [--clients C] [--rate-hz R] [--duration-s SEC]\n       \
     \t[--deadline-ms MS] [--metrics-every-ms MS] [--out-dir DIR] [--tag TAG]\n       \
     rwbc-replay --addr A --n N [load flags] [--out-dir DIR] [--tag TAG]\n       \
     rwbc-replay --validate FILE..."
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        spawn: false,
        addr: None,
        n: 1024,
        seed: 42,
        threads: 1,
        checkpoint: None,
        mode: "closed".to_string(),
        clients: 4,
        rate_hz: 200.0,
        duration_s: 3.0,
        deadline_ms: 1000,
        metrics_every_ms: 250,
        out_dir: PathBuf::from("."),
        tag: String::new(),
        validate: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        fn num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("{flag}: bad value `{raw}`"))
        }
        match arg.as_str() {
            "--spawn" => opts.spawn = true,
            "--addr" => opts.addr = Some(value("--addr")?),
            "--n" => opts.n = num("--n", &value("--n")?)?,
            "--seed" => opts.seed = num("--seed", &value("--seed")?)?,
            "--threads" => opts.threads = num("--threads", &value("--threads")?)?,
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--mode" => opts.mode = value("--mode")?,
            "--clients" => opts.clients = num("--clients", &value("--clients")?)?,
            "--rate-hz" => opts.rate_hz = num("--rate-hz", &value("--rate-hz")?)?,
            "--duration-s" => opts.duration_s = num("--duration-s", &value("--duration-s")?)?,
            "--deadline-ms" => opts.deadline_ms = num("--deadline-ms", &value("--deadline-ms")?)?,
            "--metrics-every-ms" => {
                opts.metrics_every_ms = num("--metrics-every-ms", &value("--metrics-every-ms")?)?;
            }
            "--out-dir" => opts.out_dir = PathBuf::from(value("--out-dir")?),
            "--tag" => opts.tag = value("--tag")?,
            "--validate" => {
                opts.validate.extend(args.by_ref().map(PathBuf::from));
                if opts.validate.is_empty() {
                    return Err("--validate expects at least one file".into());
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn run_validate(paths: &[PathBuf]) -> ExitCode {
    for path in paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("{}: {e}", path.display())))
            .and_then(|doc| {
                validate_serve_bench_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
            });
        match outcome {
            Ok(()) => println!("{}: ok", path.display()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn wait_ready(addr: &str) -> Result<(), String> {
    // Poll health on a wall-clock budget rather than riding the client's
    // backoff loop: the n=1024 solve runs tens of thousands of CONGEST
    // rounds, which takes minutes, far past any sane retry count.
    let deadline = std::time::Instant::now() + Duration::from_secs(900);
    let client = Client::new(addr);
    loop {
        match client.health() {
            Ok(Response::Health(h)) if h.ready => return Ok(()),
            Ok(Response::Health(_)) | Ok(Response::NotReady { .. }) => {}
            Ok(other) => return Err(format!("daemon not serving: {other:?}")),
            Err(e) if std::time::Instant::now() >= deadline => {
                return Err(format!("daemon never became ready: {e}"));
            }
            Err(_) => {}
        }
        if std::time::Instant::now() >= deadline {
            return Err("daemon never became ready within 900 s".to_string());
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn run(opts: &Options) -> Result<(), String> {
    let mode = match opts.mode.as_str() {
        "closed" => ReplayMode::Closed,
        "open" => {
            if !(opts.rate_hz.is_finite() && opts.rate_hz > 0.0) {
                return Err("--rate-hz must be positive for open-loop replay".into());
            }
            ReplayMode::Open {
                rate_hz: opts.rate_hz,
            }
        }
        other => return Err(format!("unknown --mode `{other}` (closed|open)")),
    };

    // Self-hosted daemon, unless an external address was given.
    let mut hosted: Option<Daemon> = None;
    let scratch_ckpt;
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => {
            if !opts.spawn {
                return Err(format!("need --spawn or --addr\n{}", usage()));
            }
            let mut solver = SolverConfig::new(opts.n, opts.seed);
            solver.threads = opts.threads;
            // Checkpoint by default so the artifact's checkpoint-overhead
            // fields measure the real periodic-checkpoint cost.
            solver.checkpoint_path = Some(match &opts.checkpoint {
                Some(path) => path.clone(),
                None => {
                    scratch_ckpt = std::env::temp_dir().join(format!(
                        "rwbc-replay-{}-n{}.ckpt",
                        std::process::id(),
                        opts.n
                    ));
                    scratch_ckpt.clone()
                }
            });
            solver.checkpoint_every_rounds = 16;
            let daemon =
                Daemon::start(ServeConfig::new(solver)).map_err(|e| format!("bind failed: {e}"))?;
            let addr = daemon.local_addr().to_string();
            hosted = Some(daemon);
            addr
        }
    };

    wait_ready(&addr)?;
    let config = ReplayConfig {
        addr,
        mode,
        clients: opts.clients.max(1),
        duration: Duration::from_secs_f64(opts.duration_s.max(0.1)),
        deadline_ms: opts.deadline_ms,
        seed: opts.seed,
        n: opts.n,
        metrics_every: Some(Duration::from_millis(opts.metrics_every_ms.max(1))),
    };
    let report = run_replay(&config);

    if let Some(daemon) = hosted {
        daemon.drain();
        daemon.wait();
    }

    let scenario = format!("serve-er-n{}-t{}", opts.n, opts.threads);
    let result = ServeBenchResult {
        scenario: scenario.clone(),
        n: opts.n,
        threads: opts.threads,
        walks: 4,
        length: 64,
        seed: opts.seed,
        report,
    };
    let doc = result.to_json();
    validate_serve_bench_json(&doc)
        .map_err(|e| format!("emitted JSON failed self-validation: {e}"))?;
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("creating {}: {e}", opts.out_dir.display()))?;
    let path = opts.out_dir.join(bench_filename(&opts.tag, &scenario));
    let mut text = doc.to_json();
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;

    let report = &result.report;
    let o = &report.outcomes;
    println!(
        "{scenario:<22} {:>8.1} req/s  p50 {:>7} us  p99 {:>7} us  served {:>6}  shed {:>4}  \
         timeout {:>4}  -> {}",
        report.throughput_rps(),
        report.p50_us(),
        report.p99_us(),
        o.served,
        o.overloaded,
        o.timed_out,
        path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !opts.validate.is_empty() {
        return run_validate(&opts.validate);
    }
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
