//! `rwbc-trace` — record and inspect CONGEST simulator traces.
//!
//! ```text
//! rwbc-trace record OUT.jsonl [--preset NAME] [--seed S] [--quick]
//! rwbc-trace summarize FILE.jsonl
//! rwbc-trace timeline FILE.jsonl [--limit N]
//! rwbc-trace hot-edges FILE.jsonl [--top K]
//! rwbc-trace diff A.jsonl B.jsonl
//! rwbc-trace validate FILE.jsonl
//!
//! presets:
//!   clean  (default)  fault-free approximation run on the Fig. 1 graph
//!   chaos             5% Bernoulli drops behind reliable transport (E11)
//!   kills             permanent node crash + partition-tolerant recovery (E12)
//!   cut               exact collection on the lower-bound gadget, cut metered (E6)
//! ```
//!
//! Traces are line-delimited JSON with a stable schema (see the
//! `congest_sim::trace::jsonl` module docs). Everything except the
//! `elapsed_us` wall-clock field of `phase_end` lines is deterministic in
//! `(preset, seed)`; `diff` ignores that field.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::trace::jsonl::{decode_event, decode_trace, encode_event};
use congest_sim::trace::TRACE_SCHEMA_VERSION;
use congest_sim::{FaultPlan, JsonlTracer, NodeCrash, SimConfig, TraceEvent};
use rwbc::distributed::{approximate_traced, collect_and_solve_traced, DistributedConfig};
use rwbc::lower_bound::LowerBoundInstance;
use rwbc::monte_carlo::TargetStrategy;
use rwbc_bench::suite::e6::m_for;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rwbc-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(format!("missing subcommand\n{USAGE}"));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "record" => record(rest),
        "summarize" => summarize(rest),
        "timeline" => timeline(rest),
        "hot-edges" => hot_edges(rest),
        "diff" => diff(rest),
        "validate" => validate(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}

const USAGE: &str = "usage:
  rwbc-trace record OUT.jsonl [--preset clean|chaos|kills|cut] [--seed S] [--quick]
  rwbc-trace summarize FILE.jsonl
  rwbc-trace timeline FILE.jsonl [--limit N]
  rwbc-trace hot-edges FILE.jsonl [--top K]
  rwbc-trace diff A.jsonl B.jsonl
  rwbc-trace validate FILE.jsonl";

/// Pulls `--flag VALUE` out of `args`, returning the remaining
/// positional arguments.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

// ---------------------------------------------------------------- record

fn record(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let preset = take_flag(&mut args, "--preset")?.unwrap_or_else(|| "clean".to_string());
    let seed: u64 = take_flag(&mut args, "--seed")?
        .map(|s| s.parse().map_err(|_| format!("bad seed '{s}'")))
        .transpose()?
        .unwrap_or(42);
    let quick = take_switch(&mut args, "--quick");
    let [out_path] = args.as_slice() else {
        return Err(format!("record takes exactly one output path\n{USAGE}"));
    };

    let file = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut tracer = JsonlTracer::new(BufWriter::new(file));
    let summary = match preset.as_str() {
        "clean" => record_approximate(&mut tracer, seed, quick, FaultPlan::default(), false, false),
        "chaos" => record_approximate(
            &mut tracer,
            seed,
            quick,
            FaultPlan::default().with_drop_probability(0.05),
            true,
            false,
        ),
        "kills" => record_approximate(&mut tracer, seed, quick, FaultPlan::default(), false, true),
        "cut" => record_cut(&mut tracer, seed, quick),
        other => return Err(format!("unknown preset '{other}' (clean|chaos|kills|cut)")),
    }?;
    let lines = tracer.lines();
    let mut out = tracer
        .finish()
        .map_err(|e| format!("write {out_path}: {e}"))?;
    out.flush().map_err(|e| format!("flush {out_path}: {e}"))?;
    println!("wrote {lines} events to {out_path} (preset {preset}, seed {seed})");
    println!("{summary}");
    Ok(())
}

fn record_approximate(
    tracer: &mut dyn congest_sim::Tracer,
    seed: u64,
    quick: bool,
    faults: FaultPlan,
    reliable: bool,
    kills: bool,
) -> Result<String, String> {
    let (g, labels) = rwbc_graph::generators::fig1_graph(3).expect("fig1 graph");
    let (k, l) = if quick { (60, 30) } else { (300, 60) };
    let mut cfg = DistributedConfig::builder()
        .walks(k)
        .length(l)
        .seed(seed)
        .target(TargetStrategy::Fixed(0))
        .reliable(reliable)
        .build()
        .map_err(|e| e.to_string())?;
    let mut faults = faults;
    if kills {
        // E12-style standing damage: a clique member dies for good
        // mid-walk; the partition-tolerant pipeline detects, patches, and
        // relaunches.
        faults = faults.with_node_crash(NodeCrash {
            node: labels.left[1],
            crash_round: 30,
            recover_round: None,
        });
        cfg.partition_tolerant = true;
        cfg.walk_retries = 3;
    }
    cfg.sim = SimConfig::default()
        .with_seed(seed)
        .with_bandwidth_coeff(16)
        .with_faults(faults);
    let run = approximate_traced(&g, &cfg, tracer).map_err(|e| e.to_string())?;
    let mut s = String::new();
    s.push_str(&format!(
        "target {}  total rounds {}  compliant {}\n",
        run.target,
        run.total_rounds(),
        run.congest_compliant()
    ));
    s.push_str("walk phase:\n");
    s.push_str(&run.walk_stats.summary());
    s.push_str("count phase:\n");
    s.push_str(&run.count_stats.summary());
    Ok(s)
}

fn record_cut(
    tracer: &mut dyn congest_sim::Tracer,
    seed: u64,
    quick: bool,
) -> Result<String, String> {
    let n_subsets = if quick { 2 } else { 4 };
    let m = m_for(n_subsets);
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = LowerBoundInstance::random(m, n_subsets, &mut rng);
    let (graph, labels) = inst.build();
    let cut = labels.alice_bob_cut();
    let sim = SimConfig::default().with_seed(seed).with_cut(cut.clone());
    let run = collect_and_solve_traced(&graph, labels.p, sim, tracer).map_err(|e| e.to_string())?;
    let mut s = String::new();
    s.push_str(&format!(
        "gadget N={n_subsets} M={m}: {} nodes, {} cut edges, {} edges collected\n",
        graph.node_count(),
        cut.len(),
        run.edges_collected
    ));
    s.push_str(&run.stats.summary());
    Ok(s)
}

// ------------------------------------------------------------- inspection

fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("read {path}: {e}"))?;
    decode_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn summarize(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!("summarize takes exactly one trace path\n{USAGE}"));
    };
    let events = load_trace(path)?;
    let p = congest_sim::trace::TraceProfile::from_events(&events);
    println!("{path}: schema {}, {} events", p.schema, p.events);
    println!();
    println!(
        "  {:<16} {:>8} {:>12} {:>14} {:>12} {:>10}",
        "phase", "rounds", "messages", "bits", "cut bits", "ms"
    );
    for ph in &p.phases {
        println!(
            "  {:<16} {:>8} {:>12} {:>14} {:>12} {:>10.1}",
            ph.name,
            ph.rounds,
            ph.messages,
            ph.bits,
            ph.cut_bits,
            ph.elapsed_us as f64 / 1000.0
        );
    }
    println!();
    println!(
        "  totals: {} messages, {} bits over {} traced rounds",
        p.total_messages(),
        p.total_bits(),
        p.rounds.len()
    );
    let t = &p.totals;
    println!(
        "  faults: {} dropped, {} duplicated, {} delayed, {} node-down, {} node-up",
        t.dropped, t.duplicated, t.delayed, t.node_down, t.node_up
    );
    println!(
        "  delivery: {} retransmissions, {} duplicates suppressed, {} dead links",
        t.retransmissions, t.duplicates_suppressed, t.dead_links
    );
    println!();
    println!("  bits per round:");
    print!("{}", p.bits_per_round.render(40));
    if !p.edges.is_empty() {
        println!();
        println!("  hottest edges:");
        for ((from, to), e) in p.hottest_edges(5) {
            println!(
                "    {from:>4} -> {to:<4} {:>12} bits  {:>8} msgs  peak {:>6} bits/round{}",
                e.bits,
                e.messages,
                e.max_bits_round,
                if e.cut { "  [cut]" } else { "" }
            );
        }
    }
    Ok(())
}

fn timeline(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let limit: usize = take_flag(&mut args, "--limit")?
        .map(|s| s.parse().map_err(|_| format!("bad limit '{s}'")))
        .transpose()?
        .unwrap_or(50);
    let [path] = args.as_slice() else {
        return Err(format!("timeline takes exactly one trace path\n{USAGE}"));
    };
    let events = load_trace(path)?;
    let p = congest_sim::trace::TraceProfile::from_events(&events);
    let peak = p.rounds.iter().map(|r| r.bits).max().unwrap_or(0);
    println!(
        "  {:<16} {:>6} {:>10} {:>12} {:>9} {:>7} {:>8} {:>5}",
        "phase", "round", "messages", "bits", "cut bits", "drops", "retrans", "dead"
    );
    for r in p.rounds.iter().take(limit) {
        let bar = if peak == 0 {
            0
        } else {
            ((r.bits as f64 / peak as f64) * 24.0).ceil() as usize
        };
        println!(
            "  {:<16} {:>6} {:>10} {:>12} {:>9} {:>7} {:>8} {:>5}  {}",
            p.phases[r.phase].name,
            r.round,
            r.messages,
            r.bits,
            r.cut_bits,
            r.dropped,
            r.retransmissions,
            r.dead_links,
            "#".repeat(bar)
        );
    }
    if p.rounds.len() > limit {
        println!(
            "  ... {} more rounds (raise --limit)",
            p.rounds.len() - limit
        );
    }
    let cut = p.cut_timeline();
    if !cut.is_empty() {
        let total: u64 = cut.iter().map(|&(_, _, b)| b).sum();
        println!();
        println!(
            "  cut traffic: {} bits over {} rounds (first at {} round {}, last at {} round {})",
            total,
            cut.len(),
            cut[0].0,
            cut[0].1,
            cut[cut.len() - 1].0,
            cut[cut.len() - 1].1,
        );
    }
    Ok(())
}

fn hot_edges(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let top: usize = take_flag(&mut args, "--top")?
        .map(|s| s.parse().map_err(|_| format!("bad top '{s}'")))
        .transpose()?
        .unwrap_or(10);
    let [path] = args.as_slice() else {
        return Err(format!("hot-edges takes exactly one trace path\n{USAGE}"));
    };
    let events = load_trace(path)?;
    let p = congest_sim::trace::TraceProfile::from_events(&events);
    if p.edges.is_empty() {
        return Err("trace has no per-edge samples (recorded without edge traffic?)".to_string());
    }
    println!(
        "  {:>6} {:>6} {:>14} {:>10} {:>16} {:>5}",
        "from", "to", "bits", "messages", "peak bits/round", "cut"
    );
    for ((from, to), e) in p.hottest_edges(top) {
        println!(
            "  {from:>6} {to:>6} {:>14} {:>10} {:>16} {:>5}",
            e.bits,
            e.messages,
            e.max_bits_round,
            if e.cut { "yes" } else { "" }
        );
    }
    Ok(())
}

fn diff(args: &[String]) -> Result<(), String> {
    let [path_a, path_b] = args else {
        return Err(format!("diff takes exactly two trace paths\n{USAGE}"));
    };
    let mut a = load_trace(path_a)?;
    let mut b = load_trace(path_b)?;
    for e in a.iter_mut().chain(b.iter_mut()) {
        e.strip_wall_clock();
    }
    let mut divergence = None;
    for (i, (ea, eb)) in a.iter().zip(&b).enumerate() {
        if ea != eb {
            divergence = Some(i);
            break;
        }
    }
    match divergence {
        None if a.len() == b.len() => {
            println!(
                "traces identical: {} events (wall-clock fields ignored)",
                a.len()
            );
            Ok(())
        }
        None => {
            let (longer, shorter) = if a.len() > b.len() {
                (path_a, path_b)
            } else {
                (path_b, path_a)
            };
            Err(format!(
                "{shorter} is a strict prefix of {longer}: {} vs {} events",
                a.len().min(b.len()),
                a.len().max(b.len())
            ))
        }
        Some(i) => Err(format!(
            "first divergence at event {i}:\n  {path_a}: {}\n  {path_b}: {}",
            encode_event(&a[i]),
            encode_event(&b[i])
        )),
    }
}

fn validate(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!("validate takes exactly one trace path\n{USAGE}"));
    };
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("read {path}: {e}"))?;
    let mut checked = 0u64;
    let mut schema = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = decode_event(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        // Canonical round-trip: re-encoding the decoded event and
        // decoding again must reproduce it exactly.
        let reencoded = encode_event(&event);
        let again = decode_event(&reencoded)
            .map_err(|e| format!("{path}:{}: re-decode failed: {e}", lineno + 1))?;
        if again != event {
            return Err(format!(
                "{path}:{}: round-trip mismatch:\n  decoded:  {event:?}\n  re-coded: {again:?}",
                lineno + 1
            ));
        }
        if let TraceEvent::Meta { schema: s } = event {
            schema = Some(s);
        }
        checked += 1;
    }
    match schema {
        Some(s) if s <= TRACE_SCHEMA_VERSION => {
            println!("{path}: {checked} lines valid (schema {s})");
            Ok(())
        }
        Some(s) => Err(format!(
            "{path}: schema {s} is newer than this tool supports ({TRACE_SCHEMA_VERSION})"
        )),
        None => Err(format!("{path}: no meta header line")),
    }
}
