//! CLI entry point regenerating every experiment of `EXPERIMENTS.md`.
//!
//! ```text
//! experiments [IDS...] [--quick]
//!
//!   IDS      experiment ids among e1..e8, or `all` (default: all)
//!   --quick  smaller sizes / fewer repetitions (smoke mode)
//! ```

use std::process::ExitCode;

use rwbc_bench::suite::{run_by_id, ALL_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut ids: Vec<String> = args
        .into_iter()
        .filter(|a| a != "--quick")
        .map(|a| a.to_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        match run_by_id(id, quick) {
            Some(tables) => {
                println!(
                    "==================== {} ====================",
                    id.to_uppercase()
                );
                for t in tables {
                    println!("{t}");
                }
            }
            None => {
                eprintln!(
                    "unknown experiment id '{id}'; known: {}",
                    ALL_IDS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
