//! **E10 (extension) — the random walk problem (paper Section II-D).**
//! The paper cites Das Sarma et al.'s `Õ(√(lD))` short-walk-stitching
//! algorithm and explains why it cannot be used for RWBC. This experiment
//! runs our implementation of that algorithm against the `Θ(l)` naive
//! token forwarding, across walk lengths and graph diameters, making the
//! `√(lD)` vs `l` separation — and its *absence* in the RWBC setting —
//! concrete.

use congest_sim::SimConfig;
use rwbc::random_walk::{naive_walk, stitched_walk, StitchParams};
use rwbc_graph::generators::{cycle, star, torus_2d};
use rwbc_graph::traversal::diameter;
use rwbc_graph::Graph;

use crate::table::{fmt2, Table};

/// Typed result for one (graph, l) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkRow {
    /// Family label.
    pub family: &'static str,
    /// Nodes.
    pub n: usize,
    /// Diameter.
    pub d: usize,
    /// Walk length.
    pub l: usize,
    /// Naive rounds (always exactly `l`).
    pub naive_rounds: usize,
    /// Stitched rounds (phase 1 + phase 2).
    pub stitched_rounds: usize,
    /// `stitched / sqrt(l * D)` — bounded if the theory holds.
    pub normalized: f64,
}

/// Measures one cell.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn cell(family: &'static str, graph: &Graph, l: usize, seed: u64) -> WalkRow {
    let d = diameter(graph).expect("connected graph");
    let naive = naive_walk(graph, 0, l, SimConfig::default().with_seed(seed)).expect("naive");
    let params = StitchParams::optimized(l, d);
    let stitched =
        stitched_walk(graph, 0, l, params, SimConfig::default().with_seed(seed)).expect("stitch");
    WalkRow {
        family,
        n: graph.node_count(),
        d,
        l,
        naive_rounds: naive.rounds,
        stitched_rounds: stitched.rounds,
        normalized: stitched.rounds as f64 / (l as f64 * d as f64).sqrt(),
    }
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let lengths: &[usize] = if quick {
        &[128, 512]
    } else {
        &[128, 512, 2048]
    };
    let graphs: Vec<(&'static str, Graph)> = vec![
        ("star (D = 2)", star(16).unwrap()),
        ("torus (D = 8)", torus_2d(8, 8).unwrap()),
        ("cycle (D = 16)", cycle(32).unwrap()),
    ];
    let mut t = Table::new(
        "E10 (extension): random walk problem — naive Theta(l) vs stitched O(sqrt(lD))",
        [
            "family",
            "n",
            "D",
            "l",
            "naive rounds",
            "stitched rounds",
            "stitched/sqrt(lD)",
        ],
    );
    for (family, g) in &graphs {
        for &l in lengths {
            let r = cell(family, g, l, 100 + l as u64);
            t.add_row([
                r.family.to_string(),
                r.n.to_string(),
                r.d.to_string(),
                r.l.to_string(),
                r.naive_rounds.to_string(),
                r.stitched_rounds.to_string(),
                fmt2(r.normalized),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stitched_wins_at_long_lengths_on_low_diameter() {
        // Torus: diameter small relative to l, and degree-uniform so
        // phase-1 congestion stays mild (on a star the hub bottleneck
        // eats part of the win — see EXPERIMENTS.md).
        let g = torus_2d(6, 6).unwrap();
        let r = cell("torus", &g, 512, 7);
        assert_eq!(r.naive_rounds, 512);
        assert!(
            r.stitched_rounds < r.naive_rounds / 2,
            "stitched {} vs naive {}",
            r.stitched_rounds,
            r.naive_rounds
        );
    }

    #[test]
    fn normalized_rounds_are_bounded() {
        let g = torus_2d(6, 6).unwrap();
        let r = cell("torus", &g, 256, 8);
        assert!(r.normalized < 12.0, "normalized {}", r.normalized);
    }
}
