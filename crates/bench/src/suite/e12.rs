//! **E12 (extension) — permanent-failure sweep: failure detection,
//! survivor-side recovery, and partition tolerance.** E11 injects faults
//! the reliable layer can outlast; this experiment kills nodes *forever*
//! mid-walk (at most 5% of the network, per the acceptance bar) and runs
//! the partition-tolerant pipeline: the failure detector declares the dead
//! channels, survivors re-sample walks away from them, the target is
//! re-drawn if its component is lost, and the estimate is normalized to
//! the surviving giant component. Accuracy is judged against the exact
//! solver *on the survivor graph* — the right ground truth once part of
//! the network is simply gone.

use congest_sim::{FaultPlan, NodeCrash, SimConfig};
use rwbc::distributed::{approximate, DistributedConfig, DistributedRun};
use rwbc::exact::newman;
use rwbc::monte_carlo::TargetStrategy;
use rwbc_graph::{Graph, NodeId};

use crate::table::{fmt2, fmt4, Table};

/// Typed result for one kill scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PermRow {
    /// Scenario label (which node class was killed).
    pub scenario: &'static str,
    /// Mean relative error over the surviving giant component, against
    /// exact RWBC of the giant subgraph.
    pub mean_err_giant: f64,
    /// Channels the failure detector declared permanently dead.
    pub dead_links: usize,
    /// Nodes whose every incident channel was declared dead.
    pub dead_nodes: usize,
    /// Connected components of the survivor graph.
    pub components: usize,
    /// Nodes in the giant (estimating) component.
    pub giant_nodes: usize,
    /// Giant-component walk completion, `completed / expected`.
    pub giant_coverage: f64,
    /// Walk tokens lost on cut-off components.
    pub walks_lost: u64,
    /// Times the absorbing target had to be re-drawn among survivors.
    pub target_redraws: usize,
    /// Total rounds across both phases and all recovery sub-phases.
    pub rounds: usize,
}

fn perm_config(seed: u64, walks: usize, length: usize, faults: FaultPlan) -> DistributedConfig {
    let mut cfg = DistributedConfig::builder()
        .walks(walks)
        .length(length)
        .seed(seed)
        .target(TargetStrategy::Fixed(0))
        .partition_tolerant(true)
        .build()
        .expect("params");
    cfg.walk_retries = 3;
    cfg.sim = SimConfig::default()
        .with_bandwidth_coeff(16)
        .with_faults(faults);
    cfg
}

/// Exact RWBC of the giant component's induced subgraph, mapped back to
/// original node ids (non-members read 0.0).
fn giant_exact(g: &Graph, members: &[NodeId]) -> Vec<f64> {
    let n = g.node_count();
    let mut relabel: Vec<Option<NodeId>> = vec![None; n];
    for (i, &v) in members.iter().enumerate() {
        relabel[v] = Some(i);
    }
    let sub = Graph::from_edges(
        members.len(),
        g.edges()
            .filter_map(|e| Some((relabel[e.u]?, relabel[e.v]?))),
    )
    .expect("giant subgraph");
    let exact = newman(&sub).expect("exact on giant");
    (0..n)
        .map(|v| relabel[v].map_or(0.0, |w| exact[w]))
        .collect()
}

/// Distills one run into a [`PermRow`].
fn summarize(g: &Graph, scenario: &'static str, run: &DistributedRun) -> PermRow {
    let giant = run
        .degradation
        .components
        .iter()
        .max_by_key(|c| c.nodes)
        .expect("at least one component");
    // The giant's members are exactly the non-dead nodes of its component;
    // recover them from the survivor topology the report describes.
    let dead: std::collections::BTreeSet<(NodeId, NodeId)> = run
        .degradation
        .dead_links_detected
        .iter()
        .copied()
        .collect();
    let survivor = Graph::from_edges(
        g.node_count(),
        g.edges()
            .filter(|e| !dead.contains(&(e.u.min(e.v), e.u.max(e.v))))
            .map(|e| (e.u, e.v)),
    )
    .expect("survivor graph");
    let comp = rwbc_graph::traversal::connected_components(&survivor).0;
    let giant_id = comp[run.target];
    let members: Vec<NodeId> = (0..g.node_count())
        .filter(|&v| comp[v] == giant_id)
        .collect();
    let exact = giant_exact(g, &members);
    let mean_err_giant = members
        .iter()
        .map(|&v| (run.centrality[v] - exact[v]).abs() / exact[v])
        .sum::<f64>()
        / members.len() as f64;
    PermRow {
        scenario,
        mean_err_giant,
        dead_links: run.degradation.dead_links_detected.len(),
        dead_nodes: run.degradation.dead_nodes_detected.len(),
        components: run.degradation.components.len(),
        giant_nodes: giant.nodes,
        giant_coverage: giant.walks_completed as f64 / giant.walks_expected.max(1) as f64,
        walks_lost: run.degradation.walks_lost,
        target_redraws: run.degradation.target_redraws,
        rounds: run.total_rounds(),
    }
}

/// Runs the permanent-kill scenarios on the Fig. 1 graph (`n = 23`, one
/// kill = 4.3% of the network).
///
/// # Panics
///
/// Panics on simulation failure.
pub fn kill_sweep(walks: usize, length: usize, seed: u64, quick: bool) -> Vec<PermRow> {
    let (g, labels) = rwbc_graph::generators::fig1_graph(10).expect("fig1");
    let kill = |node: NodeId| {
        FaultPlan::default().with_node_crash(NodeCrash {
            node,
            crash_round: 40,
            recover_round: None,
        })
    };
    let mut scenarios: Vec<(&'static str, FaultPlan)> = vec![
        ("none", FaultPlan::default()),
        ("community member", kill(labels.right[2])),
    ];
    if !quick {
        // C's death leaves the graph connected (A-B picks up the flow);
        // A's death severs the left community and forces a target redraw.
        scenarios.push(("center C (no partition)", kill(labels.c)));
        scenarios.push(("bridge A (partitions)", kill(labels.a)));
    }
    scenarios
        .into_iter()
        .map(|(name, faults)| {
            let run = approximate(&g, &perm_config(seed, walks, length, faults))
                .expect("permanent-failure run");
            summarize(&g, name, &run)
        })
        .collect()
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (walks, length) = if quick { (150, 50) } else { (400, 80) };
    let mut table = Table::new(
        "E12 (extension): permanent kills mid-walk, partition-tolerant pipeline \
         (Fig. 1 graph, n = 23, kill at round 40)",
        [
            "killed",
            "mean rel err (giant)",
            "dead links",
            "dead nodes",
            "components",
            "giant n",
            "giant coverage",
            "walks lost",
            "redraws",
            "rounds",
        ],
    );
    for r in kill_sweep(walks, length, 1201, quick) {
        table.add_row([
            r.scenario.to_string(),
            fmt4(r.mean_err_giant),
            r.dead_links.to_string(),
            r.dead_nodes.to_string(),
            r.components.to_string(),
            r.giant_nodes.to_string(),
            fmt2(r.giant_coverage),
            r.walks_lost.to_string(),
            r.target_redraws.to_string(),
            r.rounds.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanent_kill_is_declared_and_giant_fully_covered() {
        let rows = kill_sweep(250, 50, 9, true);
        assert_eq!(rows.len(), 2);
        let clean = &rows[0];
        assert_eq!(clean.dead_links, 0);
        assert_eq!(clean.components, 1);
        assert_eq!(clean.giant_nodes, 23);
        assert!((clean.giant_coverage - 1.0).abs() < 1e-12);
        let killed = &rows[1];
        assert_eq!(killed.dead_nodes, 1);
        assert_eq!(killed.dead_links, 10, "all ten incident links declared");
        assert_eq!(killed.giant_nodes, 22);
        assert!((killed.giant_coverage - 1.0).abs() < 1e-12);
        assert!(killed.mean_err_giant.is_finite());
        // Acceptance bar: within 2.5x the clean run's giant error. Losing
        // a community member discards its walks and re-samples them under
        // recovery, which roughly doubles the giant-component error; the
        // ratio sits at 1.9-2.25 across seeds, so 2.5x is the qualitative
        // "same regime" bound with honest headroom.
        assert!(
            killed.mean_err_giant <= 2.5 * clean.mean_err_giant.max(1e-3),
            "killed {} vs clean {}",
            killed.mean_err_giant,
            clean.mean_err_giant
        );
    }
}
