//! **E4 — Lemma 2 + Theorem 5.** Measured round complexity of the
//! distributed algorithm as `n` grows, with `K = Θ(log n)` and `l = Θ(n)`:
//! the paper predicts `O(Kn + l) + O(n) = O(n log n)` rounds total, so the
//! ratio `rounds / (n log₂ n)` should stay bounded. The trivial
//! collect-everything baseline's rounds grow like `Θ(m + D)` instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::SimConfig;
use rwbc::distributed::{approximate, collect_and_solve, DistributedConfig};
use rwbc::monte_carlo::TargetStrategy;
use rwbc_graph::generators::connected_gnp;
use rwbc_graph::Graph;

use crate::table::{fmt2, Table};

/// Typed result for one size.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundsRow {
    /// Nodes.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// `K` used.
    pub k: usize,
    /// `l` used.
    pub l: usize,
    /// Phase-1 rounds.
    pub walk_rounds: usize,
    /// Phase-2 rounds.
    pub count_rounds: usize,
    /// Total rounds.
    pub total_rounds: usize,
    /// `total / (n log2 n)` — the Theorem 5 constant.
    pub normalized: f64,
    /// Rounds of the trivial collect-everything baseline.
    pub collect_rounds: usize,
}

/// Builds the standard E4 test graph for a given size.
pub fn test_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (4.0 * (n as f64).ln() / n as f64).min(0.9);
    connected_gnp(n, p, 300, &mut rng).expect("above the connectivity threshold")
}

/// Measures one size.
///
/// # Panics
///
/// Panics on simulation failure (would indicate a CONGEST violation).
pub fn row(n: usize, seed: u64) -> RoundsRow {
    let g = test_graph(n, seed);
    let k = (n as f64).log2().ceil() as usize;
    let l = n;
    let cfg = DistributedConfig::builder()
        .walks(k)
        .length(l)
        .seed(seed)
        .target(TargetStrategy::Random)
        .build()
        .expect("positive parameters");
    let run = approximate(&g, &cfg).expect("CONGEST-compliant run");
    let collect = collect_and_solve(&g, 0, SimConfig::default().with_seed(seed))
        .expect("collection baseline");
    let nf = n as f64;
    RoundsRow {
        n,
        m: g.edge_count(),
        k,
        l,
        walk_rounds: run.walk_stats.rounds,
        count_rounds: run.count_stats.rounds,
        total_rounds: run.total_rounds(),
        normalized: run.total_rounds() as f64 / (nf * nf.log2()),
        collect_rounds: collect.stats.rounds,
    }
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64, 128] };
    let mut t = Table::new(
        "E4 (Lemma 2 + Theorem 5): rounds vs n with K = ceil(log2 n), l = n",
        [
            "n",
            "m",
            "K",
            "l",
            "walk rounds",
            "count rounds",
            "total",
            "total/(n log2 n)",
            "collect baseline",
        ],
    );
    for &n in sizes {
        let r = row(n, 1000 + n as u64);
        t.add_row([
            r.n.to_string(),
            r.m.to_string(),
            r.k.to_string(),
            r.l.to_string(),
            r.walk_rounds.to_string(),
            r.count_rounds.to_string(),
            r.total_rounds.to_string(),
            fmt2(r.normalized),
            r.collect_rounds.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase2_is_exactly_n_rounds() {
        let r = row(24, 5);
        assert_eq!(r.count_rounds, 24);
    }

    #[test]
    fn normalized_rounds_stay_bounded() {
        let small = row(16, 6);
        let large = row(48, 7);
        // The Theorem 5 constant should not blow up with n.
        assert!(
            large.normalized < 4.0 * small.normalized.max(0.5),
            "normalized rounds grew: {} -> {}",
            small.normalized,
            large.normalized
        );
    }

    #[test]
    fn walk_phase_dominated_by_l_plus_queueing() {
        let r = row(20, 8);
        // Walks cannot finish before l hops are possible nor before the
        // K-token backlog drains.
        assert!(r.walk_rounds >= r.l.min(r.k));
        assert!(
            r.walk_rounds <= r.k * r.n + r.l + r.n,
            "rounds {}",
            r.walk_rounds
        );
    }
}
