//! **E3 — Theorem 3.** Estimate concentration as a function of `K`, the
//! number of walks per node: the Chernoff argument predicts the relative
//! error shrinks like `1/√K`, and `K = ⌈3 ln n / δ²⌉` suffices for
//! `(1 ± δ)` concentration w.h.p.

use rwbc::accuracy::{max_relative_error, mean_relative_error, spearman_rho};
use rwbc::exact::newman;
use rwbc::monte_carlo::{estimate, McConfig, TargetStrategy};
use rwbc::params::walks_per_node;
use rwbc_graph::generators::connected_gnp;
use rwbc_graph::Graph;

use crate::table::{fmt4, Table};

/// Typed result for one `K`.
#[derive(Debug, Clone, PartialEq)]
pub struct KRow {
    /// Walks per node.
    pub k: usize,
    /// Mean relative error vs exact.
    pub mean_err: f64,
    /// Max relative error vs exact.
    pub max_err: f64,
    /// Spearman rank correlation vs exact.
    pub rho: f64,
    /// `√K`-normalized mean error (flat curve ⇒ `1/√K` scaling).
    pub sqrt_k_scaled: f64,
}

/// Measures one `K` on a given graph against the exact reference.
pub fn row(graph: &Graph, exact: &rwbc::Centrality, k: usize, l: usize, seed: u64) -> KRow {
    let cfg = McConfig::new(k, l)
        .with_seed(seed)
        .with_target(TargetStrategy::Fixed(graph.node_count() - 1));
    let run = estimate(graph, &cfg).expect("valid graph");
    let mean_err = mean_relative_error(&run.centrality, exact);
    KRow {
        k,
        mean_err,
        max_err: max_relative_error(&run.centrality, exact),
        rho: spearman_rho(&run.centrality, exact),
        sqrt_k_scaled: mean_err * (k as f64).sqrt(),
    }
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 20 } else { 32 };
    let ks: &[usize] = if quick {
        &[1, 8, 64]
    } else {
        &[1, 4, 16, 64, 256, 1024]
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    use rand::SeedableRng;
    let g = connected_gnp(n, 4.0 * (n as f64).ln() / n as f64, 200, &mut rng).expect("connected");
    let exact = newman(&g).expect("exact");
    let l = 8 * n;
    let mut t = Table::new(
        "E3 (Theorem 3): estimate concentration vs walks-per-node K",
        [
            "K",
            "mean rel err",
            "max rel err",
            "spearman",
            "err*sqrt(K)",
        ],
    );
    for &k in ks {
        let r = row(&g, &exact, k, l, 17);
        t.add_row([
            k.to_string(),
            fmt4(r.mean_err),
            fmt4(r.max_err),
            fmt4(r.rho),
            fmt4(r.sqrt_k_scaled),
        ]);
    }
    let k_theory = walks_per_node(n, 0.1);
    let mut t2 = Table::new(
        "E3 reference: theory K = ceil(3 ln n / delta^2)",
        ["n", "delta", "K_theory"],
    );
    t2.add_row([n.to_string(), "0.1".to_string(), k_theory.to_string()]);
    t2.add_row([
        n.to_string(),
        "0.5".to_string(),
        walks_per_node(n, 0.5).to_string(),
    ]);
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn error_decreases_with_k() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let g = connected_gnp(16, 0.4, 100, &mut rng).unwrap();
        let exact = newman(&g).unwrap();
        let small = row(&g, &exact, 2, 128, 5);
        let large = row(&g, &exact, 256, 128, 5);
        assert!(large.mean_err < small.mean_err);
        assert!(large.rho > 0.9);
        assert!(
            large.mean_err < 0.1,
            "mean err at K=256: {}",
            large.mean_err
        );
    }

    #[test]
    fn scaling_is_roughly_inverse_sqrt_k() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = connected_gnp(16, 0.4, 100, &mut rng).unwrap();
        let exact = newman(&g).unwrap();
        let a = row(&g, &exact, 16, 128, 7);
        let b = row(&g, &exact, 256, 128, 7);
        // err * sqrt(K) should be within a small factor across a 16x K gap.
        let ratio = a.sqrt_k_scaled / b.sqrt_k_scaled;
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }
}
