//! **E8 — Section II (related measures).** How the related centralities
//! rank nodes relative to exact RWBC on a scale-free graph:
//!
//! * shortest-path betweenness (Brandes) — high agreement on hubs, blind
//!   to bypass structure;
//! * PageRank — degree-flavored, decent rank agreement;
//! * flow betweenness — flow-based like RWBC but max-flow routed;
//! * α-current-flow betweenness — converges to RWBC as `α → 1` (the sweep
//!   is the interesting series);
//!
//! plus the round-complexity contrast the paper draws: distributed
//! PageRank finishes in `O(log n / ε)` rounds while distributed RWBC needs
//! `Θ(n log n)` — short walks are fundamentally cheaper.

use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::SimConfig;
use rwbc::accuracy::{spearman_rho, top_k_jaccard};
use rwbc::alpha_cfb::{estimate as alpha_estimate, AlphaConfig};
use rwbc::brandes::betweenness;
use rwbc::distributed::{approximate, DistributedConfig};
use rwbc::exact::newman;
use rwbc::flow_betweenness::flow_betweenness;
use rwbc::monte_carlo::TargetStrategy;
use rwbc::pagerank;
use rwbc_graph::generators::barabasi_albert;
use rwbc_graph::Graph;

use crate::table::{fmt4, Table};

/// Rank agreement of one measure against exact RWBC.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureRow {
    /// Measure label.
    pub measure: String,
    /// Spearman vs RWBC.
    pub rho: f64,
    /// Top-5 Jaccard vs RWBC.
    pub top5: f64,
}

/// The standard E8 graph.
pub fn test_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    barabasi_albert(n, 2, &mut rng).expect("valid BA parameters")
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 20 } else { 40 };
    let g = test_graph(n, 8);
    let rwbc_exact = newman(&g).expect("exact");

    let mut rows: Vec<MeasureRow> = Vec::new();
    let sp = betweenness(&g, true).expect("brandes");
    rows.push(MeasureRow {
        measure: "shortest-path (Brandes)".to_string(),
        rho: spearman_rho(&sp, &rwbc_exact),
        top5: top_k_jaccard(&sp, &rwbc_exact, 5),
    });
    let pr = pagerank::power(&g, 0.15, 1e-12, 100_000).expect("pagerank");
    rows.push(MeasureRow {
        measure: "pagerank (power)".to_string(),
        rho: spearman_rho(&pr, &rwbc_exact),
        top5: top_k_jaccard(&pr, &rwbc_exact, 5),
    });
    if !quick {
        let fb = flow_betweenness(&g).expect("flow betweenness");
        rows.push(MeasureRow {
            measure: "flow betweenness (Freeman)".to_string(),
            rho: spearman_rho(&fb, &rwbc_exact),
            top5: top_k_jaccard(&fb, &rwbc_exact, 5),
        });
    }
    let alphas: &[f64] = if quick {
        &[0.5, 0.95]
    } else {
        &[0.3, 0.5, 0.8, 0.95, 0.99]
    };
    for &alpha in alphas {
        let cfg = AlphaConfig::new(alpha, if quick { 300 } else { 800 })
            .expect("valid alpha")
            .with_seed(81)
            .with_target(TargetStrategy::Fixed(0));
        let a = alpha_estimate(&g, &cfg).expect("alpha cfb");
        rows.push(MeasureRow {
            measure: format!("alpha-CFB (alpha = {alpha})"),
            rho: spearman_rho(&a, &rwbc_exact),
            top5: top_k_jaccard(&a, &rwbc_exact, 5),
        });
    }

    let mut t = Table::new(
        "E8 (Section II): rank agreement of related measures with exact RWBC (BA graph)",
        ["measure", "spearman vs RWBC", "top5 jaccard"],
    );
    for r in &rows {
        t.add_row([r.measure.clone(), fmt4(r.rho), fmt4(r.top5)]);
    }

    // Round-complexity contrast: distributed PageRank vs distributed RWBC.
    let pr_run = pagerank::distributed(&g, 0.2, 100, SimConfig::default().with_seed(82))
        .expect("distributed pagerank");
    let k = (n as f64).log2().ceil() as usize;
    let rw_cfg = DistributedConfig::builder()
        .walks(k)
        .length(n)
        .seed(83)
        .build()
        .expect("params");
    let rw_run = approximate(&g, &rw_cfg).expect("distributed rwbc");
    let mut t2 = Table::new(
        "E8b: distributed round-complexity contrast (short vs unbounded walks)",
        ["algorithm", "rounds", "total messages"],
    );
    t2.add_row([
        "pagerank (reset 0.2, 100 walks/node)".to_string(),
        pr_run.stats.rounds.to_string(),
        pr_run.stats.total_messages.to_string(),
    ]);
    t2.add_row([
        format!("rwbc (K = {k}, l = {n})"),
        rw_run.total_rounds().to_string(),
        (rw_run.walk_stats.total_messages + rw_run.count_stats.total_messages).to_string(),
    ]);
    // The paper's prior work [5]: distributed shortest-path betweenness
    // (pipelined Brandes) — exact-up-to-minifloat, O(n + D)-flavored.
    let sp_run = rwbc::spbc_distributed::distributed_spbc(
        &g,
        &rwbc::spbc_distributed::SpbcConfig::default(),
    )
    .expect("distributed spbc");
    t2.add_row([
        "spbc distributed (pipelined Brandes, [5])".to_string(),
        sp_run.total_rounds().to_string(),
        (sp_run.forward_stats.total_messages + sp_run.backward_stats.total_messages).to_string(),
    ]);
    vec![t, t2]
}

/// The α-sweep series alone (used by tests): Spearman of α-CFB vs RWBC for
/// each α.
pub fn alpha_sweep(graph: &Graph, alphas: &[f64], walks: usize, seed: u64) -> Vec<(f64, f64)> {
    let exact = newman(graph).expect("exact");
    alphas
        .iter()
        .map(|&alpha| {
            let cfg = AlphaConfig::new(alpha, walks)
                .expect("valid alpha")
                .with_seed(seed)
                .with_target(TargetStrategy::Fixed(0));
            let a = alpha_estimate(graph, &cfg).expect("alpha cfb");
            (alpha, spearman_rho(&a, &exact))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_sweep_converges_toward_rwbc() {
        let g = test_graph(16, 9);
        let sweep = alpha_sweep(&g, &[0.3, 0.95], 600, 10);
        assert!(sweep[1].1 >= sweep[0].1 - 0.1, "sweep {sweep:?}");
        assert!(sweep[1].1 > 0.7, "rho at alpha=0.95: {}", sweep[1].1);
    }

    #[test]
    fn pagerank_uses_far_fewer_rounds_than_rwbc() {
        let g = test_graph(24, 10);
        let pr_run =
            pagerank::distributed(&g, 0.25, 50, SimConfig::default().with_seed(11)).unwrap();
        let cfg = DistributedConfig::builder()
            .walks(5)
            .length(24)
            .seed(12)
            .build()
            .unwrap();
        let rw_run = approximate(&g, &cfg).unwrap();
        assert!(
            pr_run.stats.rounds < rw_run.total_rounds(),
            "pagerank {} vs rwbc {}",
            pr_run.stats.rounds,
            rw_run.total_rounds()
        );
    }
}
