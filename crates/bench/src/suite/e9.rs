//! **E9 (extension) — the distributed algorithm landscape.** The paper
//! positions its RWBC algorithm against two reference points: distributed
//! PageRank (`O(log n / ε)` rounds — Section II-B) and its own prior
//! distributed SPBC (`O(n)` rounds — reference \[5\]). This experiment puts
//! all three on identical networks across sizes and reports rounds and
//! traffic, making the complexity hierarchy
//! `PageRank ≪ SPBC ≲ RWBC (Θ(n log n))` measurable.

use congest_sim::SimConfig;
use rwbc::distributed::{approximate, DistributedConfig};
use rwbc::pagerank;
use rwbc::spbc_distributed::{distributed_spbc, SpbcConfig};

use crate::suite::e4::test_graph;
use crate::table::{fmt2, Table};

/// Typed result for one (algorithm, n) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoRow {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Nodes.
    pub n: usize,
    /// Total rounds.
    pub rounds: usize,
    /// Total messages.
    pub messages: u64,
    /// Total bits.
    pub bits: u64,
    /// Rounds normalized by the algorithm's predicted growth.
    pub normalized: f64,
}

/// Measures all three algorithms on the same graph.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn rows_for(n: usize, seed: u64) -> Vec<AlgoRow> {
    let g = test_graph(n, seed);
    let nf = n as f64;
    let mut out = Vec::new();

    let pr =
        pagerank::distributed(&g, 0.2, 64, SimConfig::default().with_seed(seed)).expect("pagerank");
    out.push(AlgoRow {
        algorithm: "pagerank (eps = 0.2)",
        n,
        rounds: pr.stats.rounds,
        messages: pr.stats.total_messages,
        bits: pr.stats.total_bits,
        normalized: pr.stats.rounds as f64 / nf.log2(), // O(log n / eps)
    });

    let sp = distributed_spbc(&g, &SpbcConfig::default()).expect("spbc");
    out.push(AlgoRow {
        algorithm: "spbc (pipelined Brandes)",
        n,
        rounds: sp.total_rounds(),
        messages: sp.forward_stats.total_messages + sp.backward_stats.total_messages,
        bits: sp.forward_stats.total_bits + sp.backward_stats.total_bits,
        normalized: sp.total_rounds() as f64 / nf, // O(n + D)
    });

    let k = nf.log2().ceil() as usize;
    let cfg = DistributedConfig::builder()
        .walks(k)
        .length(n)
        .seed(seed)
        .build()
        .expect("params");
    let rw = approximate(&g, &cfg).expect("rwbc");
    out.push(AlgoRow {
        algorithm: "rwbc (K = ceil(log2 n), l = n)",
        n,
        rounds: rw.total_rounds(),
        messages: rw.walk_stats.total_messages + rw.count_stats.total_messages,
        bits: rw.walk_stats.total_bits + rw.count_stats.total_bits,
        normalized: rw.total_rounds() as f64 / (nf * nf.log2()), // O(n log n)
    });
    out
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };
    let mut t = Table::new(
        "E9 (extension): distributed centrality algorithms on identical G(n, 4 ln n / n) networks",
        [
            "algorithm",
            "n",
            "rounds",
            "messages",
            "bits",
            "rounds/predicted",
        ],
    );
    for &n in sizes {
        for r in rows_for(n, 900 + n as u64) {
            t.add_row([
                r.algorithm.to_string(),
                r.n.to_string(),
                r.rounds.to_string(),
                r.messages.to_string(),
                r.bits.to_string(),
                fmt2(r.normalized),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_holds() {
        let rows = rows_for(32, 1);
        let rounds: Vec<usize> = rows.iter().map(|r| r.rounds).collect();
        // pagerank < spbc and pagerank < rwbc.
        assert!(rounds[0] < rounds[1], "{rows:?}");
        assert!(rounds[0] < rounds[2], "{rows:?}");
    }

    #[test]
    fn normalized_rounds_stay_of_order_one() {
        for r in rows_for(24, 2) {
            assert!(
                r.normalized < 30.0,
                "{} normalized rounds {} way off its predicted growth",
                r.algorithm,
                r.normalized
            );
        }
    }
}
