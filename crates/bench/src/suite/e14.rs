//! **E14 (extension) — serving centrality under load.** The paper ends
//! where the solve ends; this experiment measures the system that has
//! to *answer queries about* the solve: the `rwbc-serve` daemon. Four
//! scenarios on one self-hosted daemon workload: closed-loop capacity,
//! open-loop pacing, forced overload (queue depth 1 against a slow
//! worker — every excess request must come back as a typed
//! `Overloaded`, never buffered), and forced deadline expiry (a
//! deadline far below the worker's service time — typed `Timeout`).
//! The robustness claim the table checks: under every load shape, each
//! request gets exactly one typed answer; nothing hangs, nothing is
//! silently dropped, and the error mass moves between `Overloaded` and
//! `Timeout` as the bottleneck moves between admission and service.

use std::time::Duration;

use rwbc_serve::{Daemon, ServeConfig, SolverConfig};

use crate::serve_load::{run_replay, OutcomeCounts, ReplayConfig, ReplayMode};
use crate::table::Table;

/// Typed result for one serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRow {
    /// Scenario label.
    pub scenario: String,
    /// Traffic shape (`closed` / `open`).
    pub mode: &'static str,
    /// Concurrent replay clients.
    pub clients: usize,
    /// Typed outcome tallies.
    pub outcomes: OutcomeCounts,
    /// Served-request throughput, requests per second.
    pub throughput_rps: f64,
    /// Exact p50 latency over served requests, microseconds.
    pub p50_us: u64,
    /// Exact p99 latency over served requests, microseconds.
    pub p99_us: u64,
}

fn wait_ready(daemon: &Daemon) {
    let client = rwbc_serve::Client::new(daemon.local_addr().to_string()).with_max_attempts(120);
    match client.centrality(0, 5000) {
        Ok(rwbc_serve::Response::Value { .. }) => {}
        other => panic!("daemon never became ready: {other:?}"),
    }
}

fn replay_row(
    scenario: &str,
    daemon: &Daemon,
    n: usize,
    mode: ReplayMode,
    clients: usize,
    duration: Duration,
    deadline_ms: u32,
) -> ServeRow {
    let report = run_replay(&ReplayConfig {
        addr: daemon.local_addr().to_string(),
        mode,
        clients,
        duration,
        deadline_ms,
        seed: 42,
        n,
        metrics_every: None,
    });
    ServeRow {
        scenario: scenario.to_string(),
        mode: mode.as_str(),
        clients,
        outcomes: report.outcomes,
        throughput_rps: report.throughput_rps(),
        p50_us: report.p50_us(),
        p99_us: report.p99_us(),
    }
}

/// Runs the four serving scenarios against self-hosted daemons.
///
/// # Panics
///
/// Panics if a daemon fails to bind or never becomes ready.
pub fn serving_sweep(n: usize, seed: u64, quick: bool) -> Vec<ServeRow> {
    let duration = Duration::from_millis(if quick { 250 } else { 1000 });
    let mut rows = Vec::new();

    // Scenarios 1 + 2: a healthy daemon, closed then open loop.
    {
        let daemon = Daemon::start(ServeConfig::new(SolverConfig::new(n, seed))).expect("bind");
        wait_ready(&daemon);
        rows.push(replay_row(
            "healthy, closed loop",
            &daemon,
            n,
            ReplayMode::Closed,
            4,
            duration,
            1000,
        ));
        rows.push(replay_row(
            "healthy, open loop @100/s",
            &daemon,
            n,
            ReplayMode::Open { rate_hz: 100.0 },
            2,
            duration,
            1000,
        ));
        daemon.drain();
        daemon.wait();
    }

    // Scenario 3: admission bottleneck — queue depth 1 in front of one
    // deliberately slow worker. Excess load must shed typed.
    {
        let mut config = ServeConfig::new(SolverConfig::new(n, seed));
        config.queue_depth = 1;
        config.workers = 1;
        config.work_delay_ms = 30;
        let daemon = Daemon::start(config).expect("bind");
        wait_ready(&daemon);
        rows.push(replay_row(
            "overloaded (queue=1, slow worker)",
            &daemon,
            n,
            ReplayMode::Closed,
            8,
            duration,
            1000,
        ));
        daemon.drain();
        daemon.wait();
    }

    // Scenario 4: service bottleneck — a deadline far below the
    // worker's service time. Expiry must be typed, at the deadline.
    {
        let mut config = ServeConfig::new(SolverConfig::new(n, seed));
        config.workers = 2;
        config.work_delay_ms = 80;
        let daemon = Daemon::start(config).expect("bind");
        wait_ready(&daemon);
        rows.push(replay_row(
            "deadline 10ms vs 80ms worker",
            &daemon,
            n,
            ReplayMode::Closed,
            4,
            duration,
            10,
        ));
        daemon.drain();
        daemon.wait();
    }

    rows
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 48 } else { 128 };
    let mut table = Table::new(
        "E14 (extension): serving centrality under load — typed outcomes per \
         traffic shape (self-hosted rwbc-serve daemon, ER graph)",
        [
            "scenario",
            "mode",
            "clients",
            "served",
            "overloaded",
            "timed out",
            "not ready",
            "io errs",
            "req/s",
            "p50 us",
            "p99 us",
        ],
    );
    for r in serving_sweep(n, 42, quick) {
        table.add_row([
            r.scenario.clone(),
            r.mode.to_string(),
            r.clients.to_string(),
            r.outcomes.served.to_string(),
            r.outcomes.overloaded.to_string(),
            r.outcomes.timed_out.to_string(),
            r.outcomes.not_ready.to_string(),
            r.outcomes.io_errors.to_string(),
            format!("{:.1}", r.throughput_rps),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_load_shape_yields_typed_outcomes() {
        let rows = serving_sweep(32, 7, true);
        assert_eq!(rows.len(), 4);
        // Healthy closed loop: real throughput, no sheds.
        let healthy = &rows[0];
        assert!(healthy.outcomes.served > 0);
        assert_eq!(healthy.outcomes.overloaded, 0);
        assert!(healthy.p50_us <= healthy.p99_us);
        // Overload scenario: typed sheds, and every request accounted.
        let overloaded = &rows[2];
        assert!(
            overloaded.outcomes.overloaded > 0,
            "queue=1 under 8 clients must shed: {overloaded:?}"
        );
        // Deadline scenario: typed timeouts dominate.
        let deadline = &rows[3];
        assert!(
            deadline.outcomes.timed_out > 0,
            "10ms deadline vs 80ms worker must expire: {deadline:?}"
        );
    }
}
