//! **E1 — the paper's Fig. 1.** Shortest-path vs random-walk betweenness on
//! the two-community bridge graph: the bridges `A`, `B` top both measures,
//! but the bypass node `C` scores *zero* shortest-path betweenness while
//! its random-walk betweenness clearly exceeds the `2/n` endpoint floor.

use rwbc::brandes::betweenness;
use rwbc::exact::newman;
use rwbc_graph::generators::fig1_graph;

use crate::table::{fmt4, Table};

/// Typed result for one group size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Nodes per community.
    pub group_size: usize,
    /// Total nodes.
    pub n: usize,
    /// SPBC of the bridge `A` (normalized).
    pub spbc_a: f64,
    /// SPBC of the bypass `C` (normalized) — the paper's claim: exactly 0.
    pub spbc_c: f64,
    /// RWBC of `A`.
    pub rwbc_a: f64,
    /// RWBC of `C`.
    pub rwbc_c: f64,
    /// RWBC of a group member (for scale).
    pub rwbc_member: f64,
    /// The endpoint floor `2/n`.
    pub floor: f64,
}

/// Runs E1 for one group size.
///
/// # Panics
///
/// Panics on solver failure (the Fig. 1 graph is always valid input).
pub fn row(group_size: usize) -> Fig1Row {
    let (g, labels) = fig1_graph(group_size).expect("valid group size");
    let sp = betweenness(&g, true).expect("connected graph");
    let rw = newman(&g).expect("connected graph");
    let n = g.node_count();
    Fig1Row {
        group_size,
        n,
        spbc_a: sp[labels.a],
        spbc_c: sp[labels.c],
        rwbc_a: rw[labels.a],
        rwbc_c: rw[labels.c],
        rwbc_member: rw[labels.left[0]],
        floor: 2.0 / n as f64,
    }
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[3, 5] } else { &[3, 5, 8, 12] };
    let mut t = Table::new(
        "E1 (paper Fig. 1): SPBC vs RWBC on the two-community bridge graph",
        [
            "group",
            "n",
            "SPBC(A)",
            "SPBC(C)",
            "RWBC(A)",
            "RWBC(C)",
            "RWBC(member)",
            "floor 2/n",
        ],
    );
    for &gs in sizes {
        let r = row(gs);
        t.add_row([
            gs.to_string(),
            r.n.to_string(),
            fmt4(r.spbc_a),
            fmt4(r.spbc_c),
            fmt4(r.rwbc_a),
            fmt4(r.rwbc_c),
            fmt4(r.rwbc_member),
            fmt4(r.floor),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_story_holds_across_sizes() {
        for gs in [3, 6] {
            let r = row(gs);
            assert_eq!(r.spbc_c, 0.0, "C must lie on no shortest path");
            assert!(r.spbc_a > 0.3, "A dominates SPBC");
            assert!(r.rwbc_c > r.floor, "C's RWBC exceeds the endpoint floor");
            assert!(r.rwbc_a > r.rwbc_c, "bridges still dominate RWBC");
        }
    }

    #[test]
    fn tables_render() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 2);
    }
}
