//! **E6 — the lower bound (Figs. 2–5, Lemma 4, Theorems 6–8).** Two parts:
//!
//! 1. **Separation (Lemma 4).** Exhaustively (small `M`, `N = 1`) and by
//!    sampling (`N > 1`), verify that `b_P` is strictly minimized exactly
//!    on disjoint instances — the combinatorial heart of the reduction.
//! 2. **Cut traffic (Theorems 6–8).** Run an exact distributed algorithm
//!    (topology collection at `P`) on gadgets of growing `N` with the
//!    Alice/Bob cut metered: the bits crossing the cut grow like
//!    `Ω(N log N)` while the cut has only `Θ(M + N)` edges — the
//!    congestion that forces `Ω(n / log n)` rounds.

use rand::rngs::StdRng;
use rand::SeedableRng;

use congest_sim::{RunStats, SimConfig};
use rwbc::distributed::collect_and_solve;
use rwbc::lower_bound::{verify_separation, LowerBoundInstance};

use crate::table::{fmt2, fmt4, Table};

/// Typed result of the cut-traffic measurement for one `N`.
#[derive(Debug, Clone, PartialEq)]
pub struct CutRow {
    /// Subsets per side.
    pub n_subsets: usize,
    /// Matching size `M` (Θ(log N) per the paper's encoding bound).
    pub m: usize,
    /// Gadget node count.
    pub nodes: usize,
    /// Edges in the metered Alice/Bob cut.
    pub cut_edges: usize,
    /// Bits that crossed the cut during exact collection.
    pub cut_bits: u64,
    /// `cut_bits / (N log2 N)` — bounded below per Theorem 8.
    pub normalized: f64,
    /// Rounds the collection took.
    pub rounds: usize,
}

/// Smallest even `M` with `C(M, M/2) >= N²` (the paper's encoding
/// requirement, Section VIII).
pub fn m_for(n_subsets: usize) -> usize {
    let needed = (n_subsets as f64).powi(2);
    let mut m = 2;
    loop {
        if binomial(m, m / 2) >= needed {
            return m;
        }
        m += 2;
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Measures cut traffic for one `N`, also returning the full simulator
/// stats of the collection run.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn cut_run(n_subsets: usize, seed: u64) -> (CutRow, RunStats) {
    let m = m_for(n_subsets);
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = LowerBoundInstance::random(m, n_subsets, &mut rng);
    let (graph, labels) = inst.build();
    let cut = labels.alice_bob_cut();
    let sim = SimConfig::default().with_seed(seed).with_cut(cut.clone());
    let run = collect_and_solve(&graph, labels.p, sim).expect("collection on gadget");
    let nf = n_subsets as f64;
    let row = CutRow {
        n_subsets,
        m,
        nodes: graph.node_count(),
        cut_edges: cut.len(),
        cut_bits: run.stats.cut.bits,
        normalized: run.stats.cut.bits as f64 / (nf * nf.log2().max(1.0)),
        rounds: run.stats.rounds,
    };
    (row, run.stats)
}

/// Measures cut traffic for one `N`.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn cut_row(n_subsets: usize, seed: u64) -> CutRow {
    cut_run(n_subsets, seed).0
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    // Part 1: Lemma 4 separation.
    let mut t1 = Table::new(
        "E6a (Lemma 4): b_P separation, exhaustive at N = 1",
        [
            "M",
            "instances",
            "z (disjoint)",
            "min intersecting",
            "max intersecting",
            "separated",
        ],
    );
    let ms: &[usize] = if quick { &[4] } else { &[4, 6] };
    for &m in ms {
        let rep = verify_separation(m).expect("solver");
        t1.add_row([
            m.to_string(),
            rep.instances.to_string(),
            fmt4(rep.z_disjoint),
            fmt4(rep.min_intersecting),
            fmt4(rep.max_intersecting),
            (rep.z_disjoint < rep.min_intersecting).to_string(),
        ]);
    }

    // Part 1b: sampled separation at N = 2.
    let mut t1b = Table::new(
        "E6b (Lemma 4, sampled): b_P over random instances at N = 2, M = 6",
        ["kind", "samples", "min b_P", "max b_P"],
    );
    {
        let mut rng = StdRng::seed_from_u64(60);
        let z = LowerBoundInstance::disjoint(6, 2).b_p().expect("solver");
        let samples = if quick { 10 } else { 40 };
        let mut min_int = f64::INFINITY;
        let mut max_int = f64::NEG_INFINITY;
        let mut count = 0;
        while count < samples {
            let inst = LowerBoundInstance::random(6, 2, &mut rng);
            if inst.is_disjoint() {
                continue;
            }
            let bp = inst.b_p().expect("solver");
            min_int = min_int.min(bp);
            max_int = max_int.max(bp);
            count += 1;
        }
        t1b.add_row(["disjoint".to_string(), "1".to_string(), fmt4(z), fmt4(z)]);
        t1b.add_row([
            "intersecting".to_string(),
            samples.to_string(),
            fmt4(min_int),
            fmt4(max_int),
        ]);
    }

    // Part 2: cut traffic scaling.
    let mut t2 = Table::new(
        "E6c (Theorems 6-8): bits across the Alice/Bob cut during exact collection",
        [
            "N",
            "M",
            "nodes",
            "cut edges",
            "cut bits",
            "bits/(N log2 N)",
            "rounds",
        ],
    );
    let ns: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8, 16, 32] };
    let mut last_stats = None;
    for &n_subsets in ns {
        let (r, stats) = cut_run(n_subsets, 600 + n_subsets as u64);
        t2.add_row([
            r.n_subsets.to_string(),
            r.m.to_string(),
            r.nodes.to_string(),
            r.cut_edges.to_string(),
            r.cut_bits.to_string(),
            fmt2(r.normalized),
            r.rounds.to_string(),
        ]);
        last_stats = Some(stats);
    }
    if let Some(stats) = last_stats {
        t2.add_note(format!(
            "RunStats for the largest gadget (N = {}):\n{}",
            ns.last().unwrap(),
            stats.summary()
        ));
    }
    vec![t1, t1b, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_for_satisfies_encoding_bound() {
        assert_eq!(m_for(1), 2);
        for n in [2usize, 4, 8, 16] {
            let m = m_for(n);
            assert!(binomial(m, m / 2) >= (n * n) as f64);
            // And M stays logarithmic-ish.
            assert!(m <= 4 * ((n as f64).log2().ceil() as usize + 2));
        }
    }

    #[test]
    fn cut_bits_grow_superlinearly_in_n() {
        let small = cut_row(2, 1);
        let large = cut_row(8, 2);
        assert!(large.cut_bits > small.cut_bits);
        // The adjacency of Bob's side alone is Omega(N * M) edge records
        // of Theta(log nodes) bits each crossing toward P.
        assert!(
            large.cut_bits as f64 >= 8.0 * 3.0,
            "bits {}",
            large.cut_bits
        );
    }

    #[test]
    fn sampled_instances_respect_lemma4_direction() {
        let z = LowerBoundInstance::disjoint(4, 2).b_p().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let inst = LowerBoundInstance::random(4, 2, &mut rng);
            if !inst.is_disjoint() {
                assert!(inst.b_p().unwrap() > z);
            }
        }
    }
}
