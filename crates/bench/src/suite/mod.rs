//! The experiment suite; one module per experiment id (see crate docs).

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

use crate::Table;

/// Runs one experiment by id (`"e1"`.. `"e8"`), returning its tables.
/// Returns `None` for an unknown id.
pub fn run_by_id(id: &str, quick: bool) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(e1::run(quick)),
        "e2" => Some(e2::run(quick)),
        "e3" => Some(e3::run(quick)),
        "e4" => Some(e4::run(quick)),
        "e5" => Some(e5::run(quick)),
        "e6" => Some(e6::run(quick)),
        "e7" => Some(e7::run(quick)),
        "e8" => Some(e8::run(quick)),
        "e9" => Some(e9::run(quick)),
        "e10" => Some(e10::run(quick)),
        "e11" => Some(e11::run(quick)),
        "e12" => Some(e12::run(quick)),
        "e13" => Some(e13::run(quick)),
        "e14" => Some(e14::run(quick)),
        "e15" => Some(e15::run(quick)),
        "e16" => Some(e16::run(quick)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL_IDS: [&str; 16] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16",
];
