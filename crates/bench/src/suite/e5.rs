//! **E5 — Theorem 4.** Mechanical CONGEST compliance: across sizes and
//! families, the maximum bits observed on any edge in any round never
//! exceeds the budget `B(n) = 8⌈log₂ n⌉`, in either phase, with zero
//! violations under strict enforcement.

use rwbc::distributed::{approximate, DistributedConfig};
use rwbc_graph::generators::{barabasi_albert, cycle};
use rwbc_graph::Graph;

use crate::suite::e4::test_graph;
use crate::table::Table;

/// Typed result for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplianceRow {
    /// Family label.
    pub family: &'static str,
    /// Nodes.
    pub n: usize,
    /// The budget `B(n)`.
    pub budget: usize,
    /// Max bits on an edge in a round, phase 1.
    pub walk_max_bits: usize,
    /// Max bits on an edge in a round, phase 2.
    pub count_max_bits: usize,
    /// Max messages on an edge in a round (both phases).
    pub max_messages: usize,
    /// Violations recorded (must be 0).
    pub violations: u64,
    /// Mean bits per message, phase 1.
    pub walk_mean_bits: f64,
}

/// Measures one run.
///
/// # Panics
///
/// Panics if the strict simulator rejects the algorithm — that would be a
/// Theorem 4 counterexample (i.e. a bug).
pub fn row(family: &'static str, graph: &Graph, seed: u64) -> ComplianceRow {
    let n = graph.node_count();
    let k = (n as f64).log2().ceil() as usize;
    let cfg = DistributedConfig::builder()
        .walks(k)
        .length(n)
        .seed(seed)
        .build()
        .expect("positive parameters");
    let run = approximate(graph, &cfg).expect("strict CONGEST run must succeed");
    assert!(run.congest_compliant());
    ComplianceRow {
        family,
        n,
        budget: cfg.sim.budget_bits(n),
        walk_max_bits: run.walk_stats.max_bits_edge_round,
        count_max_bits: run.count_stats.max_bits_edge_round,
        max_messages: run
            .walk_stats
            .max_messages_edge_round
            .max(run.count_stats.max_messages_edge_round),
        violations: run.walk_stats.violations + run.count_stats.violations,
        walk_mean_bits: run.walk_stats.mean_bits_per_message(),
    }
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };
    let mut t = Table::new(
        "E5 (Theorem 4): per-edge-per-round bit maxima vs the budget B(n) = 8*ceil(log2 n)",
        [
            "family",
            "n",
            "B(n)",
            "walk max bits",
            "count max bits",
            "max msgs",
            "violations",
            "walk mean bits",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    use rand::SeedableRng;
    for &n in sizes {
        let graphs: Vec<(&'static str, Graph)> = vec![
            ("gnp", test_graph(n, 2000 + n as u64)),
            ("cycle", cycle(n).unwrap()),
            ("ba", barabasi_albert(n, 3, &mut rng).unwrap()),
        ];
        for (family, g) in graphs {
            let r = row(family, &g, 3000 + n as u64);
            t.add_row([
                r.family.to_string(),
                r.n.to_string(),
                r.budget.to_string(),
                r.walk_max_bits.to_string(),
                r.count_max_bits.to_string(),
                r.max_messages.to_string(),
                r.violations.to_string(),
                format!("{:.1}", r.walk_mean_bits),
            ]);
        }
    }

    // One representative run in full so the per-edge maxima above can be
    // read against the complete derived-rate breakdown.
    {
        let n = *sizes.last().unwrap();
        let g = cycle(n).unwrap();
        let k = (n as f64).log2().ceil() as usize;
        let cfg = DistributedConfig::builder()
            .walks(k)
            .length(n)
            .seed(3000 + n as u64)
            .build()
            .expect("positive parameters");
        let run = approximate(&g, &cfg).expect("strict CONGEST run must succeed");
        t.add_note(format!(
            "walk-phase RunStats, cycle n = {n}:\n{}",
            run.walk_stats.summary()
        ));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliance_on_all_quick_families() {
        for table_row in [
            row("cycle", &cycle(16).unwrap(), 1),
            row("gnp", &test_graph(20, 2), 3),
        ] {
            assert_eq!(table_row.violations, 0);
            assert!(table_row.walk_max_bits <= table_row.budget);
            assert!(table_row.count_max_bits <= table_row.budget);
            assert_eq!(table_row.max_messages, 1, "one message per edge per round");
        }
    }

    #[test]
    fn budget_grows_logarithmically() {
        let small = row("cycle", &cycle(16).unwrap(), 4);
        let large = row("cycle", &cycle(64).unwrap(), 5);
        assert_eq!(small.budget, 8 * 4);
        assert_eq!(large.budget, 8 * 6);
    }
}
