//! **E2 — Theorem 1.** How much walk mass is still unabsorbed after `l`
//! steps, across graph families and sizes, against the spectral prediction
//! `ρ(M_t)^l`.
//!
//! The paper proves `l = O(n)` suffices for a constant residual `ε`,
//! treating `λ = ρ(M_t)` as a constant. This experiment makes the hidden
//! dependence visible: on expanders (G(n, p), complete) `λ` is bounded
//! away from 1 and `l ≈ n` is already generous, while on paths/grids
//! `λ → 1` as `n` grows and the residual at `l = n` decays much more
//! slowly — see `EXPERIMENTS.md` for the discussion.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rwbc::monte_carlo::{survival_fraction, McConfig, TargetStrategy};
use rwbc_graph::generators::{connected_gnp, cycle, grid_2d, path};
use rwbc_graph::Graph;
use rwbc_linalg::{power_iteration, CsrMatrix, PowerOptions};

use crate::table::{fmt4, Table};

/// Typed result for one (family, n, l) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalRow {
    /// Family label.
    pub family: &'static str,
    /// Node count.
    pub n: usize,
    /// Walk length as a multiple of `n`.
    pub l_over_n: f64,
    /// Measured unabsorbed fraction.
    pub survival: f64,
    /// Spectral prediction `ρ(M_t)^l`.
    pub predicted: f64,
    /// Spectral radius of the absorbing transition matrix.
    pub rho: f64,
}

/// Spectral radius of `M_t = A_t D_t^{-1}` with the target removed.
///
/// # Panics
///
/// Panics when power iteration fails to converge (not expected for these
/// substochastic matrices).
pub fn absorbing_spectral_radius(graph: &Graph, target: usize) -> f64 {
    let n = graph.node_count();
    let mut triplets = Vec::new();
    let mut map = vec![usize::MAX; n];
    let mut next = 0;
    for (v, slot) in map.iter_mut().enumerate() {
        if v != target {
            *slot = next;
            next += 1;
        }
    }
    for v in graph.nodes() {
        if v == target {
            continue;
        }
        for u in graph.neighbors(v) {
            if u == target {
                continue;
            }
            // Column-stochastic convention: entry (u, v) = 1 / d(v).
            triplets.push((map[u], map[v], 1.0 / graph.degree(v) as f64));
        }
    }
    let m = CsrMatrix::from_triplets(n - 1, n - 1, &triplets).expect("valid triplets");
    let opts = PowerOptions {
        tolerance: 1e-10,
        max_iterations: 500_000,
    };
    power_iteration(&m, &opts)
        .expect("power iteration on substochastic matrix")
        .eigenvalue
}

/// Measures one cell.
pub fn cell(family: &'static str, graph: &Graph, l_over_n: f64, seed: u64) -> SurvivalRow {
    let n = graph.node_count();
    let target = n - 1;
    let l = ((n as f64) * l_over_n).ceil().max(1.0) as usize;
    let cfg = McConfig::new(64, l)
        .with_seed(seed)
        .with_target(TargetStrategy::Fixed(target));
    let survival = survival_fraction(graph, &cfg).expect("valid graph");
    let rho = absorbing_spectral_radius(graph, target);
    SurvivalRow {
        family,
        n,
        l_over_n,
        survival,
        predicted: rho.powi(l as i32),
        rho,
    }
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (sizes, ratios): (&[usize], &[f64]) = if quick {
        (&[16, 32], &[0.5, 1.0, 2.0])
    } else {
        (&[16, 32, 64], &[0.25, 0.5, 1.0, 2.0, 4.0])
    };
    let mut t = Table::new(
        "E2 (Theorem 1): unabsorbed walk fraction after l steps vs spectral prediction rho(M_t)^l",
        ["family", "n", "l/n", "survival", "rho^l", "rho(M_t)"],
    );
    let mut rng = StdRng::seed_from_u64(2);
    for &n in sizes {
        let families: Vec<(&'static str, Graph)> = vec![
            ("path", path(n).unwrap()),
            ("cycle", cycle(n).unwrap()),
            (
                "grid",
                grid_2d(
                    (n as f64).sqrt().round() as usize,
                    (n as f64).sqrt().round() as usize,
                )
                .unwrap(),
            ),
            (
                "gnp",
                connected_gnp(
                    n,
                    (4.0 * (n as f64).ln() / n as f64).min(0.9),
                    200,
                    &mut rng,
                )
                .unwrap(),
            ),
        ];
        for (family, g) in families {
            for &r in ratios {
                let row = cell(family, &g, r, 42 + n as u64);
                t.add_row([
                    row.family.to_string(),
                    row.n.to_string(),
                    format!("{:.2}", row.l_over_n),
                    fmt4(row.survival),
                    fmt4(row.predicted),
                    fmt4(row.rho),
                ]);
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_decays_with_length() {
        let g = cycle(16).unwrap();
        let short = cell("cycle", &g, 0.5, 7);
        let long = cell("cycle", &g, 4.0, 7);
        assert!(long.survival <= short.survival);
        assert!(
            long.survival < 0.35,
            "survival at l = 4n: {}",
            long.survival
        );
    }

    #[test]
    fn spectral_radius_below_one_and_orders_families() {
        let p = path(24).unwrap();
        let rho_path = absorbing_spectral_radius(&p, 23);
        assert!(rho_path < 1.0 && rho_path > 0.9);
        let k = rwbc_graph::generators::complete(24).unwrap();
        let rho_complete = absorbing_spectral_radius(&k, 23);
        // Expanders absorb much faster: smaller spectral radius.
        assert!(rho_complete < rho_path);
    }

    #[test]
    fn prediction_tracks_measurement_on_expander() {
        // On K_16 the absorbing walk survives each step w.p. 14/15, so
        // rho(M_t) = 14/15 exactly; the measured survival should track
        // rho^l closely.
        let g = rwbc_graph::generators::complete(16).unwrap();
        let row = cell("complete", &g, 4.0, 9);
        assert!((row.rho - 14.0 / 15.0).abs() < 1e-6, "rho {}", row.rho);
        assert!(
            (row.survival - row.predicted).abs() < 0.05,
            "survival {} vs predicted {}",
            row.survival,
            row.predicted
        );
    }
}
