//! **E16 — Sketch-compressed counting.** Exact vs sketch count phase at
//! the same walk workload: per-phase traffic (the compression claim),
//! count-phase state footprint (the memory claim), and accuracy against
//! the exact-mode run across a precision sweep (the error claim, checked
//! against [`sketch_error_bound`]).
//!
//! The walk phase is bit-identical between the two modes — the sketch
//! changes only Algorithm 2 — so every difference the tables show is
//! attributable to the count-phase representation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rwbc::accuracy::{max_relative_error, mean_relative_error};
use rwbc::distributed::{approximate, sketch_error_bound, CountMode, DistributedConfig};
use rwbc::monte_carlo::TargetStrategy;
use rwbc_graph::generators::connected_gnp;
use rwbc_graph::Graph;

use crate::table::{fmt4, Table};

/// Typed result for one count-mode configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchRow {
    /// `"exact"` or the sketch precision.
    pub mode: String,
    /// Count-phase rounds.
    pub count_rounds: usize,
    /// Count-phase bits on the wire.
    pub count_bits: u64,
    /// Count-phase bits relative to exact mode (exact / this).
    pub bit_reduction: f64,
    /// Approximate per-node count-phase state in 64-bit words
    /// (dense columns vs sketch buckets; the peak-RSS driver).
    pub state_words_per_node: u64,
    /// Broadcasts elided by the systolic only-modified-nodes rule.
    pub suppressed: u64,
    /// Mean relative error vs the exact-mode run (0 for exact).
    pub mean_err: f64,
    /// Max relative error vs the exact-mode run (0 for exact).
    pub max_err: f64,
    /// The documented sketch error envelope (NaN for exact).
    pub bound: f64,
}

fn config(seed: u64, k: usize, l: usize, mode: CountMode) -> DistributedConfig {
    DistributedConfig::builder()
        .walks(k)
        .length(l)
        .seed(seed)
        .target(TargetStrategy::Fixed(0))
        .count_mode(mode)
        .build()
        .expect("e16 params")
}

/// Mean degree of a graph (for the state-footprint estimate).
fn mean_degree(g: &Graph) -> f64 {
    2.0 * g.edge_count() as f64 / g.node_count() as f64
}

/// Per-node count-phase state in 64-bit words: the exact program holds
/// one dense `n`-column per neighbor plus its own, the sketch program
/// `2^p` buckets per neighbor plus its own (registers are bytes).
fn state_words(g: &Graph, mode: CountMode) -> u64 {
    let n = g.node_count() as f64;
    let deg = mean_degree(g);
    let per_node = match mode {
        CountMode::Exact => n * (deg + 1.0),
        CountMode::Sketch { precision } => {
            let b = f64::from(1u32 << precision);
            b * (deg + 1.0) + b / 8.0
        }
    };
    per_node.round() as u64
}

/// Runs the precision sweep on one graph and workload.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn sweep(g: &Graph, k: usize, l: usize, seed: u64, precisions: &[u8]) -> Vec<SketchRow> {
    let exact = approximate(g, &config(seed, k, l, CountMode::Exact)).expect("exact run");
    let exact_bits = exact.phase_breakdown().count.bits;
    let mut rows = vec![SketchRow {
        mode: "exact".to_string(),
        count_rounds: exact.count_stats.rounds,
        count_bits: exact_bits,
        bit_reduction: 1.0,
        state_words_per_node: state_words(g, CountMode::Exact),
        suppressed: 0,
        mean_err: 0.0,
        max_err: 0.0,
        bound: f64::NAN,
    }];
    for &precision in precisions {
        let mode = CountMode::Sketch { precision };
        let run = approximate(g, &config(seed, k, l, mode)).expect("sketch run");
        assert_eq!(
            run.walk_stats, exact.walk_stats,
            "walk phase must be mode-invariant"
        );
        let bits = run.phase_breakdown().count.bits;
        rows.push(SketchRow {
            mode: format!("sketch p={precision}"),
            count_rounds: run.count_stats.rounds,
            count_bits: bits,
            bit_reduction: exact_bits as f64 / bits.max(1) as f64,
            state_words_per_node: state_words(g, mode),
            suppressed: run.sketch_suppressed,
            mean_err: mean_relative_error(&run.centrality, &exact.centrality),
            max_err: max_relative_error(&run.centrality, &exact.centrality),
            bound: sketch_error_bound(precision),
        });
    }
    rows
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 64 } else { 256 };
    let (k, l) = (4, 64); // the bench-matrix workload
    let mut rng = StdRng::seed_from_u64(16);
    let deg = (1.5 * (n as f64).ln()).max(6.0);
    let g = connected_gnp(n, deg / (n as f64 - 1.0), 200, &mut rng).unwrap();
    let precisions: &[u8] = if quick { &[3, 4, 5] } else { &[4, 6, 8] };
    let mut t = Table::new(
        "E16: exact vs sketch count phase (traffic, state, accuracy)",
        [
            "mode",
            "count rounds",
            "count bits",
            "bit reduction",
            "state words/node",
            "suppressed",
            "mean rel err",
            "max rel err",
            "error bound",
        ],
    );
    for r in sweep(&g, k, l, 1600 + n as u64, precisions) {
        t.add_row([
            r.mode.clone(),
            r.count_rounds.to_string(),
            r.count_bits.to_string(),
            format!("{:.2}x", r.bit_reduction),
            r.state_words_per_node.to_string(),
            r.suppressed.to_string(),
            fmt4(r.mean_err),
            fmt4(r.max_err),
            if r.bound.is_nan() {
                "-".to_string()
            } else {
                fmt4(r.bound)
            },
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_compresses_and_stays_inside_the_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = connected_gnp(64, 0.12, 200, &mut rng).unwrap();
        let rows = sweep(&g, 4, 64, 9, &[4]);
        assert_eq!(rows.len(), 2);
        let (exact, sketch) = (&rows[0], &rows[1]);
        // 16 bucket rounds against 64 source rounds, strictly fewer bits,
        // and a much smaller resident count state.
        assert_eq!(exact.count_rounds, 64);
        assert_eq!(sketch.count_rounds, 16);
        assert!(
            sketch.bit_reduction > 2.0,
            "bit reduction {}",
            sketch.bit_reduction
        );
        assert!(sketch.state_words_per_node < exact.state_words_per_node / 2);
        assert!(
            sketch.mean_err <= sketch.bound,
            "mean err {} above bound {}",
            sketch.mean_err,
            sketch.bound
        );
    }

    #[test]
    fn accuracy_tightens_as_precision_grows() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = connected_gnp(48, 0.15, 200, &mut rng).unwrap();
        let rows = sweep(&g, 8, 64, 11, &[3, 6]);
        // Every precision stays inside its own envelope, and the coarse
        // sketch's envelope is strictly wider than the fine one's.
        assert!(rows[1].mean_err <= rows[1].bound);
        assert!(rows[2].mean_err <= rows[2].bound);
        assert!(rows[1].bound > rows[2].bound);
    }
}
