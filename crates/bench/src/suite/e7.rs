//! **E7 — Theorem 2.** End-to-end approximation quality of the distributed
//! algorithm against the exact solver, across graph families: relative
//! errors, rank agreement, top-k overlap, plus the measured walk-survival
//! residual (the realized `ε` of the `(1 − ε)` guarantee).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rwbc::accuracy::{max_relative_error, mean_relative_error, spearman_rho, top_k_jaccard};
use rwbc::distributed::{approximate, DistributedConfig};
use rwbc::exact::newman;
use rwbc::monte_carlo::{estimate, estimate_averaged, McConfig};
use rwbc_graph::generators::{barabasi_albert, connected_gnp, cycle, fig1_graph, grid_2d};
use rwbc_graph::Graph;

use crate::table::{fmt4, Table};

/// Typed result for one family.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRow {
    /// Family label.
    pub family: &'static str,
    /// Nodes.
    pub n: usize,
    /// Mean relative error.
    pub mean_err: f64,
    /// Max relative error.
    pub max_err: f64,
    /// Spearman rank correlation.
    pub rho: f64,
    /// Top-5 Jaccard overlap.
    pub top5: f64,
    /// Total rounds spent.
    pub rounds: usize,
}

/// Measures one family.
///
/// # Panics
///
/// Panics on solver/simulation failure.
pub fn row(family: &'static str, graph: &Graph, k: usize, l: usize, seed: u64) -> QualityRow {
    let exact = newman(graph).expect("exact solver");
    let cfg = DistributedConfig::builder()
        .walks(k)
        .length(l)
        .seed(seed)
        .build()
        .expect("positive parameters");
    let run = approximate(graph, &cfg).expect("CONGEST run");
    QualityRow {
        family,
        n: graph.node_count(),
        mean_err: mean_relative_error(&run.centrality, &exact),
        max_err: max_relative_error(&run.centrality, &exact),
        rho: spearman_rho(&run.centrality, &exact),
        top5: top_k_jaccard(&run.centrality, &exact, 5),
        rounds: run.total_rounds(),
    }
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 16 } else { 30 };
    let (k, l) = if quick { (200, 8 * n) } else { (600, 10 * n) };
    let mut rng = StdRng::seed_from_u64(7);
    let side = (n as f64).sqrt().round() as usize;
    let families: Vec<(&'static str, Graph)> = vec![
        (
            "gnp",
            connected_gnp(n, 4.0 * (n as f64).ln() / n as f64, 300, &mut rng).unwrap(),
        ),
        ("ba", barabasi_albert(n, 2, &mut rng).unwrap()),
        ("grid", grid_2d(side, side).unwrap()),
        ("cycle", cycle(n).unwrap()),
        ("fig1", fig1_graph(n / 4).unwrap().0),
    ];
    let mut t = Table::new(
        "E7 (Theorem 2): distributed estimate vs exact across families",
        [
            "family",
            "n",
            "mean rel err",
            "max rel err",
            "spearman",
            "top5 jaccard",
            "rounds",
        ],
    );
    for (family, g) in families {
        let r = row(family, &g, k, l, 700 + g.node_count() as u64);
        t.add_row([
            r.family.to_string(),
            r.n.to_string(),
            fmt4(r.mean_err),
            fmt4(r.max_err),
            fmt4(r.rho),
            fmt4(r.top5),
            r.rounds.to_string(),
        ]);
    }

    // Multi-target averaging (DESIGN.md S5 extension): same total walk
    // budget, split over 1 / 2 / 4 absorbing targets.
    let mut rng2 = StdRng::seed_from_u64(71);
    let g = connected_gnp(n, 4.0 * (n as f64).ln() / n as f64, 300, &mut rng2).unwrap();
    let exact = newman(&g).unwrap();
    let mut t2 = Table::new(
        "E7b: multi-target averaging at equal total walk budget",
        ["targets", "K per target", "mean rel err", "max rel err"],
    );
    let total_k = k;
    for targets in [1usize, 2, 4] {
        let per = (total_k / targets).max(1);
        let cfg = McConfig::new(per, l).with_seed(72);
        let (mean_e, max_e) = if targets == 1 {
            let run = estimate(&g, &cfg).unwrap();
            (
                mean_relative_error(&run.centrality, &exact),
                max_relative_error(&run.centrality, &exact),
            )
        } else {
            let run = estimate_averaged(&g, &cfg, targets).unwrap();
            (
                mean_relative_error(&run.centrality, &exact),
                max_relative_error(&run.centrality, &exact),
            )
        };
        t2.add_row([
            targets.to_string(),
            per.to_string(),
            fmt4(mean_e),
            fmt4(max_e),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_is_high_on_expander() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = connected_gnp(16, 0.5, 100, &mut rng).unwrap();
        let r = row("gnp", &g, 800, 160, 3);
        assert!(r.mean_err < 0.08, "mean err {}", r.mean_err);
        assert!(r.rho > 0.85, "rho {}", r.rho);
    }

    #[test]
    fn quality_reasonable_on_cycle() {
        let g = cycle(12).unwrap();
        let r = row("cycle", &g, 800, 240, 4);
        // Cycles are vertex-transitive: exact scores are all equal, so rank
        // metrics are meaningless; errors must still be small.
        assert!(r.mean_err < 0.1, "mean err {}", r.mean_err);
    }
}
