//! **E11 (extension) — chaos sweep: accuracy and round overhead under
//! faults.** The CONGEST model is reliable; real networks are not. The
//! simulator's [`FaultPlan`] injects Bernoulli drops and scheduled node
//! crashes, and the [`Reliable`](congest_sim::Reliable) adapter repairs
//! them with sequence numbers, cumulative acks, and timeout
//! retransmission. This experiment sweeps the drop rate (raw vs reliable
//! transport) and the number of transient node crashes, reporting the
//! estimator's accuracy, the loss it *accounts for*, and the round
//! overhead the repair costs.

use congest_sim::{FaultPlan, NodeCrash, SimConfig};
use rwbc::accuracy::mean_relative_error;
use rwbc::distributed::{approximate, DistributedConfig, DistributedRun};
use rwbc::exact::newman;
use rwbc::monte_carlo::TargetStrategy;
use rwbc_graph::Graph;

use crate::table::{fmt2, fmt4, Table};

/// Typed result for one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Bernoulli drop probability.
    pub drop_p: f64,
    /// `"raw"` or `"reliable"`.
    pub transport: &'static str,
    /// Mean relative error vs the exact solver.
    pub mean_err: f64,
    /// Walk tokens lost (death-conservation audit).
    pub walks_lost: u64,
    /// Phase-2 neighbor-count cells that never arrived.
    pub cells_missing: u64,
    /// Frames re-sent by the reliable layer.
    pub retransmissions: u64,
    /// Total rounds (both phases).
    pub rounds: usize,
    /// Rounds relative to the fault-free run of the same transport.
    pub overhead: f64,
}

fn chaos_config(seed: u64, reliable: bool, faults: FaultPlan) -> DistributedConfig {
    let mut cfg = DistributedConfig::builder()
        .walks(800)
        .length(100)
        .seed(seed)
        .target(TargetStrategy::Fixed(0))
        .reliable(reliable)
        .build()
        .expect("params");
    // The constant-size reliable header needs headroom on tiny n; the
    // raw runs use the same budget so the comparison is apples-to-apples.
    cfg.sim = SimConfig::default()
        .with_bandwidth_coeff(16)
        .with_faults(faults);
    cfg
}

fn run_one(g: &Graph, seed: u64, reliable: bool, faults: FaultPlan) -> DistributedRun {
    approximate(g, &chaos_config(seed, reliable, faults)).expect("chaos run")
}

/// Sweeps drop rates over both transports on the Fig. 1 graph.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn drop_sweep(g: &Graph, drop_rates: &[f64], seed: u64) -> Vec<ChaosRow> {
    let exact = newman(g).expect("exact");
    let mut rows = Vec::new();
    for &reliable in &[false, true] {
        let transport = if reliable { "reliable" } else { "raw" };
        let mut clean_rounds = 0usize;
        for &p in drop_rates {
            let run = run_one(
                g,
                seed,
                reliable,
                FaultPlan::default().with_drop_probability(p),
            );
            let rounds = run.total_rounds();
            if p == 0.0 {
                clean_rounds = rounds;
            }
            rows.push(ChaosRow {
                drop_p: p,
                transport,
                mean_err: mean_relative_error(&run.centrality, &exact),
                walks_lost: run.degradation.walks_lost,
                cells_missing: run.degradation.count_cells_missing,
                retransmissions: run.walk_stats.retransmissions + run.count_stats.retransmissions,
                rounds,
                overhead: rounds as f64 / clean_rounds.max(1) as f64,
            });
        }
    }
    rows
}

/// Crashes `count` community members transiently (down for rounds
/// [20, 60)) under reliable transport and measures the recovery.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn crash_sweep(g: &Graph, victims: &[usize], seed: u64) -> Vec<ChaosRow> {
    let exact = newman(g).expect("exact");
    let mut rows = Vec::new();
    let mut clean_rounds = 0usize;
    for count in 0..=victims.len() {
        let mut faults = FaultPlan::default();
        for &node in &victims[..count] {
            faults = faults.with_node_crash(NodeCrash {
                node,
                crash_round: 20,
                recover_round: Some(60),
            });
        }
        let run = run_one(g, seed, true, faults);
        let rounds = run.total_rounds();
        if count == 0 {
            clean_rounds = rounds;
        }
        rows.push(ChaosRow {
            drop_p: count as f64, // reused as the crash count
            transport: "reliable",
            mean_err: mean_relative_error(&run.centrality, &exact),
            walks_lost: run.degradation.walks_lost,
            cells_missing: run.degradation.count_cells_missing,
            retransmissions: run.walk_stats.retransmissions + run.count_stats.retransmissions,
            rounds,
            overhead: rounds as f64 / clean_rounds.max(1) as f64,
        });
    }
    rows
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (g, labels) = rwbc_graph::generators::fig1_graph(3).expect("fig1");

    let rates: &[f64] = if quick {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.01, 0.02, 0.05, 0.10]
    };
    let mut drops = Table::new(
        "E11 (extension): accuracy + round overhead vs drop rate (Fig. 1 graph, K = 800, l = 100)",
        [
            "transport",
            "drop p",
            "mean rel err",
            "walks lost",
            "cells missing",
            "retransmits",
            "rounds",
            "rounds/clean",
        ],
    );
    for r in drop_sweep(&g, rates, 1101) {
        drops.add_row([
            r.transport.to_string(),
            fmt2(r.drop_p),
            fmt4(r.mean_err),
            r.walks_lost.to_string(),
            r.cells_missing.to_string(),
            r.retransmissions.to_string(),
            r.rounds.to_string(),
            fmt2(r.overhead),
        ]);
    }
    // The worst sweep cell in full: the derived retransmission and
    // overhead rates put the table's "rounds/clean" column in context.
    let worst_p = *rates.last().unwrap();
    let worst = run_one(
        &g,
        1101,
        true,
        FaultPlan::default().with_drop_probability(worst_p),
    );
    drops.add_note(format!(
        "walk-phase RunStats at drop p = {worst_p:.2}, reliable transport:\n{}",
        worst.walk_stats.summary()
    ));

    let victims: Vec<usize> = if quick {
        labels.left.iter().copied().take(1).collect()
    } else {
        labels
            .left
            .iter()
            .chain(&labels.right)
            .copied()
            .take(3)
            .collect()
    };
    let mut crashes = Table::new(
        "E11b: transient node crashes (down rounds [20, 60)) under reliable transport",
        [
            "crashed nodes",
            "mean rel err",
            "walks lost",
            "cells missing",
            "retransmits",
            "rounds",
            "rounds/clean",
        ],
    );
    for r in crash_sweep(&g, &victims, 1102) {
        crashes.add_row([
            format!("{}", r.drop_p as usize),
            fmt4(r.mean_err),
            r.walks_lost.to_string(),
            r.cells_missing.to_string(),
            r.retransmissions.to_string(),
            r.rounds.to_string(),
            fmt2(r.overhead),
        ]);
    }
    vec![drops, crashes]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwbc_graph::generators::fig1_graph;

    #[test]
    fn reliable_transport_stays_accurate_and_accounted_under_drops() {
        let (g, _) = fig1_graph(2).unwrap();
        let rows = drop_sweep(&g, &[0.0, 0.05], 7);
        for r in &rows {
            assert!(r.mean_err.is_finite());
            if r.transport == "reliable" {
                assert_eq!(r.walks_lost, 0, "{r:?}");
                assert_eq!(r.cells_missing, 0, "{r:?}");
            }
            if r.transport == "raw" && r.drop_p == 0.0 {
                assert_eq!(r.retransmissions, 0);
            }
        }
        // The 5% reliable run pays for its repairs in rounds, not accuracy.
        let rel5 = rows
            .iter()
            .find(|r| r.transport == "reliable" && r.drop_p > 0.0)
            .unwrap();
        assert!(rel5.retransmissions > 0);
        assert!(rel5.overhead > 1.0);
    }

    #[test]
    fn transient_crashes_are_fully_repaired() {
        let (g, labels) = fig1_graph(2).unwrap();
        let rows = crash_sweep(&g, &labels.left[..1], 8);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.walks_lost, 0, "{r:?}");
            assert_eq!(r.cells_missing, 0, "{r:?}");
        }
    }
}
