//! **E15 (extension) — telemetry overhead.** Instrumentation that
//! costs real throughput gets turned off in production, and then the
//! one incident that needed it has no data. This experiment prices the
//! metrics registry: the full distributed pipeline (`clean-er`
//! workload, the perf tier's scenario) is driven to completion through
//! [`StepSolver`] twice per trial — once bare, once with
//! [`EngineMetrics`] attached (round, message, bit, and inbox-depth
//! instruments on the engine's commit spine) — with trials
//! interleaved so OS drift hits both variants equally. The claim: the
//! instrumented median is within 1% of bare (the instruments are a
//! handful of atomics per committed round, not per message), and the
//! metric *content* is bit-identical across thread counts, so
//! telemetry never becomes a reason to alter the determinism contract.
//!
//! [`StepSolver`]: rwbc::distributed::StepSolver
//! [`EngineMetrics`]: congest_sim::EngineMetrics

use std::time::Instant;

use congest_sim::{EngineMetrics, MetricsSnapshot, Registry};
use rwbc::distributed::StepSolver;

use crate::perf::{Mode, Scenario, Topology};
use crate::table::Table;

/// One variant's timing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// `bare` or `instrumented`.
    pub variant: &'static str,
    /// Timed trials.
    pub trials: usize,
    /// Median wall-clock, milliseconds.
    pub median_ms: f64,
    /// Rounds the solve ran (identical across variants by determinism).
    pub rounds: u64,
}

/// Drives one full solve; returns (wall-clock ms, rounds, snapshot).
fn one_solve(scenario: &Scenario, instrument: bool) -> (f64, u64, Option<MetricsSnapshot>) {
    let graph = scenario.build_graph();
    let config = scenario.build_config();
    let registry = Registry::default();
    let start = Instant::now();
    let mut solver = StepSolver::new(&graph, config).expect("solver");
    if instrument {
        solver.set_metrics(EngineMetrics::register(&registry));
    }
    solver.run_to_completion().expect("solve");
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let rounds = solver.rounds_completed() as u64;
    let snapshot = instrument.then(|| registry.snapshot());
    (elapsed_ms, rounds, snapshot)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Runs the interleaved bare/instrumented sweep.
///
/// Returns the two rows plus the instrumented snapshot's
/// `engine_rounds_total` (for the cross-check against stepped rounds).
///
/// # Panics
///
/// Panics if a solve fails or the two variants disagree on rounds —
/// instrumentation altering the solve is exactly the regression this
/// experiment exists to catch.
pub fn overhead_sweep(n: usize, trials: usize) -> (Vec<OverheadRow>, u64) {
    let scenario = Scenario::new(Mode::Clean, Topology::Er, n, 1);
    let mut bare_ms = Vec::with_capacity(trials);
    let mut instr_ms = Vec::with_capacity(trials);
    let mut rounds_seen: Option<u64> = None;
    let mut metric_rounds = 0u64;
    // One untimed warmup pair soaks up allocator and cache cold-start.
    let _ = one_solve(&scenario, false);
    let _ = one_solve(&scenario, true);
    for _ in 0..trials {
        let (ms, rounds, _) = one_solve(&scenario, false);
        bare_ms.push(ms);
        assert_eq!(*rounds_seen.get_or_insert(rounds), rounds, "bare rounds");
        let (ms, rounds, snapshot) = one_solve(&scenario, true);
        instr_ms.push(ms);
        assert_eq!(
            *rounds_seen.get_or_insert(rounds),
            rounds,
            "instrumented rounds — telemetry must not change the solve"
        );
        metric_rounds = snapshot
            .expect("instrumented snapshot")
            .counter("engine_rounds_total")
            .unwrap_or(0);
    }
    let rounds = rounds_seen.unwrap_or(0);
    let rows = vec![
        OverheadRow {
            variant: "bare",
            trials,
            median_ms: median(&mut bare_ms),
            rounds,
        },
        OverheadRow {
            variant: "instrumented",
            trials,
            median_ms: median(&mut instr_ms),
            rounds,
        },
    ];
    (rows, metric_rounds)
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (n, trials) = if quick { (64, 3) } else { (1024, 5) };
    let (rows, metric_rounds) = overhead_sweep(n, trials);
    let bare = rows[0].median_ms;
    let mut table = Table::new(
        "E15 (extension): telemetry overhead — full clean-er solve, bare vs \
         EngineMetrics attached (interleaved trials, median wall-clock)",
        [
            "variant",
            "trials",
            "median ms",
            "rounds",
            "metric rounds",
            "overhead %",
        ],
    );
    for r in &rows {
        let overhead_pct = if bare > 0.0 {
            (r.median_ms - bare) / bare * 100.0
        } else {
            0.0
        };
        table.add_row([
            r.variant.to_string(),
            r.trials.to_string(),
            format!("{:.2}", r.median_ms),
            r.rounds.to_string(),
            if r.variant == "instrumented" {
                metric_rounds.to_string()
            } else {
                "-".to_string()
            },
            format!("{overhead_pct:+.2}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumentation_changes_nothing_but_time() {
        let (rows, metric_rounds) = overhead_sweep(32, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].rounds, rows[1].rounds);
        assert!(rows[0].rounds > 0);
        // The registry saw every committed round the solver stepped.
        assert_eq!(metric_rounds, rows[1].rounds);
    }
}
