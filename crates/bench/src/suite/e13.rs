//! **E13 (extension) — corruption sweep: checksummed frames vs the raw
//! transport.** E11/E12 fault messages by dropping, delaying, or killing;
//! this experiment *mangles* them — bit flips, truncation, garbage — at
//! increasing rates and measures what the integrity layer buys. The raw
//! transport silently loses every corrupted token (walk-batch decode
//! rejects the frame or, worse, swallows a plausible wrong token), while
//! the checksummed reliable adapter detects each damaged frame by CRC,
//! withholds the ack, and lets retransmission repair it. The headline
//! claim — enabled by the walk phase's schedule-invariant randomness —
//! is exact: a repaired run's centrality is **bit-identical** to the
//! fault-free run, at any corruption rate the links survive. A final
//! scenario makes one link corrupt *everything* forever, which no
//! retransmission can outlast; the detector quarantines the channel and
//! the run degrades honestly instead of hanging.

use congest_sim::{FaultPlan, LinkCorruption, SimConfig};
use rwbc::accuracy::mean_relative_error;
use rwbc::distributed::{approximate, DistributedRun};
use rwbc::exact::newman;
use rwbc::monte_carlo::TargetStrategy;
use rwbc::Centrality;

use crate::table::{fmt4, Table};

/// Typed result for one corruption scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionRow {
    /// Scenario label.
    pub scenario: String,
    /// Per-message corruption probability.
    pub corrupt_p: f64,
    /// Whether the checksummed reliable adapter was on.
    pub checksums: bool,
    /// Mean relative error against the exact solver.
    pub mean_err: f64,
    /// Messages the fault layer actually mangled (both phases).
    pub corrupted: u64,
    /// Mangled frames the CRC caught and retransmission repaired.
    pub frames_detected: u64,
    /// Links the detector quarantined as persistently corrupting.
    pub quarantined: u64,
    /// Walk tokens lost for good.
    pub walks_lost: u64,
    /// Whether the degradation report came back clean.
    pub clean: bool,
    /// Whether the centrality is bit-identical to the fault-free run
    /// with the same seed and transport.
    pub fingerprint_match: bool,
    /// Total rounds across both phases.
    pub rounds: usize,
}

fn corrupt_config(
    seed: u64,
    walks: usize,
    length: usize,
    checksums: bool,
    faults: FaultPlan,
) -> rwbc::distributed::DistributedConfig {
    let mut cfg = rwbc::distributed::DistributedConfig::builder()
        .walks(walks)
        .length(length)
        .seed(seed)
        .target(TargetStrategy::Fixed(0))
        .reliable(checksums)
        .checksums(checksums)
        .build()
        .expect("params");
    cfg.sim = SimConfig::default()
        .with_bandwidth_coeff(16)
        .with_faults(faults);
    cfg
}

fn summarize(
    scenario: String,
    corrupt_p: f64,
    checksums: bool,
    run: &DistributedRun,
    exact: &Centrality,
    baseline: &Centrality,
) -> CorruptionRow {
    CorruptionRow {
        scenario,
        corrupt_p,
        checksums,
        mean_err: mean_relative_error(&run.centrality, exact),
        corrupted: run.walk_stats.corrupted + run.count_stats.corrupted,
        frames_detected: run.degradation.corrupt_frames_detected,
        quarantined: run.degradation.links_quarantined,
        walks_lost: run.degradation.walks_lost,
        clean: run.degradation.is_clean(),
        fingerprint_match: run.centrality == *baseline,
        rounds: run.total_rounds(),
    }
}

/// Runs the corruption sweep on the Fig. 1 graph: each rate once over the
/// raw transport and once behind the checksummed reliable adapter, plus
/// the persistently-corrupting-link quarantine scenario.
///
/// # Panics
///
/// Panics on simulation failure.
pub fn corruption_sweep(walks: usize, length: usize, seed: u64, quick: bool) -> Vec<CorruptionRow> {
    let (g, labels) = rwbc_graph::generators::fig1_graph(3).expect("fig1");
    let exact = newman(&g).expect("exact");
    let rates: &[f64] = if quick {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.02, 0.05, 0.10]
    };
    // Fault-free reference fingerprints, one per transport (the raw and
    // reliable transports draw identical walks but round phase-2 counts
    // through different paths, so each is its own baseline).
    let baseline = |checksums: bool| -> DistributedRun {
        approximate(
            &g,
            &corrupt_config(seed, walks, length, checksums, FaultPlan::default()),
        )
        .expect("fault-free baseline")
    };
    let base_raw = baseline(false);
    let base_crc = baseline(true);
    let mut rows = Vec::new();
    for &p in rates {
        for checksums in [false, true] {
            let faults = FaultPlan::default().with_corrupt_probability(p);
            let run = approximate(&g, &corrupt_config(seed, walks, length, checksums, faults))
                .expect("corruption run");
            let base = if checksums { &base_crc } else { &base_raw };
            let label = if checksums { "checksummed" } else { "raw" };
            rows.push(summarize(
                format!("{label} p={p}"),
                p,
                checksums,
                &run,
                &exact,
                &base.centrality,
            ));
        }
    }
    // One link corrupting everything forever: undetectable-by-retry, so
    // the checksummed layer must quarantine it and degrade honestly.
    let poisoned = FaultPlan::default().with_link_corruption(LinkCorruption {
        u: labels.left[0],
        v: labels.left[1],
        from_round: 0,
        until_round: usize::MAX,
    });
    let run = approximate(&g, &corrupt_config(seed, walks, length, true, poisoned))
        .expect("quarantine run");
    rows.push(summarize(
        "checksummed, one link always corrupt".to_string(),
        1.0,
        true,
        &run,
        &exact,
        &base_crc.centrality,
    ));
    rows
}

/// Runs the full experiment.
pub fn run(quick: bool) -> Vec<Table> {
    let (walks, length) = if quick { (60, 40) } else { (200, 60) };
    let mut table = Table::new(
        "E13 (extension): payload corruption, raw transport vs checksummed \
         reliable frames (Fig. 1 graph, n = 23)",
        [
            "scenario",
            "mean rel err",
            "corrupted",
            "frames caught",
            "quarantined",
            "walks lost",
            "clean",
            "fingerprint",
            "rounds",
        ],
    );
    for r in corruption_sweep(walks, length, 1301, quick) {
        table.add_row([
            r.scenario.clone(),
            fmt4(r.mean_err),
            r.corrupted.to_string(),
            r.frames_detected.to_string(),
            r.quarantined.to_string(),
            r.walks_lost.to_string(),
            r.clean.to_string(),
            if r.fingerprint_match {
                "match"
            } else {
                "DIFFERS"
            }
            .to_string(),
            r.rounds.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksummed_runs_repair_to_the_exact_clean_fingerprint() {
        let rows = corruption_sweep(60, 40, 7, true);
        // quick: 2 rates x 2 transports + quarantine scenario.
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.mean_err.is_finite());
            if r.checksums && r.quarantined == 0 {
                // The headline claim: every fully-repaired checksummed run
                // is bit-identical to its fault-free baseline.
                assert!(r.fingerprint_match, "{} diverged", r.scenario);
                assert!(r.clean, "{} not clean", r.scenario);
                assert_eq!(r.walks_lost, 0);
            }
        }
        // The nonzero-rate checksummed run actually exercised the CRC.
        let repaired = rows
            .iter()
            .find(|r| r.checksums && r.corrupt_p > 0.0 && r.quarantined == 0)
            .expect("repaired run present");
        assert!(repaired.corrupted > 0);
        assert!(repaired.frames_detected > 0);
        // The raw transport at the same rate lost walks.
        let raw = rows
            .iter()
            .find(|r| !r.checksums && r.corrupt_p > 0.0)
            .expect("raw run present");
        assert!(raw.walks_lost > 0, "raw transport should lose walks");
        assert!(!raw.clean);
        // The poisoned link ends quarantined, not hung.
        let quarantined = rows.last().unwrap();
        assert!(quarantined.quarantined > 0);
        assert!(!quarantined.clean);
    }
}
