//! Load-replay harness for the `rwbc-serve` daemon, behind the
//! `rwbc-replay` binary.
//!
//! The perf harness in [`crate::perf`] measures the solver; this module
//! measures the *service*: it drives a stream of centrality / ranking /
//! stats queries at a daemon over the real TCP protocol and reports
//! throughput, exact p50/p99 latency (from the full sorted sample set),
//! a log-bucketed latency histogram (the trace profile's
//! [`LogHistogram`] buckets), and the typed outcome counts — how many
//! requests were served, shed (`Overloaded`), deadline-expired
//! (`Timeout`), or answered `NotReady`.
//!
//! Two traffic shapes:
//!
//! * **closed-loop** — `clients` workers, each firing its next request
//!   the moment the previous one completes. Measures capacity.
//! * **open-loop** — requests fired on a fixed schedule at `rate_hz`
//!   regardless of completions (each worker owns an interleaved slice
//!   of the schedule). Measures behavior *past* capacity, where a
//!   closed loop would coordinate-omit; when the daemon falls behind,
//!   latency and shed counts grow instead of the arrival rate shrinking.
//!
//! Results serialize to `BENCH_serve-*.json` via [`ServeBenchResult`],
//! a sibling schema to the solver artifacts with its own validator.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use congest_sim::trace::json::Json;
use congest_sim::trace::LogHistogram;
use rwbc_serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestEnvelope, Response,
};
use rwbc_serve::{Client, ServeStats};

use crate::perf::{MIN_SCHEMA_VERSION, SCHEMA_VERSION};

/// Traffic shape of a replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// Each client fires its next request when the previous completes.
    Closed,
    /// Requests fire on a fixed schedule at this aggregate rate,
    /// regardless of completions.
    Open {
        /// Aggregate request rate across all clients, per second.
        rate_hz: f64,
    },
}

impl ReplayMode {
    /// Schema string (`closed` / `open`).
    pub fn as_str(self) -> &'static str {
        match self {
            ReplayMode::Closed => "closed",
            ReplayMode::Open { .. } => "open",
        }
    }
}

/// One replay run's parameters.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Daemon address.
    pub addr: String,
    /// Traffic shape.
    pub mode: ReplayMode,
    /// Concurrent client workers.
    pub clients: usize,
    /// Replay duration.
    pub duration: Duration,
    /// Per-request deadline, milliseconds.
    pub deadline_ms: u32,
    /// Workload-mix seed (node choices and request kinds derive from it).
    pub seed: u64,
    /// Nodes in the served graph (centrality queries cycle over them).
    pub n: usize,
    /// Scrape `Request::Metrics` at this cadence during the replay and
    /// embed the samples in the artifact; `None` disables scraping.
    pub metrics_every: Option<Duration>,
}

impl ReplayConfig {
    /// A closed-loop replay with 4 clients, a 1-second deadline, and a
    /// 250 ms metrics scrape.
    pub fn closed(addr: impl Into<String>, n: usize, duration: Duration) -> ReplayConfig {
        ReplayConfig {
            addr: addr.into(),
            mode: ReplayMode::Closed,
            clients: 4,
            duration,
            deadline_ms: 1000,
            seed: 42,
            n,
            metrics_every: Some(Duration::from_millis(250)),
        }
    }
}

/// One mid-replay `Request::Metrics` scrape, reduced to the counters
/// the time-series is about. Counters are cumulative since daemon
/// start, so consecutive samples must be non-decreasing — the
/// validator enforces that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSample {
    /// Milliseconds since the replay started (client clock).
    pub at_ms: u64,
    /// Daemon uptime at the scrape (daemon clock).
    pub uptime_ms: u64,
    /// `serve_requests_total`.
    pub requests_total: u64,
    /// `serve_requests_answered_total`.
    pub answered_total: u64,
    /// `serve_requests_timed_out_total`.
    pub timed_out_total: u64,
    /// `serve_requests_shed_total`.
    pub shed_total: u64,
    /// `serve_queue_depth` gauge.
    pub queue_depth: u64,
    /// `engine_rounds_total` (0 when the engine is not instrumented).
    pub engine_rounds: u64,
    /// Fast-window SLO burn rate.
    pub burn_fast: f64,
    /// Slow-window SLO burn rate.
    pub burn_slow: f64,
}

/// Typed outcome tallies across all replayed requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Requests that got a `Value` / `Ranking` / `Stats` answer.
    pub served: u64,
    /// Typed `Overloaded` sheds.
    pub overloaded: u64,
    /// Typed `Timeout` answers.
    pub timed_out: u64,
    /// Typed `NotReady` answers.
    pub not_ready: u64,
    /// Typed `Draining` refusals.
    pub draining: u64,
    /// Typed `Error` answers.
    pub errors: u64,
    /// Connect/socket failures.
    pub io_errors: u64,
}

impl OutcomeCounts {
    /// Total requests attempted.
    pub fn sent(&self) -> u64 {
        self.served
            + self.overloaded
            + self.timed_out
            + self.not_ready
            + self.draining
            + self.errors
            + self.io_errors
    }
}

/// Measured result of one replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The replay that was run.
    pub config: ReplayConfig,
    /// Outcome tallies.
    pub outcomes: OutcomeCounts,
    /// Per-request wall-clock for *served* requests, microseconds,
    /// ascending.
    pub latencies_us: Vec<u64>,
    /// Log-bucketed view of the same latencies.
    pub histogram: LogHistogram,
    /// Actual wall-clock the replay ran.
    pub elapsed: Duration,
    /// Daemon-side counters at the end of the replay, when readable.
    pub server_stats: Option<ServeStats>,
    /// Mid-replay metrics scrapes, oldest first (empty when scraping
    /// was disabled or every scrape failed).
    pub metrics_timeseries: Vec<MetricsSample>,
}

/// SplitMix64, for the deterministic workload mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The `i`-th request of the deterministic mix: mostly single-node
/// centrality over a pseudorandom node, a top-8 ranking every 8th, a
/// stats probe every 32nd.
fn mix_request(seed: u64, i: u64, n: usize) -> Request {
    if i % 32 == 31 {
        Request::Stats
    } else if i % 8 == 7 {
        Request::TopK { k: 8 }
    } else {
        Request::Centrality {
            node: (splitmix64(seed ^ i) % n.max(1) as u64) as usize,
        }
    }
}

/// One raw request/response exchange (no retries — the replay records
/// every typed outcome as-is).
fn exchange(addr: &str, env: &RequestEnvelope, io_timeout: Duration) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(io_timeout)).ok()?;
    stream.set_write_timeout(Some(io_timeout)).ok()?;
    write_frame(&mut stream, &encode_request(env)).ok()?;
    let payload = read_frame(&mut stream).ok()?;
    decode_response(&payload).ok()
}

struct WorkerTally {
    outcomes: OutcomeCounts,
    latencies_us: Vec<u64>,
}

fn classify(tally: &mut OutcomeCounts, response: Option<&Response>) {
    match response {
        Some(Response::Value { .. } | Response::Ranking { .. } | Response::Stats(_)) => {
            tally.served += 1;
        }
        Some(Response::Overloaded { .. }) => tally.overloaded += 1,
        Some(Response::Timeout { .. }) => tally.timed_out += 1,
        Some(Response::NotReady { .. }) => tally.not_ready += 1,
        Some(Response::Draining) => tally.draining += 1,
        Some(_) => tally.errors += 1,
        None => tally.io_errors += 1,
    }
}

fn worker(
    config: &ReplayConfig,
    worker_id: usize,
    stop_at: Instant,
    seq: &AtomicU64,
) -> WorkerTally {
    let mut tally = WorkerTally {
        outcomes: OutcomeCounts::default(),
        latencies_us: Vec::new(),
    };
    let io_timeout = Duration::from_millis(u64::from(config.deadline_ms) + 2000);
    // Open loop: this worker owns schedule slots worker_id, worker_id +
    // clients, ... at the aggregate rate.
    let tick = match config.mode {
        ReplayMode::Closed => None,
        ReplayMode::Open { rate_hz } => Some(Duration::from_secs_f64(
            config.clients as f64 / rate_hz.max(1e-6),
        )),
    };
    let start = Instant::now();
    // Workers start phase-shifted so the aggregate schedule is evenly
    // spaced, not `clients` bursts per tick.
    let mut next_fire = match tick {
        Some(tick) => start + tick.mul_f64(worker_id as f64 / config.clients.max(1) as f64),
        None => start,
    };
    loop {
        let now = Instant::now();
        if now >= stop_at {
            break;
        }
        if let Some(tick) = tick {
            if now < next_fire {
                std::thread::sleep(next_fire - now);
            }
            // Fixed schedule: a late worker fires immediately but does
            // not compress future slots.
            next_fire += tick;
        }
        let i = seq.fetch_add(1, Ordering::Relaxed);
        let env = RequestEnvelope {
            deadline_ms: config.deadline_ms,
            request: mix_request(config.seed, i, config.n),
        };
        let t0 = Instant::now();
        let response = exchange(&config.addr, &env, io_timeout);
        let elapsed_us = t0.elapsed().as_micros() as u64;
        if matches!(
            response,
            Some(Response::Value { .. } | Response::Ranking { .. } | Response::Stats(_))
        ) {
            tally.latencies_us.push(elapsed_us);
        }
        classify(&mut tally.outcomes, response.as_ref());
    }
    tally
}

/// Runs one replay against an already-listening daemon.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_replay(config: &ReplayConfig) -> ReplayReport {
    let started = Instant::now();
    let stop_at = started + config.duration;
    let seq = Arc::new(AtomicU64::new(0));
    let (tallies, metrics_timeseries): (Vec<WorkerTally>, Vec<MetricsSample>) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.clients.max(1))
                .map(|worker_id| {
                    let seq = Arc::clone(&seq);
                    scope.spawn(move || worker(config, worker_id, stop_at, &seq))
                })
                .collect();
            let scraper = config
                .metrics_every
                .map(|every| scope.spawn(move || scrape_loop(config, started, stop_at, every)));
            let tallies = handles
                .into_iter()
                .map(|h| h.join().expect("replay worker"))
                .collect();
            let samples = match scraper {
                Some(handle) => handle.join().expect("metrics scraper"),
                None => Vec::new(),
            };
            (tallies, samples)
        });
    let elapsed = started.elapsed();

    let mut outcomes = OutcomeCounts::default();
    let mut latencies_us = Vec::new();
    let mut histogram = LogHistogram::new();
    for tally in tallies {
        let o = tally.outcomes;
        outcomes.served += o.served;
        outcomes.overloaded += o.overloaded;
        outcomes.timed_out += o.timed_out;
        outcomes.not_ready += o.not_ready;
        outcomes.draining += o.draining;
        outcomes.errors += o.errors;
        outcomes.io_errors += o.io_errors;
        for us in tally.latencies_us {
            histogram.add(us);
            latencies_us.push(us);
        }
    }
    latencies_us.sort_unstable();

    let server_stats = match Client::new(config.addr.clone())
        .with_max_attempts(1)
        .stats()
    {
        Ok(Response::Stats(stats)) => Some(stats),
        _ => None,
    };

    ReplayReport {
        config: config.clone(),
        outcomes,
        latencies_us,
        histogram,
        elapsed,
        server_stats,
        metrics_timeseries,
    }
}

/// Scrapes `Request::Metrics` at a fixed cadence until `stop_at`. A
/// failed scrape (daemon momentarily saturating its accept loop) is
/// skipped, not retried — the time-series records what a monitoring
/// agent would actually see.
fn scrape_loop(
    config: &ReplayConfig,
    started: Instant,
    stop_at: Instant,
    every: Duration,
) -> Vec<MetricsSample> {
    let client = Client::new(config.addr.clone());
    let mut samples = Vec::new();
    let mut next = started + every;
    while Instant::now() < stop_at {
        let now = Instant::now();
        if now < next {
            std::thread::sleep((next - now).min(Duration::from_millis(20)));
            continue;
        }
        next += every;
        if let Ok(Response::Metrics(report)) = client.metrics() {
            let snap = &report.snapshot;
            let counter = |name: &str| snap.counter(name).unwrap_or(0);
            samples.push(MetricsSample {
                at_ms: started.elapsed().as_millis() as u64,
                uptime_ms: report.uptime_ms,
                requests_total: counter("serve_requests_total"),
                answered_total: counter("serve_requests_answered_total"),
                timed_out_total: counter("serve_requests_timed_out_total"),
                shed_total: counter("serve_requests_shed_total"),
                queue_depth: snap.gauge("serve_queue_depth").unwrap_or(0),
                engine_rounds: counter("engine_rounds_total"),
                burn_fast: report.burn_fast,
                burn_slow: report.burn_slow,
            });
        }
    }
    samples
}

/// Nearest-rank percentile over an ascending slice (0 when empty).
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ReplayReport {
    /// Served-request throughput, requests per second.
    pub fn throughput_rps(&self) -> f64 {
        self.outcomes.served as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Exact p50 latency over served requests, microseconds.
    pub fn p50_us(&self) -> u64 {
        percentile_us(&self.latencies_us, 50.0)
    }

    /// Exact p99 latency over served requests, microseconds.
    pub fn p99_us(&self) -> u64 {
        percentile_us(&self.latencies_us, 99.0)
    }
}

/// A `BENCH_serve-*.json` artifact: one replay against one daemon
/// workload.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// Scenario name, e.g. `serve-er-n1024-t1`.
    pub scenario: String,
    /// Served graph size.
    pub n: usize,
    /// Solver threads inside the daemon.
    pub threads: usize,
    /// Solve workload (walks, length, seed).
    pub walks: usize,
    /// Walk truncation length.
    pub length: usize,
    /// Master seed.
    pub seed: u64,
    /// The measured replay.
    pub report: ReplayReport,
}

impl ServeBenchResult {
    /// Serializes to the `BENCH_serve-*.json` schema.
    pub fn to_json(&self) -> Json {
        let report = &self.report;
        let rate_hz = match report.config.mode {
            ReplayMode::Closed => Json::Null,
            ReplayMode::Open { rate_hz } => Json::Float(rate_hz),
        };
        let histogram = Json::Arr(
            report
                .histogram
                .buckets()
                .into_iter()
                .map(|(lo, hi, count)| {
                    Json::Arr(vec![
                        Json::Int(lo as i64),
                        Json::Int(hi as i64),
                        Json::Int(count as i64),
                    ])
                })
                .collect(),
        );
        let solve = match &report.server_stats {
            Some(s) => Json::Obj(vec![
                ("rounds".into(), Json::Int(s.solve_rounds as i64)),
                (
                    "checkpoints_written".into(),
                    Json::Int(s.checkpoints_written as i64),
                ),
                (
                    "checkpoint_overhead_us".into(),
                    Json::Int(s.checkpoint_overhead_us as i64),
                ),
            ]),
            None => Json::Null,
        };
        let timeseries = Json::Arr(
            report
                .metrics_timeseries
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("at_ms".into(), Json::Int(s.at_ms as i64)),
                        ("uptime_ms".into(), Json::Int(s.uptime_ms as i64)),
                        ("requests_total".into(), Json::Int(s.requests_total as i64)),
                        ("answered_total".into(), Json::Int(s.answered_total as i64)),
                        (
                            "timed_out_total".into(),
                            Json::Int(s.timed_out_total as i64),
                        ),
                        ("shed_total".into(), Json::Int(s.shed_total as i64)),
                        ("queue_depth".into(), Json::Int(s.queue_depth as i64)),
                        ("engine_rounds".into(), Json::Int(s.engine_rounds as i64)),
                        ("burn_fast".into(), Json::Float(s.burn_fast)),
                        ("burn_slow".into(), Json::Float(s.burn_slow)),
                    ])
                })
                .collect(),
        );
        let o = &report.outcomes;
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(SCHEMA_VERSION)),
            ("kind".into(), Json::Str("serve".into())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("n".into(), Json::Int(self.n as i64)),
            ("threads".into(), Json::Int(self.threads as i64)),
            (
                "params".into(),
                Json::Obj(vec![
                    ("walks".into(), Json::Int(self.walks as i64)),
                    ("length".into(), Json::Int(self.length as i64)),
                    ("seed".into(), Json::Int(self.seed as i64)),
                ]),
            ),
            (
                "load".into(),
                Json::Obj(vec![
                    ("mode".into(), Json::Str(report.config.mode.as_str().into())),
                    ("clients".into(), Json::Int(report.config.clients as i64)),
                    ("rate_hz".into(), rate_hz),
                    (
                        "duration_ms".into(),
                        Json::Int(report.elapsed.as_millis() as i64),
                    ),
                    (
                        "deadline_ms".into(),
                        Json::Int(i64::from(report.config.deadline_ms)),
                    ),
                ]),
            ),
            (
                "requests".into(),
                Json::Obj(vec![
                    ("sent".into(), Json::Int(o.sent() as i64)),
                    ("served".into(), Json::Int(o.served as i64)),
                    ("overloaded".into(), Json::Int(o.overloaded as i64)),
                    ("timed_out".into(), Json::Int(o.timed_out as i64)),
                    ("not_ready".into(), Json::Int(o.not_ready as i64)),
                    ("draining".into(), Json::Int(o.draining as i64)),
                    ("errors".into(), Json::Int(o.errors as i64)),
                    ("io_errors".into(), Json::Int(o.io_errors as i64)),
                ]),
            ),
            (
                "throughput_rps".into(),
                Json::Float(report.throughput_rps()),
            ),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::Int(report.p50_us() as i64)),
                    ("p99".into(), Json::Int(report.p99_us() as i64)),
                    ("mean".into(), Json::Float(report.histogram.mean())),
                    ("max".into(), Json::Int(report.histogram.max() as i64)),
                    ("histogram".into(), histogram),
                ]),
            ),
            ("solve".into(), solve),
            ("metrics_timeseries".into(), timeseries),
        ])
    }
}

/// Validates a parsed `BENCH_serve-*.json` document against the schema
/// [`ServeBenchResult::to_json`] emits.
///
/// # Errors
///
/// A human-readable description of the first violated constraint.
pub fn validate_serve_bench_json(doc: &Json) -> Result<(), String> {
    fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
        doc.get(key).ok_or_else(|| format!("missing field `{key}`"))
    }
    let version = req(doc, "schema_version")?
        .as_u64()
        .ok_or("`schema_version` is not an integer")?;
    if !(MIN_SCHEMA_VERSION as u64..=SCHEMA_VERSION as u64).contains(&version) {
        return Err(format!("unsupported schema_version {version}"));
    }
    let kind = req(doc, "kind")?.as_str().ok_or("`kind` is not a string")?;
    if kind != "serve" {
        return Err(format!("`kind` is `{kind}`, expected `serve`"));
    }
    req(doc, "scenario")?
        .as_str()
        .ok_or("`scenario` is not a string")?;
    for key in ["n", "threads"] {
        if req(doc, key)?.as_u64().is_none_or(|v| v == 0) {
            return Err(format!("`{key}` is not a positive integer"));
        }
    }
    let params = req(doc, "params")?;
    for key in ["walks", "length", "seed"] {
        params
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`params.{key}` is not a non-negative integer"))?;
    }
    let load = req(doc, "load")?;
    let mode = load
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("`load.mode` is not a string")?;
    if !matches!(mode, "closed" | "open") {
        return Err(format!("unknown load mode `{mode}`"));
    }
    match load.get("rate_hz") {
        Some(Json::Null) if mode == "closed" => {}
        Some(Json::Float(r)) if mode == "open" && r.is_finite() && *r > 0.0 => {}
        Some(Json::Int(r)) if mode == "open" && *r > 0 => {}
        _ => return Err("`load.rate_hz` must be null (closed) or positive (open)".into()),
    }
    for key in ["clients", "duration_ms", "deadline_ms"] {
        load.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`load.{key}` is not a non-negative integer"))?;
    }
    let requests = req(doc, "requests")?;
    let mut accounted = 0u64;
    for key in [
        "served",
        "overloaded",
        "timed_out",
        "not_ready",
        "draining",
        "errors",
        "io_errors",
    ] {
        accounted += requests
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`requests.{key}` is not a non-negative integer"))?;
    }
    let sent = requests
        .get("sent")
        .and_then(Json::as_u64)
        .ok_or("`requests.sent` is not a non-negative integer")?;
    if sent != accounted {
        return Err(format!(
            "`requests.sent` is {sent} but the outcome counts sum to {accounted}"
        ));
    }
    match req(doc, "throughput_rps")? {
        Json::Float(r) if r.is_finite() && *r >= 0.0 => {}
        Json::Int(r) if *r >= 0 => {}
        _ => return Err("`throughput_rps` is not a finite non-negative number".into()),
    }
    let latency = req(doc, "latency_us")?;
    for key in ["p50", "p99", "max"] {
        latency
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`latency_us.{key}` is not a non-negative integer"))?;
    }
    match latency.get("mean") {
        Some(Json::Float(m)) if m.is_finite() && *m >= 0.0 => {}
        Some(Json::Int(m)) if *m >= 0 => {}
        _ => return Err("`latency_us.mean` is not a finite non-negative number".into()),
    }
    let buckets = match latency.get("histogram") {
        Some(Json::Arr(items)) => items,
        _ => return Err("`latency_us.histogram` is not an array".into()),
    };
    let mut histogram_total = 0u64;
    for (i, bucket) in buckets.iter().enumerate() {
        let Json::Arr(triple) = bucket else {
            return Err(format!(
                "histogram bucket {i} is not a [lo, hi, count] array"
            ));
        };
        if triple.len() != 3 {
            return Err(format!(
                "histogram bucket {i} is not a [lo, hi, count] array"
            ));
        }
        let lo = triple[0].as_u64().ok_or("bucket lo is not an integer")?;
        let hi = triple[1].as_u64().ok_or("bucket hi is not an integer")?;
        let count = triple[2].as_u64().ok_or("bucket count is not an integer")?;
        if lo > hi || count == 0 {
            return Err(format!("histogram bucket {i} is degenerate"));
        }
        histogram_total += count;
    }
    let served = requests.get("served").and_then(Json::as_u64).unwrap_or(0);
    if histogram_total != served {
        return Err(format!(
            "histogram holds {histogram_total} samples but `requests.served` is {served}"
        ));
    }
    match req(doc, "solve")? {
        Json::Null => {}
        solve @ Json::Obj(_) => {
            for key in ["rounds", "checkpoints_written", "checkpoint_overhead_us"] {
                solve
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("`solve.{key}` is not a non-negative integer"))?;
            }
        }
        _ => return Err("`solve` is not an object or null".into()),
    }
    // Optional (absent in pre-telemetry artifacts). When present, the
    // cumulative counters must be monotone non-decreasing across the
    // series, and at any instant the finished-request counters cannot
    // exceed admissions (mid-flight requests make `<`, never `>`).
    if let Some(series) = doc.get("metrics_timeseries") {
        let Json::Arr(samples) = series else {
            return Err("`metrics_timeseries` is not an array".into());
        };
        let counters = [
            "at_ms",
            "uptime_ms",
            "requests_total",
            "answered_total",
            "timed_out_total",
            "shed_total",
        ];
        let mut prev = [0u64; 6];
        for (i, sample) in samples.iter().enumerate() {
            for (slot, key) in counters.iter().enumerate() {
                let v = sample.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    format!("`metrics_timeseries[{i}].{key}` is not a non-negative integer")
                })?;
                if v < prev[slot] {
                    return Err(format!(
                        "`metrics_timeseries[{i}].{key}` regressed: {v} < {}",
                        prev[slot]
                    ));
                }
                prev[slot] = v;
            }
            for key in ["queue_depth", "engine_rounds"] {
                sample.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    format!("`metrics_timeseries[{i}].{key}` is not a non-negative integer")
                })?;
            }
            for key in ["burn_fast", "burn_slow"] {
                match sample.get(key) {
                    Some(Json::Float(b)) if b.is_finite() && *b >= 0.0 => {}
                    Some(Json::Int(b)) if *b >= 0 => {}
                    _ => {
                        return Err(format!(
                            "`metrics_timeseries[{i}].{key}` is not a finite non-negative number"
                        ))
                    }
                }
            }
            let total = sample.get("requests_total").and_then(Json::as_u64).unwrap();
            let finished = ["answered_total", "timed_out_total", "shed_total"]
                .iter()
                .map(|k| sample.get(k).and_then(Json::as_u64).unwrap())
                .sum::<u64>();
            if finished > total {
                return Err(format!(
                    "`metrics_timeseries[{i}]`: {finished} finished requests exceed \
                     {total} admitted"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rwbc_serve::{Daemon, ServeConfig, SolverConfig};

    fn ready_daemon(n: usize, seed: u64) -> Daemon {
        let daemon = Daemon::start(ServeConfig::new(SolverConfig::new(n, seed))).expect("bind");
        let client = Client::new(daemon.local_addr().to_string()).with_max_attempts(60);
        match client.centrality(0, 5000) {
            Ok(Response::Value { .. }) => daemon,
            other => panic!("daemon never became ready: {other:?}"),
        }
    }

    #[test]
    fn closed_loop_replay_emits_a_valid_artifact() {
        let daemon = ready_daemon(48, 3);
        let mut config = ReplayConfig::closed(
            daemon.local_addr().to_string(),
            48,
            Duration::from_millis(300),
        );
        config.clients = 2;
        config.metrics_every = Some(Duration::from_millis(50));
        let report = run_replay(&config);
        assert!(report.outcomes.served > 0, "nothing served: {report:?}");
        assert!(
            !report.metrics_timeseries.is_empty(),
            "a 300 ms replay scraping every 50 ms must land samples"
        );
        let first = &report.metrics_timeseries[0];
        assert!(
            first.requests_total >= first.answered_total,
            "finished requests cannot exceed admissions: {first:?}"
        );
        assert_eq!(
            report.outcomes.served as usize,
            report.latencies_us.len(),
            "every served request contributes one latency sample"
        );
        assert!(report.p50_us() <= report.p99_us());
        let result = ServeBenchResult {
            scenario: "serve-er-n48-t1".into(),
            n: 48,
            threads: 1,
            walks: 4,
            length: 64,
            seed: 3,
            report,
        };
        let doc = result.to_json();
        validate_serve_bench_json(&doc).expect("schema self-consistency");
        let reparsed = Json::parse(&doc.to_json()).expect("parse");
        validate_serve_bench_json(&reparsed).expect("schema after round-trip");
        daemon.drain();
        daemon.wait();
    }

    #[test]
    fn open_loop_replay_paces_the_schedule() {
        let daemon = ready_daemon(32, 5);
        let config = ReplayConfig {
            addr: daemon.local_addr().to_string(),
            mode: ReplayMode::Open { rate_hz: 50.0 },
            clients: 2,
            duration: Duration::from_millis(400),
            deadline_ms: 1000,
            seed: 9,
            n: 32,
            metrics_every: None,
        };
        let report = run_replay(&config);
        // 50 req/s for 0.4 s ≈ 20 arrivals; pacing means we sent roughly
        // that, not thousands.
        let sent = report.outcomes.sent();
        assert!(sent >= 5, "open loop barely fired: {sent}");
        assert!(sent <= 60, "open loop did not pace: {sent}");
        daemon.drain();
        daemon.wait();
    }

    #[test]
    fn validator_rejects_inconsistent_outcome_sums() {
        let doc = Json::parse(
            r#"{"schema_version":1,"kind":"serve","scenario":"serve-er-n8-t1",
                "n":8,"threads":1,"params":{"walks":4,"length":64,"seed":42},
                "load":{"mode":"closed","clients":1,"rate_hz":null,
                        "duration_ms":10,"deadline_ms":100},
                "requests":{"sent":5,"served":1,"overloaded":0,"timed_out":0,
                            "not_ready":0,"draining":0,"errors":0,"io_errors":0},
                "throughput_rps":1.0,
                "latency_us":{"p50":1,"p99":1,"mean":1.0,"max":1,
                              "histogram":[[1,1,1]]},
                "solve":null}"#,
        )
        .expect("parse");
        let err = validate_serve_bench_json(&doc).unwrap_err();
        assert!(err.contains("sum"), "unexpected error: {err}");
    }
}
