//! Minimal aligned-text table rendering for experiment output.

use std::fmt;

/// An aligned text table with a title, headers, and string rows.
///
/// # Example
///
/// ```
/// use rwbc_bench::Table;
/// let mut t = Table::new("demo", ["n", "value"]);
/// t.add_row(["10", "0.5"]);
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains("value"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new<S, I>(title: &str, headers: I) -> Table
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        Table {
            title: title.to_string(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn add_row<S, I>(&mut self, row: I) -> &mut Table
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Appends a free-form note block rendered after the rows. Multi-line
    /// notes (e.g. [`congest_sim::RunStats::summary`]) keep their internal
    /// layout; every line is prefixed so the note reads as table commentary.
    pub fn add_note(&mut self, note: impl Into<String>) -> &mut Table {
        self.notes.push(note.into());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The cell at `(row, col)` as a string.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            for l in note.lines() {
                writeln!(f, ">{}{}", if l.is_empty() { "" } else { " " }, l)?;
            }
        }
        Ok(())
    }
}

/// Formats a float with 4 significant decimals.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimals.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", ["a", "long_header"]);
        t.add_row(["1", "2"]);
        t.add_row(["100", "20000"]);
        let s = t.to_string();
        assert!(s.contains("## t"));
        assert!(s.contains("long_header"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(1, 1), "20000");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new("t", ["a", "b"]).add_row(["only one"]);
    }

    #[test]
    fn renders_notes_after_rows() {
        let mut t = Table::new("t", ["a"]);
        t.add_row(["1"]);
        t.add_note("first line\nsecond line");
        let s = t.to_string();
        let rows_at = s.find("| 1 |").unwrap();
        let note_at = s.find("> first line").unwrap();
        assert!(note_at > rows_at);
        assert!(s.contains("> second line"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt4(0.123456), "0.1235");
        assert_eq!(fmt2(2.34159), "2.34");
    }
}
