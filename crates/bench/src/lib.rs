//! Experiment harness for the RWBC reproduction.
//!
//! Every figure/table/theorem of the paper maps to one experiment module
//! (the index lives in `DESIGN.md` §6 and results in `EXPERIMENTS.md`):
//!
//! | id | paper source | module |
//! |----|--------------|--------|
//! | E1 | Fig. 1 (motivating example) | [`suite::e1`] |
//! | E2 | Theorem 1 (`l = O(n)` truncation) | [`suite::e2`] |
//! | E3 | Theorem 3 (`K = O(log n)` concentration) | [`suite::e3`] |
//! | E4 | Lemma 2 + Theorem 5 (round complexity) | [`suite::e4`] |
//! | E5 | Theorem 4 (CONGEST compliance) | [`suite::e5`] |
//! | E6 | Figs. 2–5, Lemma 4, Theorems 6–8 (lower bound) | [`suite::e6`] |
//! | E7 | Theorem 2 (approximation quality) | [`suite::e7`] |
//! | E8 | Section II (related measures) | [`suite::e8`] |
//! | E9 | extension: distributed algorithm landscape | [`suite::e9`] |
//! | E10 | Section II-D, ref. \[15\] (the random walk problem) | [`suite::e10`] |
//! | E11 | extension: chaos sweep (faults + reliable delivery) | [`suite::e11`] |
//! | E12 | extension: permanent kills (detector + partition tolerance) | [`suite::e12`] |
//! | E13 | extension: corruption sweep (checksummed frames + quarantine) | [`suite::e13`] |
//! | E14 | extension: serving centrality under load (rwbc-serve) | [`suite::e14`] |
//! | E15 | extension: telemetry overhead (metrics registry) | [`suite::e15`] |
//!
//! Run them with `cargo run --release -p rwbc-bench --bin experiments --
//! all` (add `--quick` for a fast smoke pass). Each module exposes a
//! `run(quick) -> Vec<Table>` entry point plus typed result structs that
//! the integration tests assert on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! End-to-end perf scenarios live in [`perf`] behind the `rwbc-bench`
//! binary (`cargo run --release -p rwbc-bench --bin rwbc-bench`), which
//! writes machine-readable `BENCH_<scenario>.json` files.

//! Data-integrity tooling (decode fuzzer + fault-plan shrinker) lives in
//! [`chaos`] behind the `rwbc-chaos` binary.

//! Service-level load replay for the `rwbc-serve` daemon lives in
//! [`serve_load`] behind the `rwbc-replay` binary, which writes
//! `BENCH_serve-*.json` throughput/latency artifacts.

pub mod chaos;
pub mod perf;
pub mod serve_load;
pub mod suite;
pub mod table;

pub use table::Table;
