//! Perf-scenario harness behind the `rwbc-bench` binary.
//!
//! The criterion micro-benches under `benches/` answer "which variant of
//! one kernel is faster"; this module answers "how fast is the whole
//! two-phase RWBC pipeline, end to end, on a named scenario" — and
//! records the answer as a machine-readable `BENCH_<scenario>.json`
//! file so the engine's perf trajectory is tracked in-repo, PR over PR.
//!
//! A scenario is `(mode, topology, n, threads)`:
//!
//! * **mode** — `clean` (fault-free CONGEST), `reliable` (Bernoulli
//!   drops repaired by the [`Reliable`](congest_sim::Reliable) ARQ
//!   adapter), `chaos` (drops + duplicates + delays on the raw
//!   transport, exercising graceful degradation), or `corrupt`
//!   (payload corruption repaired by the checksummed reliable
//!   adapter — the price of the integrity layer).
//! * **topology** — `er` (connected G(n,p), expected degree
//!   max(6, 1.5·ln n)), `ba` (Barabási–Albert, m = 3), or `torus`
//!   (2-D torus).
//! * **n** — node count; the default matrix uses 256/1024/4096.
//! * **threads** — engine worker threads (results are identical at any
//!   thread count; only wall-clock moves).
//!
//! Each scenario runs `warmup` untimed trials then `trials` timed
//! trials of [`rwbc::distributed::approximate`] on the same graph and
//! config. Round/message/bit counts are asserted identical across
//! trials (the engine is deterministic — a mismatch is a bug, and the
//! harness panics so CI smoke runs fail loudly). Wall-clock is the only
//! quantity allowed to vary, and it is reported as median/p95/min/max
//! over the timed trials.

use std::time::Instant;

use congest_sim::trace::json::Json;
use congest_sim::{FaultPlan, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rwbc::distributed::{approximate, CountMode, DistributedConfig, PhaseBreakdown};
use rwbc::monte_carlo::TargetStrategy;
use rwbc_graph::generators::{barabasi_albert, connected_gnp, torus_2d};
use rwbc_graph::Graph;

/// Version stamp written into every emitted JSON file; bump on any
/// field change so downstream tooling can reject files it cannot read.
/// Version 2 added the execution-environment fields
/// (`host_parallelism`, `effective_threads`, `granularity`,
/// `oversubscribed`) so a `t4` artifact produced by a run that silently
/// executed single-threaded can no longer masquerade as parallel data.
/// Version 3 added `count_mode`, `sketch_suppressed`, and the
/// `phase_breakdown` object (walk vs count vs collect traffic), so the
/// sketch-compression claim is auditable per phase rather than only in
/// the pipeline totals.
pub const SCHEMA_VERSION: i64 = 3;

/// Sketch precision the `sketch` bench mode runs with: 2⁸ = 256 buckets
/// keeps the count phase at 256 rounds at every matrix size while the
/// frame (8 index bits + value bits) stays far inside the budget.
pub const SKETCH_BENCH_PRECISION: u8 = 8;

/// Oldest schema version [`validate_bench_json`] still accepts —
/// committed version-1 artifacts (which predate the execution-
/// environment fields) remain valid.
pub const MIN_SCHEMA_VERSION: i64 = 1;

/// Fault regime of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fault-free CONGEST — the paper's model.
    Clean,
    /// Bernoulli drops repaired by the reliable-delivery adapter.
    Reliable,
    /// Drops + duplicates + delays on the raw transport.
    Chaos,
    /// Payload corruption (plus light drops) repaired by the
    /// checksummed reliable adapter — what the integrity layer costs.
    Corrupt,
    /// Fault-free CONGEST with the sketch-compressed count phase
    /// ([`SKETCH_BENCH_PRECISION`] index bits) — the traffic/memory
    /// trade against `clean` at the same workload.
    Sketch,
}

impl Mode {
    /// The scenario-name fragment (`clean` / `reliable` / `chaos` /
    /// `corrupt` / `sketch`).
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Clean => "clean",
            Mode::Reliable => "reliable",
            Mode::Chaos => "chaos",
            Mode::Corrupt => "corrupt",
            Mode::Sketch => "sketch",
        }
    }
}

/// Graph family of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Connected Erdős–Rényi G(n,p), expected degree max(6, 1.5·ln n).
    Er,
    /// Barabási–Albert preferential attachment, m = 3.
    Ba,
    /// 2-D torus (rows × cols = n, rows as square as n allows).
    Torus,
}

impl Topology {
    /// The scenario-name fragment (`er` / `ba` / `torus`).
    pub fn as_str(self) -> &'static str {
        match self {
            Topology::Er => "er",
            Topology::Ba => "ba",
            Topology::Torus => "torus",
        }
    }
}

/// One named benchmark scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Fault regime.
    pub mode: Mode,
    /// Graph family.
    pub topology: Topology,
    /// Node count.
    pub n: usize,
    /// Engine worker threads.
    pub threads: usize,
    /// Walks per node (Algorithm 1's K).
    pub walks: usize,
    /// Walk truncation length (Algorithm 1's l).
    pub length: usize,
    /// Master seed (graph generation and the simulator both derive
    /// from it, so a scenario is fully reproducible from its JSON).
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the default workload (K = 4, l = 64, seed 42).
    pub fn new(mode: Mode, topology: Topology, n: usize, threads: usize) -> Scenario {
        Scenario {
            mode,
            topology,
            n,
            threads,
            walks: 4,
            length: 64,
            seed: 42,
        }
    }

    /// The canonical name, e.g. `clean-er-n4096-t1`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-n{}-t{}",
            self.mode.as_str(),
            self.topology.as_str(),
            self.n,
            self.threads
        )
    }

    /// Builds the scenario's graph deterministically from its seed.
    ///
    /// # Panics
    ///
    /// Panics if the generator fails (e.g. G(n,p) never connects within
    /// the attempt budget) — scenario parameters are chosen so it
    /// cannot on the default matrix.
    pub fn build_graph(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        match self.topology {
            Topology::Er => {
                // Expected degree max(6, 1.5·ln n): comfortably above
                // the ln n connectivity threshold at every size, so the
                // rejection sampler converges fast.
                let deg = (1.5 * (self.n as f64).ln()).max(6.0);
                let p = deg / (self.n as f64 - 1.0);
                connected_gnp(self.n, p, 200, &mut rng).expect("connected G(n,p)")
            }
            Topology::Ba => barabasi_albert(self.n, 3, &mut rng).expect("BA graph"),
            Topology::Torus => {
                let (rows, cols) = torus_dims(self.n);
                torus_2d(rows, cols).expect("torus graph")
            }
        }
    }

    /// Builds the pipeline config for this scenario.
    ///
    /// # Panics
    ///
    /// Panics if the walk parameters are rejected (they never are for
    /// the default matrix).
    pub fn build_config(&self) -> DistributedConfig {
        let mut builder = DistributedConfig::builder()
            .walks(self.walks)
            .length(self.length)
            .seed(self.seed)
            .target(TargetStrategy::Fixed(0))
            .reliable(matches!(self.mode, Mode::Reliable | Mode::Corrupt))
            .checksums(self.mode == Mode::Corrupt);
        if self.mode == Mode::Sketch {
            builder = builder.count_mode(CountMode::Sketch {
                precision: SKETCH_BENCH_PRECISION,
            });
        }
        let mut cfg = builder.build().expect("scenario params");
        let sim = SimConfig::default().with_threads(self.threads);
        cfg.sim = match self.mode {
            Mode::Clean | Mode::Sketch => sim,
            // The constant-size reliable header needs budget headroom;
            // chaos uses the same coefficient so the two faulty modes
            // are comparable against each other.
            Mode::Reliable => sim
                .with_bandwidth_coeff(16)
                .with_faults(FaultPlan::default().with_drop_probability(0.02)),
            Mode::Chaos => sim.with_bandwidth_coeff(16).with_faults(
                FaultPlan::default()
                    .with_drop_probability(0.03)
                    .with_duplicate_probability(0.01)
                    .with_delay_probability(0.02),
            ),
            // The 32-bit seal needs additional headroom on top of the
            // reliable header.
            Mode::Corrupt => sim.with_bandwidth_coeff(24).with_faults(
                FaultPlan::default()
                    .with_corrupt_probability(0.02)
                    .with_drop_probability(0.01),
            ),
        };
        cfg
    }

    /// Default timed-trial count: fewer at the largest size so a full
    /// matrix run stays in single-digit minutes.
    pub fn default_trials(&self) -> usize {
        if self.n >= 4096 {
            3
        } else {
            5
        }
    }
}

/// Rows × cols for an n-node torus: the most square factorization with
/// both sides ≥ 3.
fn torus_dims(n: usize) -> (usize, usize) {
    let mut rows = (n as f64).sqrt() as usize;
    while rows >= 3 {
        if n.is_multiple_of(rows) && n / rows >= 3 {
            return (rows, n / rows);
        }
        rows -= 1;
    }
    panic!("no torus factorization for n={n}");
}

/// The default scenario matrix: clean ER at all three sizes (plus the
/// largest one multi-threaded), clean BA and torus at the middle size,
/// and the three faulty modes at the small size.
pub fn default_matrix(threads_n: usize) -> Vec<Scenario> {
    let mut m = vec![
        Scenario::new(Mode::Clean, Topology::Er, 256, 1),
        Scenario::new(Mode::Clean, Topology::Er, 1024, 1),
        Scenario::new(Mode::Clean, Topology::Er, 4096, 1),
    ];
    if threads_n > 1 {
        m.push(Scenario::new(Mode::Clean, Topology::Er, 4096, threads_n));
    }
    m.push(Scenario::new(Mode::Clean, Topology::Ba, 1024, 1));
    m.push(Scenario::new(Mode::Clean, Topology::Torus, 1024, 1));
    m.push(Scenario::new(Mode::Reliable, Topology::Er, 256, 1));
    m.push(Scenario::new(Mode::Chaos, Topology::Er, 256, 1));
    m.push(Scenario::new(Mode::Corrupt, Topology::Er, 256, 1));
    m.extend(sketch_matrix());
    m
}

/// The sketch-mode matrix: `sketch-er` at the two sizes where the
/// count-phase compression is the story — same workload (graph, seed,
/// K, l) as the matching `clean-er` scenarios, so the per-phase traffic
/// in the two artifacts is directly comparable.
pub fn sketch_matrix() -> Vec<Scenario> {
    vec![
        Scenario::new(Mode::Sketch, Topology::Er, 1024, 1),
        Scenario::new(Mode::Sketch, Topology::Er, 4096, 1),
    ]
}

/// The CI smoke matrix: one tiny clean scenario (n = 128).
pub fn smoke_matrix() -> Vec<Scenario> {
    vec![Scenario::new(Mode::Clean, Topology::Er, 128, 1)]
}

/// The threads-sweep matrix: `clean-er` at n = 4096 once per requested
/// thread count, plus (behind `large`) the n = 65536 scale point. The
/// large scenario is opt-in because a single trial runs for minutes
/// single-threaded and peaks well above the n = 4096 ~2 GB RSS.
pub fn sweep_matrix(threads: &[usize], large: bool) -> Vec<Scenario> {
    let mut m: Vec<Scenario> = threads
        .iter()
        .map(|&t| Scenario::new(Mode::Clean, Topology::Er, 4096, t))
        .collect();
    if large {
        m.extend(
            threads
                .iter()
                .map(|&t| Scenario::new(Mode::Clean, Topology::Er, 65536, t)),
        );
    }
    m
}

/// The CI smoke sweep: `clean-er` at n = 128 once per requested thread
/// count — small enough to run on every push, still large enough (with
/// the default granularity of 16) that up to 8 workers genuinely run.
pub fn smoke_sweep_matrix(threads: &[usize]) -> Vec<Scenario> {
    threads
        .iter()
        .map(|&t| Scenario::new(Mode::Clean, Topology::Er, 128, t))
        .collect()
}

/// Groups results by workload identity — everything except the thread
/// count — and verifies the deterministic fingerprint `(rounds,
/// messages, bits)` is bit-identical within each group. This is the
/// sweep's determinism gate: a `t4` run that diverges from the `t1` run
/// of the same workload fails here, with both scenario names in the
/// message.
///
/// # Errors
///
/// A human-readable description of the first diverging pair.
pub fn check_sweep_fingerprints(results: &[BenchResult]) -> Result<(), String> {
    use std::collections::hash_map::Entry;
    use std::collections::HashMap;
    type Key = (&'static str, &'static str, usize, usize, usize, u64);
    let mut seen: HashMap<Key, (String, (usize, u64, u64))> = HashMap::new();
    for r in results {
        let sc = &r.scenario;
        let key = (
            sc.mode.as_str(),
            sc.topology.as_str(),
            sc.n,
            sc.walks,
            sc.length,
            sc.seed,
        );
        let fp = (r.rounds, r.total_messages, r.total_bits);
        match seen.entry(key) {
            Entry::Occupied(e) => {
                let (first_name, expected) = e.get();
                if *expected != fp {
                    return Err(format!(
                        "fingerprint diverges across thread counts: {first_name} has \
                         (rounds, messages, bits) = {expected:?} but {} has {fp:?}",
                        sc.name()
                    ));
                }
            }
            Entry::Vacant(e) => {
                e.insert((sc.name(), fp));
            }
        }
    }
    Ok(())
}

/// Measured result of one scenario.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Untimed warmup trials that preceded the samples.
    pub warmup: usize,
    /// Per-trial wall-clock, milliseconds, in run order.
    pub samples_ms: Vec<f64>,
    /// Total rounds across all phases (identical for every trial).
    pub rounds: usize,
    /// Total messages delivered across all phases.
    pub total_messages: u64,
    /// Total bits delivered across all phases.
    pub total_bits: u64,
    /// Process peak RSS in bytes after the run (`VmHWM`), when the
    /// platform exposes it. This is a process-wide high-water mark, so
    /// in a multi-scenario run it reflects the largest scenario so far.
    pub peak_rss_bytes: Option<u64>,
    /// Hardware threads the host exposed at run time, when knowable.
    pub host_parallelism: Option<u64>,
    /// Worker count the engine *actually* used (after the granularity
    /// clamp), echoed from `RunStats` — distinct from the requested
    /// `scenario.threads`.
    pub effective_threads: usize,
    /// Minimum nodes per worker chunk the run executed with.
    pub granularity: usize,
    /// True when the scenario requested more threads than the host
    /// exposes; wall-clock samples from such a run measure scheduler
    /// time-slicing, not parallel speedup.
    pub oversubscribed: bool,
    /// Per-phase traffic attribution (identical for every trial).
    pub phase_breakdown: PhaseBreakdown,
    /// Count-phase representation the run used.
    pub count_mode: CountMode,
    /// Broadcasts elided by the systolic only-modified-nodes rule
    /// (0 under exact mode).
    pub sketch_suppressed: u64,
}

/// Runs one scenario: `warmup` untimed trials, then `trials` timed
/// ones, asserting the round/message/bit counts replay identically.
///
/// # Panics
///
/// Panics if a trial fails or if two trials disagree on any
/// deterministic counter (an engine-determinism regression).
pub fn run_scenario(scenario: &Scenario, warmup: usize, trials: usize) -> BenchResult {
    assert!(trials > 0, "need at least one timed trial");
    let graph = scenario.build_graph();
    let config = scenario.build_config();
    let mut samples_ms = Vec::with_capacity(trials);
    let mut fingerprint: Option<(usize, u64, u64)> = None;
    let mut exec_echo = (0usize, 0usize);
    let mut breakdown = PhaseBreakdown::default();
    let mut count_mode = CountMode::Exact;
    let mut sketch_suppressed = 0u64;
    for trial in 0..warmup + trials {
        let start = Instant::now();
        let run = approximate(&graph, &config).expect("scenario run");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let election = run.election_stats.as_ref();
        let rounds = run.total_rounds();
        let messages = run.walk_stats.total_messages
            + run.count_stats.total_messages
            + election.map_or(0, |s| s.total_messages);
        let bits = run.walk_stats.total_bits
            + run.count_stats.total_bits
            + election.map_or(0, |s| s.total_bits);
        let fp = (rounds, messages, bits);
        exec_echo = (run.walk_stats.effective_threads, run.walk_stats.granularity);
        breakdown = run.phase_breakdown();
        count_mode = run.count_mode;
        sketch_suppressed = run.sketch_suppressed;
        match fingerprint {
            None => fingerprint = Some(fp),
            Some(expected) => assert_eq!(
                fp,
                expected,
                "determinism violation in scenario {}",
                scenario.name()
            ),
        }
        if trial >= warmup {
            samples_ms.push(elapsed_ms);
        }
    }
    let (rounds, total_messages, total_bits) = fingerprint.expect("at least one trial ran");
    let host_parallelism = host_parallelism();
    BenchResult {
        scenario: scenario.clone(),
        warmup,
        samples_ms,
        rounds,
        total_messages,
        total_bits,
        peak_rss_bytes: peak_rss_bytes(),
        host_parallelism,
        effective_threads: exec_echo.0,
        granularity: exec_echo.1,
        oversubscribed: host_parallelism.is_some_and(|h| scenario.threads as u64 > h),
        phase_breakdown: breakdown,
        count_mode,
        sketch_suppressed,
    }
}

/// Hardware threads the host exposes, when the platform reports them.
pub fn host_parallelism() -> Option<u64> {
    std::thread::available_parallelism()
        .ok()
        .map(|p| p.get() as u64)
}

impl BenchResult {
    /// Median wall-clock over the timed trials, milliseconds.
    pub fn median_ms(&self) -> f64 {
        let sorted = self.sorted_samples();
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }

    /// Nearest-rank p95 wall-clock, milliseconds.
    pub fn p95_ms(&self) -> f64 {
        let sorted = self.sorted_samples();
        let rank = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn sorted_samples(&self) -> Vec<f64> {
        let mut s = self.samples_ms.clone();
        s.sort_by(f64::total_cmp);
        s
    }

    /// Serializes the result to the `BENCH_*.json` schema.
    pub fn to_json(&self) -> Json {
        let sorted = self.sorted_samples();
        let min = sorted.first().copied().unwrap_or(0.0);
        let max = sorted.last().copied().unwrap_or(0.0);
        let sc = &self.scenario;
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(SCHEMA_VERSION)),
            ("scenario".into(), Json::Str(sc.name())),
            ("mode".into(), Json::Str(sc.mode.as_str().into())),
            ("topology".into(), Json::Str(sc.topology.as_str().into())),
            ("n".into(), Json::Int(sc.n as i64)),
            ("threads".into(), Json::Int(sc.threads as i64)),
            (
                "params".into(),
                Json::Obj(vec![
                    ("walks".into(), Json::Int(sc.walks as i64)),
                    ("length".into(), Json::Int(sc.length as i64)),
                    ("seed".into(), Json::Int(sc.seed as i64)),
                ]),
            ),
            ("warmup".into(), Json::Int(self.warmup as i64)),
            ("trials".into(), Json::Int(self.samples_ms.len() as i64)),
            (
                "wall_clock_ms".into(),
                Json::Obj(vec![
                    ("median".into(), Json::Float(self.median_ms())),
                    ("p95".into(), Json::Float(self.p95_ms())),
                    ("min".into(), Json::Float(min)),
                    ("max".into(), Json::Float(max)),
                    (
                        "samples".into(),
                        Json::Arr(self.samples_ms.iter().map(|&s| Json::Float(s)).collect()),
                    ),
                ]),
            ),
            (
                "host_parallelism".into(),
                match self.host_parallelism {
                    Some(p) => Json::Int(p as i64),
                    None => Json::Null,
                },
            ),
            (
                "effective_threads".into(),
                Json::Int(self.effective_threads as i64),
            ),
            ("granularity".into(), Json::Int(self.granularity as i64)),
            ("oversubscribed".into(), Json::Bool(self.oversubscribed)),
            ("rounds".into(), Json::Int(self.rounds as i64)),
            (
                "total_messages".into(),
                Json::Int(self.total_messages as i64),
            ),
            ("total_bits".into(), Json::Int(self.total_bits as i64)),
            (
                "peak_rss_bytes".into(),
                match self.peak_rss_bytes {
                    Some(b) => Json::Int(b as i64),
                    None => Json::Null,
                },
            ),
            (
                "count_mode".into(),
                match self.count_mode {
                    CountMode::Exact => Json::Str("exact".into()),
                    CountMode::Sketch { precision } => Json::Str(format!("sketch-p{precision}")),
                },
            ),
            (
                "sketch_suppressed".into(),
                Json::Int(self.sketch_suppressed as i64),
            ),
            (
                "phase_breakdown".into(),
                Json::Obj(vec![
                    (
                        "collect".into(),
                        match &self.phase_breakdown.collect {
                            Some(t) => traffic_json(t),
                            None => Json::Null,
                        },
                    ),
                    ("walk".into(), traffic_json(&self.phase_breakdown.walk)),
                    ("count".into(), traffic_json(&self.phase_breakdown.count)),
                ]),
            ),
        ])
    }
}

/// Serializes one phase's traffic triple.
fn traffic_json(t: &congest_sim::PhaseTraffic) -> Json {
    Json::Obj(vec![
        ("rounds".into(), Json::Int(t.rounds as i64)),
        ("messages".into(), Json::Int(t.messages as i64)),
        ("bits".into(), Json::Int(t.bits as i64)),
    ])
}

/// The `BENCH_*.json` file name for a scenario, with an optional tag
/// (e.g. `baseline`) spliced in front of the scenario name.
pub fn bench_filename(tag: &str, scenario_name: &str) -> String {
    if tag.is_empty() {
        format!("BENCH_{scenario_name}.json")
    } else {
        format!("BENCH_{tag}-{scenario_name}.json")
    }
}

/// Validates a parsed `BENCH_*.json` document against the schema this
/// module emits.
///
/// # Errors
///
/// A human-readable description of the first violated constraint.
pub fn validate_bench_json(doc: &Json) -> Result<(), String> {
    fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
        doc.get(key).ok_or_else(|| format!("missing field `{key}`"))
    }
    fn num(v: &Json, key: &str) -> Result<f64, String> {
        match v {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            _ => Err(format!("field `{key}` is not a number")),
        }
    }
    let version = req(doc, "schema_version")?
        .as_u64()
        .ok_or("`schema_version` is not an integer")?;
    if !(MIN_SCHEMA_VERSION as u64..=SCHEMA_VERSION as u64).contains(&version) {
        return Err(format!("unsupported schema_version {version}"));
    }
    req(doc, "scenario")?
        .as_str()
        .ok_or("`scenario` is not a string")?;
    let mode = req(doc, "mode")?.as_str().ok_or("`mode` is not a string")?;
    if !matches!(mode, "clean" | "reliable" | "chaos" | "corrupt" | "sketch") {
        return Err(format!("unknown mode `{mode}`"));
    }
    let topo = req(doc, "topology")?
        .as_str()
        .ok_or("`topology` is not a string")?;
    if !matches!(topo, "er" | "ba" | "torus") {
        return Err(format!("unknown topology `{topo}`"));
    }
    for key in [
        "n",
        "threads",
        "warmup",
        "trials",
        "rounds",
        "total_messages",
        "total_bits",
    ] {
        req(doc, key)?
            .as_u64()
            .ok_or_else(|| format!("`{key}` is not a non-negative integer"))?;
    }
    if req(doc, "n")?.as_u64() == Some(0) || req(doc, "threads")?.as_u64() == Some(0) {
        return Err("`n` and `threads` must be positive".into());
    }
    let params = req(doc, "params")?;
    for key in ["walks", "length", "seed"] {
        params
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`params.{key}` is not a non-negative integer"))?;
    }
    let wall = req(doc, "wall_clock_ms")?;
    for key in ["median", "p95", "min", "max"] {
        let v = wall
            .get(key)
            .ok_or_else(|| format!("missing field `wall_clock_ms.{key}`"))?;
        let ms = num(v, key)?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!(
                "`wall_clock_ms.{key}` is not a finite non-negative number"
            ));
        }
    }
    let samples = match wall.get("samples") {
        Some(Json::Arr(items)) => items,
        _ => return Err("`wall_clock_ms.samples` is not an array".into()),
    };
    let trials = req(doc, "trials")?.as_usize().unwrap_or(0);
    if samples.len() != trials {
        return Err(format!(
            "`wall_clock_ms.samples` has {} entries but `trials` is {trials}",
            samples.len()
        ));
    }
    for (i, s) in samples.iter().enumerate() {
        let ms = num(s, "samples[i]")?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(format!("sample {i} is not a finite non-negative number"));
        }
    }
    match req(doc, "peak_rss_bytes")? {
        Json::Null | Json::Int(_) => {}
        _ => return Err("`peak_rss_bytes` is not an integer or null".into()),
    }
    if version >= 2 {
        for key in ["effective_threads", "granularity"] {
            let v = req(doc, key)?
                .as_u64()
                .ok_or_else(|| format!("`{key}` is not a non-negative integer"))?;
            if v == 0 {
                return Err(format!("`{key}` must be positive"));
            }
        }
        match req(doc, "host_parallelism")? {
            Json::Null | Json::Int(_) => {}
            _ => return Err("`host_parallelism` is not an integer or null".into()),
        }
        req(doc, "oversubscribed")?
            .as_bool()
            .ok_or("`oversubscribed` is not a boolean")?;
    }
    if version >= 3 {
        let cm = req(doc, "count_mode")?
            .as_str()
            .ok_or("`count_mode` is not a string")?;
        if cm != "exact" && !cm.starts_with("sketch-p") {
            return Err(format!("unknown count_mode `{cm}`"));
        }
        req(doc, "sketch_suppressed")?
            .as_u64()
            .ok_or("`sketch_suppressed` is not a non-negative integer")?;
        let breakdown = req(doc, "phase_breakdown")?;
        let check_traffic = |v: &Json, phase: &str| -> Result<(), String> {
            for key in ["rounds", "messages", "bits"] {
                v.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    format!("`phase_breakdown.{phase}.{key}` is not a non-negative integer")
                })?;
            }
            Ok(())
        };
        for phase in ["walk", "count"] {
            let v = breakdown
                .get(phase)
                .ok_or_else(|| format!("missing field `phase_breakdown.{phase}`"))?;
            check_traffic(v, phase)?;
        }
        match breakdown.get("collect") {
            Some(Json::Null) => {}
            Some(v) => check_traffic(v, "collect")?,
            None => return Err("missing field `phase_breakdown.collect`".into()),
        }
    }
    Ok(())
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`); `None` where the proc filesystem is absent.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_stable() {
        let s = Scenario::new(Mode::Clean, Topology::Er, 4096, 1);
        assert_eq!(s.name(), "clean-er-n4096-t1");
        let s = Scenario::new(Mode::Chaos, Topology::Torus, 256, 4);
        assert_eq!(s.name(), "chaos-torus-n256-t4");
    }

    #[test]
    fn torus_dims_factorize() {
        assert_eq!(torus_dims(256), (16, 16));
        assert_eq!(torus_dims(1024), (32, 32));
        assert_eq!(torus_dims(4096), (64, 64));
        assert_eq!(torus_dims(128), (8, 16));
    }

    #[test]
    fn smoke_scenario_emits_valid_schema() {
        let scenario = &smoke_matrix()[0];
        let result = run_scenario(scenario, 0, 2);
        assert_eq!(result.samples_ms.len(), 2);
        assert!(result.rounds > 0);
        assert!(result.total_messages > 0);
        let doc = result.to_json();
        validate_bench_json(&doc).expect("schema self-consistency");
        // Round-trips through the parser unchanged.
        let reparsed = Json::parse(&doc.to_json()).expect("parse");
        validate_bench_json(&reparsed).expect("schema after round-trip");
    }

    #[test]
    fn validator_rejects_missing_and_malformed_fields() {
        let scenario = Scenario::new(Mode::Clean, Topology::Torus, 9, 1);
        let mut result = run_scenario(&scenario, 0, 1);
        validate_bench_json(&result.to_json()).expect("valid before mutation");

        // Trial-count / sample-length mismatch.
        result.samples_ms.push(1.0);
        let doc = result.to_json();
        let broken = match doc {
            Json::Obj(mut fields) => {
                for (k, v) in &mut fields {
                    if k == "trials" {
                        *v = Json::Int(1);
                    }
                }
                Json::Obj(fields)
            }
            _ => unreachable!(),
        };
        assert!(validate_bench_json(&broken).is_err());

        // Missing top-level field.
        let doc = Json::parse(r#"{"schema_version":1}"#).unwrap();
        assert!(validate_bench_json(&doc).is_err());

        // Unknown mode string.
        let mut fields = match result.to_json() {
            Json::Obj(f) => f,
            _ => unreachable!(),
        };
        for (k, v) in &mut fields {
            if k == "mode" {
                *v = Json::Str("frenzied".into());
            }
        }
        assert!(validate_bench_json(&Json::Obj(fields)).is_err());
    }

    #[test]
    fn v2_artifacts_record_the_execution_environment() {
        let scenario = Scenario::new(Mode::Clean, Topology::Er, 128, 4);
        let result = run_scenario(&scenario, 0, 1);
        // Default granularity 16 on 128 nodes leaves room for 4 workers.
        assert_eq!(result.effective_threads, 4);
        assert_eq!(result.granularity, 16);
        assert_eq!(result.host_parallelism, host_parallelism());
        let doc = result.to_json();
        validate_bench_json(&doc).expect("v2 schema self-consistency");
        assert_eq!(doc.get("effective_threads").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("granularity").and_then(Json::as_u64), Some(16));
        assert_eq!(
            doc.get("oversubscribed").and_then(Json::as_bool),
            Some(result.oversubscribed)
        );
    }

    #[test]
    fn validator_accepts_committed_v1_artifacts() {
        // A v2 document with the execution-environment fields stripped
        // and the version stamp rewound is exactly the shape of the
        // artifacts committed before the sweep existed.
        let scenario = Scenario::new(Mode::Clean, Topology::Torus, 9, 1);
        let result = run_scenario(&scenario, 0, 1);
        let v2_only = [
            "host_parallelism",
            "effective_threads",
            "granularity",
            "oversubscribed",
        ];
        let mut fields = match result.to_json() {
            Json::Obj(f) => f,
            _ => unreachable!(),
        };
        fields.retain(|(k, _)| !v2_only.contains(&k.as_str()));
        for (k, v) in &mut fields {
            if k == "schema_version" {
                *v = Json::Int(1);
            }
        }
        validate_bench_json(&Json::Obj(fields.clone())).expect("v1 stays valid");
        // But the same shape stamped as v2 is incomplete.
        for (k, v) in &mut fields {
            if k == "schema_version" {
                *v = Json::Int(2);
            }
        }
        assert!(validate_bench_json(&Json::Obj(fields)).is_err());
        // And versions outside [MIN, CURRENT] are rejected outright.
        let future =
            Json::parse(&format!(r#"{{"schema_version":{}}}"#, SCHEMA_VERSION + 1)).unwrap();
        assert!(validate_bench_json(&future).is_err());
    }

    #[test]
    fn sweep_matrices_cover_each_thread_count_once() {
        let m = sweep_matrix(&[1, 2, 4, 8], false);
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|s| s.n == 4096));
        assert_eq!(
            m.iter().map(|s| s.threads).collect::<Vec<_>>(),
            vec![1, 2, 4, 8]
        );
        let large = sweep_matrix(&[1, 8], true);
        assert_eq!(large.len(), 4);
        assert_eq!(large.iter().filter(|s| s.n == 65536).count(), 2);
        let smoke = smoke_sweep_matrix(&[1, 4]);
        assert_eq!(smoke.len(), 2);
        assert!(smoke.iter().all(|s| s.n == 128));
    }

    #[test]
    fn sweep_fingerprint_check_flags_divergence_across_thread_counts() {
        let make = |threads: usize, rounds: usize| BenchResult {
            scenario: Scenario::new(Mode::Clean, Topology::Er, 128, threads),
            warmup: 0,
            samples_ms: vec![1.0],
            rounds,
            total_messages: 10,
            total_bits: 100,
            peak_rss_bytes: None,
            host_parallelism: Some(1),
            effective_threads: threads,
            granularity: 16,
            oversubscribed: threads > 1,
            phase_breakdown: PhaseBreakdown::default(),
            count_mode: CountMode::Exact,
            sketch_suppressed: 0,
        };
        // Identical fingerprints across thread counts pass.
        check_sweep_fingerprints(&[make(1, 7), make(4, 7)]).expect("identical fingerprints");
        // Different workloads never compare against each other.
        let mut other = make(1, 99);
        other.scenario.n = 256;
        check_sweep_fingerprints(&[make(1, 7), other]).expect("different workloads");
        // A diverging thread count is an error naming both scenarios.
        let err = check_sweep_fingerprints(&[make(1, 7), make(4, 8)]).unwrap_err();
        assert!(err.contains("clean-er-n128-t1"), "{err}");
        assert!(err.contains("clean-er-n128-t4"), "{err}");
    }

    #[test]
    fn bench_filenames_include_tag() {
        assert_eq!(
            bench_filename("", "clean-er-n128-t1"),
            "BENCH_clean-er-n128-t1.json"
        );
        assert_eq!(
            bench_filename("baseline", "clean-er-n128-t1"),
            "BENCH_baseline-clean-er-n128-t1.json"
        );
    }
}
