//! Chaos tooling behind the `rwbc-chaos` binary: a deterministic decode
//! fuzzer and a minimal-repro shrinker for fault schedules.
//!
//! # Decode fuzzing
//!
//! Every byte the repo decodes — JSONL trace lines, JSON documents,
//! `BENCH_*.json` schemas, walk/count message payloads, checkpoint
//! images, `rwbc-serve` request/response frames and mid-solve
//! `StepSolver` images — must yield a typed error on malformed input,
//! never a panic.
//! [`fuzz_all_codecs`] checks exactly that: it builds a *valid* corpus
//! for each codec (structure-aware, so mutations land near real field
//! boundaries instead of dying in framing), applies seeded byte/bit
//! mutations, and runs every decoder under `catch_unwind`. The whole
//! harness is deterministic: same seed, same corpus, same mutations,
//! same verdict — a CI panic is reproducible locally with
//! `rwbc-chaos fuzz --seed <s>`.
//!
//! # Chaos shrinking
//!
//! When a fault schedule makes the pipeline misbehave, the plan that
//! found the bug is rarely the plan you want in the bug report.
//! [`shrink_plan`] greedily minimizes a failing [`FaultPlan`] — zeroing
//! probabilities, dropping scheduled faults, narrowing windows — while
//! re-checking the failure after each candidate step, and returns the
//! smallest plan it could still make fail. Plans round-trip through a
//! hand-rolled JSON codec ([`plan_to_json`] / [`plan_from_json`]) so
//! repros are diffable, committable artifacts.

use std::panic::{catch_unwind, AssertUnwindSafe};

use congest_sim::algorithms::Flood;
use congest_sim::trace::json::Json;
use congest_sim::trace::jsonl::{decode_event, decode_trace, encode_event};
use congest_sim::{
    FaultPlan, LinkCorruption, LinkOutage, MemoryTracer, NodeCrash, Registry, Reliable, SimConfig,
    Simulator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rwbc::distributed::messages::{CountMsg, WalkBatch, WalkToken};
use rwbc::distributed::{approximate, CountMode, DistributedConfig, SketchCountMsg};
use rwbc::monte_carlo::TargetStrategy;
use rwbc_graph::generators::connected_gnp;
use rwbc_graph::Graph;
use rwbc_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    DaemonState, HealthReport, MetricsReport, Request as ServeRequest, RequestEnvelope,
    Response as ServeResponse, SloFlags,
};

use crate::perf::validate_bench_json;

// ---------------------------------------------------------------------
// Decode fuzzing
// ---------------------------------------------------------------------

/// Outcome of fuzzing one codec.
#[derive(Debug, Clone)]
pub struct CodecReport {
    /// Codec name (`jsonl`, `json`, `bench-json`, `walk-batch`,
    /// `count-msg`, `checkpoint`, `serve-request`, `serve-response`,
    /// `serve-frame`, `serve-step-checkpoint`).
    pub name: &'static str,
    /// Mutated inputs fed to the decoder.
    pub cases: usize,
    /// Inputs the decoder still accepted (mutation landed in slack).
    pub accepted: usize,
    /// Inputs rejected with a typed error — the expected outcome.
    pub rejected: usize,
    /// Panic messages, one per panicking input: always a bug.
    pub panics: Vec<String>,
}

/// Outcome of a full fuzzing run; `is_clean` is the CI gate.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The seed the whole run derives from.
    pub seed: u64,
    /// Per-codec outcomes.
    pub codecs: Vec<CodecReport>,
}

impl FuzzReport {
    /// True when no decoder panicked on any mutated input.
    pub fn is_clean(&self) -> bool {
        self.codecs.iter().all(|c| c.panics.is_empty())
    }

    /// Total mutated inputs across all codecs.
    pub fn total_cases(&self) -> usize {
        self.codecs.iter().map(|c| c.cases).sum()
    }
}

/// Applies 1–4 seeded mutations (bit flip, byte substitution, range
/// deletion, random insertion, truncation, chunk duplication) to a
/// corpus item.
fn mutate(bytes: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let ops = 1 + rng.gen_range(0..4u64) as usize;
    for _ in 0..ops {
        if out.is_empty() {
            out.push(rng.gen_range(0..256u64) as u8);
            continue;
        }
        match rng.gen_range(0..6u64) {
            0 => {
                let bit = rng.gen_range(0..(out.len() as u64 * 8)) as usize;
                out[bit / 8] ^= 0x80 >> (bit % 8);
            }
            1 => {
                let i = rng.gen_range(0..out.len() as u64) as usize;
                out[i] = rng.gen_range(0..256u64) as u8;
            }
            2 => {
                let i = rng.gen_range(0..out.len() as u64) as usize;
                let len = (rng.gen_range(0..8u64) as usize + 1).min(out.len() - i);
                out.drain(i..i + len);
            }
            3 => {
                let i = rng.gen_range(0..=out.len() as u64) as usize;
                let extra: Vec<u8> = (0..rng.gen_range(1..6u64))
                    .map(|_| rng.gen_range(0..256u64) as u8)
                    .collect();
                out.splice(i..i, extra);
            }
            4 => {
                let keep = rng.gen_range(0..=out.len() as u64) as usize;
                out.truncate(keep);
            }
            _ => {
                let i = rng.gen_range(0..out.len() as u64) as usize;
                let len = (rng.gen_range(0..8u64) as usize + 1).min(out.len() - i);
                let chunk: Vec<u8> = out[i..i + len].to_vec();
                out.splice(i..i, chunk);
            }
        }
    }
    out
}

/// Runs `decode` on `budget` mutations of `corpus` items, counting
/// accepts/rejects and catching panics. The default panic hook is
/// suppressed for the duration so expected rejections stay quiet.
fn fuzz_codec(
    name: &'static str,
    corpus: &[Vec<u8>],
    budget: usize,
    rng: &mut StdRng,
    mut decode: impl FnMut(&[u8]) -> bool,
) -> CodecReport {
    let mut report = CodecReport {
        name,
        cases: 0,
        accepted: 0,
        rejected: 0,
        panics: Vec::new(),
    };
    assert!(!corpus.is_empty(), "codec {name} has an empty corpus");
    for case in 0..budget {
        let item = &corpus[case % corpus.len()];
        let mangled = mutate(item, rng);
        report.cases += 1;
        match catch_unwind(AssertUnwindSafe(|| decode(&mangled))) {
            Ok(true) => report.accepted += 1,
            Ok(false) => report.rejected += 1,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                report.panics.push(format!("{name} case {case}: {msg}"));
            }
        }
    }
    report
}

/// A small faulty traced run whose artifacts feed the corpora: real
/// JSONL lines and a mid-run checkpoint image (plus the graph/config
/// that image decodes against).
fn corpus_run(seed: u64) -> (Vec<Vec<u8>>, Vec<u8>, Graph, SimConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = connected_gnp(12, 0.4, 50, &mut rng).expect("corpus graph");
    let faults = FaultPlan::default()
        .with_drop_probability(0.2)
        .with_duplicate_probability(0.1)
        .with_delay_probability(0.1)
        .with_corrupt_probability(0.2)
        .with_link_outage(LinkOutage {
            u: 0,
            v: 1,
            from_round: 1,
            until_round: 3,
        })
        .with_node_crash(NodeCrash {
            node: 2,
            crash_round: 2,
            recover_round: Some(4),
        });
    let cfg = SimConfig::default()
        .with_seed(seed)
        .with_bandwidth_coeff(48)
        .with_faults(faults);
    let mut tracer = MemoryTracer::new();
    let mut sim = Simulator::new(&g, cfg.clone(), |v| {
        Reliable::new(Flood::new(v, 0)).with_checksums()
    })
    .with_tracer(&mut tracer);
    sim.run().expect("corpus run");
    drop(sim);
    let lines: Vec<Vec<u8>> = tracer
        .into_events()
        .iter()
        .map(|e| encode_event(e).into_bytes())
        .collect();

    // A second, unwrapped run cut mid-flight for the checkpoint corpus
    // (checkpointing requires the program itself to be `WireState`, so
    // this one floods without the reliable adapter).
    let mut sim = Simulator::new(&g, cfg.clone(), |v| Flood::new(v, 0));
    for _ in 0..3 {
        if sim.step().expect("corpus checkpoint run") {
            break;
        }
    }
    let image = sim.checkpoint().to_vec();
    (lines, image, g, cfg)
}

/// Fuzzes every decode surface with `budget` mutated inputs each,
/// deterministically from `seed`. Zero panics is the acceptance bar;
/// accept/reject splits are informational.
pub fn fuzz_all_codecs(seed: u64, budget: usize) -> FuzzReport {
    let (jsonl_lines, image, corpus_graph, corpus_cfg) = corpus_run(seed ^ 0x00C0_FFEE);
    let mut rng = StdRng::seed_from_u64(seed);
    // Quiet the panic hook: a caught decoder panic is *reported*, not
    // printed mid-run.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut codecs = Vec::new();

    codecs.push(fuzz_codec("jsonl", &jsonl_lines, budget, &mut rng, |b| {
        decode_event(&String::from_utf8_lossy(b)).is_ok()
    }));

    let whole_trace: Vec<Vec<u8>> = vec![jsonl_lines.join(&b"\n"[..])];
    codecs.push(fuzz_codec(
        "jsonl-trace",
        &whole_trace,
        budget,
        &mut rng,
        |b| decode_trace(&String::from_utf8_lossy(b)).is_ok(),
    ));

    let json_corpus: Vec<Vec<u8>> = vec![
        plan_to_json(&preset("blizzard").expect("preset").0)
            .to_json()
            .into_bytes(),
        br#"{"a":[1,2.5,null,true,"xA\n"],"b":{"c":[[]]}}"#.to_vec(),
        br#"[{"deep":{"deeper":{"deepest":[1,2,3]}}},"tail"]"#.to_vec(),
    ];
    codecs.push(fuzz_codec("json", &json_corpus, budget, &mut rng, |b| {
        Json::parse(&String::from_utf8_lossy(b)).is_ok()
    }));

    let bench_corpus: Vec<Vec<u8>> = vec![br#"{"schema_version":1,"scenario":"clean-er-n128-t1","mode":"clean","topology":"er","n":128,"threads":1,"params":{"walks":4,"length":64,"seed":42},"warmup":0,"trials":1,"wall_clock_ms":{"median":1.5,"p95":1.5,"min":1.5,"max":1.5,"samples":[1.5]},"rounds":100,"total_messages":1000,"total_bits":9000,"peak_rss_bytes":null}"#.to_vec()];
    codecs.push(fuzz_codec(
        "bench-json",
        &bench_corpus,
        budget,
        &mut rng,
        |b| match Json::parse(&String::from_utf8_lossy(b)) {
            Ok(doc) => validate_bench_json(&doc).is_ok(),
            Err(_) => false,
        },
    ));

    let n = 300;
    let len_bits = 7;
    let batch_corpus: Vec<Vec<u8>> = (0..4)
        .map(|i| {
            let tokens = (0..=i)
                .map(|t| WalkToken {
                    source: (37 * (t + 1) + i) % n,
                    remaining: (1 + 13 * t as u32) & 0x7F,
                })
                .collect();
            WalkBatch {
                tokens,
                len_bits: len_bits as u8,
            }
            .encode(n)
            .to_vec()
        })
        .collect();
    codecs.push(fuzz_codec(
        "walk-batch",
        &batch_corpus,
        budget,
        &mut rng,
        |b| WalkBatch::decode(b, n, len_bits as u8).is_some(),
    ));

    let count_corpus: Vec<Vec<u8>> = [1u64, 255, 4097]
        .iter()
        .map(|&scaled| {
            CountMsg {
                scaled,
                value_bits: 13,
            }
            .encode()
            .to_vec()
        })
        .collect();
    codecs.push(fuzz_codec(
        "count-msg",
        &count_corpus,
        budget,
        &mut rng,
        |b| CountMsg::decode(b, 13).is_some(),
    ));

    let checkpoint_corpus = vec![image];
    codecs.push(fuzz_codec(
        "checkpoint",
        &checkpoint_corpus,
        budget,
        &mut rng,
        |b| Simulator::<Flood>::restore(&corpus_graph, corpus_cfg.clone(), b).is_ok(),
    ));

    // --- rwbc-serve wire surfaces -----------------------------------

    let request_corpus: Vec<Vec<u8>> = [
        RequestEnvelope {
            deadline_ms: 250,
            request: ServeRequest::Centrality { node: 17 },
        },
        RequestEnvelope {
            deadline_ms: 0,
            request: ServeRequest::TopK { k: 8 },
        },
        RequestEnvelope {
            deadline_ms: 1000,
            request: ServeRequest::Stats,
        },
        RequestEnvelope {
            deadline_ms: 0,
            request: ServeRequest::Drain,
        },
        RequestEnvelope {
            deadline_ms: 0,
            request: ServeRequest::Metrics,
        },
    ]
    .iter()
    .map(encode_request)
    .collect();
    codecs.push(fuzz_codec(
        "serve-request",
        &request_corpus,
        budget,
        &mut rng,
        |b| decode_request(b).is_ok(),
    ));

    // A populated telemetry report: one instrument of each kind, so
    // the nested `MetricsSnapshot` codec (names, counters, gauges,
    // histogram bucket arrays, f64 burn rates) is in the mutation
    // corpus, not just empty-registry frames.
    fn metrics_report_corpus() -> MetricsReport {
        let registry = Registry::default();
        registry.counter("serve_requests_total").add(17);
        registry.gauge("serve_queue_depth").set(3);
        registry.histogram("serve_request_latency_us").record(800);
        MetricsReport {
            snapshot: registry.snapshot(),
            uptime_ms: 98_765,
            last_checkpoint_age_ms: None,
            burn_fast: 2.5,
            burn_slow: 0.125,
        }
    }

    let response_corpus: Vec<Vec<u8>> = [
        ServeResponse::Value {
            node: 17,
            value: 0.125,
            slo: SloFlags {
                degraded: true,
                resumed: true,
                walks_lost: 3,
                count_cells_missing: 1,
            },
        },
        ServeResponse::Ranking {
            top: vec![(4, 0.9), (2, 0.5), (0, 0.25)],
            slo: SloFlags::default(),
        },
        ServeResponse::Health(HealthReport {
            state: DaemonState::Serving,
            ready: true,
            phase: 2,
            rounds_completed: 321,
            slo: SloFlags::default(),
            uptime_ms: 12_345,
            last_checkpoint_age_ms: Some(678),
            burn_fast: 0.25,
            burn_slow: 0.03125,
        }),
        ServeResponse::Metrics(Box::new(metrics_report_corpus())),
        ServeResponse::Overloaded { retry_after_ms: 10 },
        ServeResponse::Error {
            reason: "node 999 out of range (n=64)".to_string(),
        },
    ]
    .iter()
    .map(encode_response)
    .collect();
    codecs.push(fuzz_codec(
        "serve-response",
        &response_corpus,
        budget,
        &mut rng,
        |b| decode_response(b).is_ok(),
    ));

    // The framing layer itself: length prefix + CRC + payload, mutated
    // whole. `read_frame` must reject torn/oversized/mismatched frames
    // typed, never panic or over-allocate.
    let framed_corpus: Vec<Vec<u8>> = request_corpus
        .iter()
        .map(|payload| {
            let mut framed = Vec::new();
            write_frame(&mut framed, payload).expect("framing into a Vec");
            framed
        })
        .collect();
    codecs.push(fuzz_codec(
        "serve-frame",
        &framed_corpus,
        budget,
        &mut rng,
        |b| read_frame(&mut &b[..]).is_ok(),
    ));

    // A mid-solve StepSolver image — the daemon's crash-recovery
    // surface. Any mutation must yield a typed error, never a panic or
    // a silently-different resume.
    let step_cfg = DistributedConfig::builder()
        .walks(2)
        .length(16)
        .seed(seed ^ 0x51E9)
        .target(TargetStrategy::Fixed(0))
        .build()
        .expect("step corpus params");
    let mut step_solver =
        rwbc::distributed::StepSolver::new(&corpus_graph, step_cfg.clone()).expect("step solver");
    for _ in 0..3 {
        if step_solver.step().expect("step corpus run") {
            break;
        }
    }
    let step_corpus = vec![step_solver.checkpoint().expect("step corpus image")];
    codecs.push(fuzz_codec(
        "serve-step-checkpoint",
        &step_corpus,
        budget,
        &mut rng,
        |b| rwbc::distributed::StepSolver::restore(&corpus_graph, step_cfg.clone(), b).is_ok(),
    ));

    // --- sketch count-phase surfaces --------------------------------

    // The per-round sketch frame (bucket index + scaled magnitude).
    // Its fields are fixed-width, so every mutation still parses — the
    // bar here is purely "never panic, never over-read".
    let sketch_msg_corpus: Vec<Vec<u8>> = [(0u32, 1u64), (7, 255), (255, 40_961)]
        .iter()
        .map(|&(bucket, scaled)| {
            SketchCountMsg {
                bucket,
                scaled,
                precision: 8,
                value_bits: 17,
            }
            .encode()
            .to_vec()
        })
        .collect();
    codecs.push(fuzz_codec(
        "sketch-count-msg",
        &sketch_msg_corpus,
        budget,
        &mut rng,
        |b| SketchCountMsg::decode(b, 8, 17).is_some(),
    ));

    // A mid-count sketch-mode StepSolver image: the v2 checkpoint
    // layout with phase tag 3 and a SketchCountProgram engine image.
    let sketch_cfg = DistributedConfig::builder()
        .walks(2)
        .length(16)
        .seed(seed ^ 0x5CE7)
        .target(TargetStrategy::Fixed(0))
        .count_mode(CountMode::Sketch { precision: 3 })
        .build()
        .expect("sketch corpus params");
    let mut sketch_solver = rwbc::distributed::StepSolver::new(&corpus_graph, sketch_cfg.clone())
        .expect("sketch solver");
    while sketch_solver.phase() != rwbc::distributed::SolvePhase::Count {
        sketch_solver.step().expect("sketch corpus run");
    }
    sketch_solver.step().expect("sketch corpus run");
    let sketch_step_corpus = vec![sketch_solver.checkpoint().expect("sketch corpus image")];
    codecs.push(fuzz_codec(
        "sketch-step-checkpoint",
        &sketch_step_corpus,
        budget,
        &mut rng,
        |b| rwbc::distributed::StepSolver::restore(&corpus_graph, sketch_cfg.clone(), b).is_ok(),
    ));

    std::panic::set_hook(hook);
    FuzzReport { seed, codecs }
}

// ---------------------------------------------------------------------
// FaultPlan <-> JSON
// ---------------------------------------------------------------------

fn round_to_json(round: usize) -> Json {
    if round == usize::MAX {
        // `null` marks "forever" — usize::MAX has no i64 representation.
        Json::Null
    } else {
        Json::Int(round as i64)
    }
}

fn round_from_json(v: Option<&Json>, what: &str) -> Result<usize, String> {
    match v {
        None | Some(Json::Null) => Ok(usize::MAX),
        Some(j) => j
            .as_u64()
            .map(|r| r as usize)
            .ok_or_else(|| format!("`{what}` is not a round number or null")),
    }
}

fn prob_from_json(doc: &Json, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        None => Ok(0.0),
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as f64),
        Some(Json::Float(f)) => Ok(*f),
        Some(_) => Err(format!("`{key}` is not a probability")),
    }
}

/// Serializes a fault plan to the committable repro format.
pub fn plan_to_json(plan: &FaultPlan) -> Json {
    let outages = plan
        .outages
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("u".into(), Json::Int(o.u as i64)),
                ("v".into(), Json::Int(o.v as i64)),
                ("from_round".into(), round_to_json(o.from_round)),
                ("until_round".into(), round_to_json(o.until_round)),
            ])
        })
        .collect();
    let corruptions = plan
        .corruptions
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("u".into(), Json::Int(c.u as i64)),
                ("v".into(), Json::Int(c.v as i64)),
                ("from_round".into(), round_to_json(c.from_round)),
                ("until_round".into(), round_to_json(c.until_round)),
            ])
        })
        .collect();
    let crashes = plan
        .crashes
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("node".into(), Json::Int(c.node as i64)),
                ("crash_round".into(), round_to_json(c.crash_round)),
                (
                    "recover_round".into(),
                    match c.recover_round {
                        Some(r) => round_to_json(r),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "drop_probability".into(),
            Json::Float(plan.drop_probability),
        ),
        (
            "duplicate_probability".into(),
            Json::Float(plan.duplicate_probability),
        ),
        (
            "delay_probability".into(),
            Json::Float(plan.delay_probability),
        ),
        (
            "corrupt_probability".into(),
            Json::Float(plan.corrupt_probability),
        ),
        ("outages".into(), Json::Arr(outages)),
        ("corruptions".into(), Json::Arr(corruptions)),
        ("crashes".into(), Json::Arr(crashes)),
    ])
}

/// Parses a fault plan from its JSON repro format.
///
/// # Errors
///
/// A human-readable description of the first malformed field.
pub fn plan_from_json(doc: &Json) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default()
        .with_drop_probability(prob_from_json(doc, "drop_probability")?)
        .with_duplicate_probability(prob_from_json(doc, "duplicate_probability")?)
        .with_delay_probability(prob_from_json(doc, "delay_probability")?)
        .with_corrupt_probability(prob_from_json(doc, "corrupt_probability")?);
    let node = |item: &Json, key: &str| -> Result<usize, String> {
        item.get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("`{key}` is not a node id"))
    };
    let list = |key: &str| -> Result<Vec<Json>, String> {
        match doc.get(key) {
            None => Ok(Vec::new()),
            Some(Json::Arr(items)) => Ok(items.clone()),
            Some(_) => Err(format!("`{key}` is not an array")),
        }
    };
    for item in list("outages")? {
        plan = plan.with_link_outage(LinkOutage {
            u: node(&item, "u")?,
            v: node(&item, "v")?,
            from_round: round_from_json(item.get("from_round"), "from_round")?,
            until_round: round_from_json(item.get("until_round"), "until_round")?,
        });
    }
    for item in list("corruptions")? {
        plan = plan.with_link_corruption(LinkCorruption {
            u: node(&item, "u")?,
            v: node(&item, "v")?,
            from_round: round_from_json(item.get("from_round"), "from_round")?,
            until_round: round_from_json(item.get("until_round"), "until_round")?,
        });
    }
    for item in list("crashes")? {
        let recover = match item.get("recover_round") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_usize()
                    .ok_or("`recover_round` is not a round number or null")?,
            ),
        };
        plan = plan.with_node_crash(NodeCrash {
            node: node(&item, "node")?,
            crash_round: round_from_json(item.get("crash_round"), "crash_round")?,
            recover_round: recover,
        });
    }
    Ok(plan)
}

// ---------------------------------------------------------------------
// Presets, properties, and the shrinker
// ---------------------------------------------------------------------

/// Named fault plans for `rwbc-chaos run/shrink`.
pub fn preset(name: &str) -> Option<(FaultPlan, &'static str)> {
    match name {
        "drops" => Some((
            FaultPlan::default().with_drop_probability(0.05),
            "5% Bernoulli drops",
        )),
        "corrupt" => Some((
            FaultPlan::default()
                .with_corrupt_probability(0.05)
                .with_drop_probability(0.01),
            "5% payload corruption + 1% drops",
        )),
        "quarantine" => Some((
            FaultPlan::default().with_link_corruption(LinkCorruption {
                u: 0,
                v: 1,
                from_round: 0,
                until_round: usize::MAX,
            }),
            "permanently corrupting link 0-1 (drives detector escalation)",
        )),
        "blizzard" => Some((
            FaultPlan::default()
                .with_drop_probability(0.08)
                .with_duplicate_probability(0.04)
                .with_delay_probability(0.08)
                .with_corrupt_probability(0.05)
                .with_link_outage(LinkOutage {
                    u: 0,
                    v: 1,
                    from_round: 0,
                    until_round: usize::MAX,
                })
                .with_link_corruption(LinkCorruption {
                    u: 1,
                    v: 2,
                    from_round: 4,
                    until_round: 40,
                })
                .with_node_crash(NodeCrash {
                    node: 3,
                    crash_round: 12,
                    recover_round: Some(20),
                }),
            "everything at once: drops/dups/delays/corruption + outage + crash",
        )),
        _ => None,
    }
}

/// All preset names, for `--list` and error messages.
pub const PRESET_NAMES: [&str; 4] = ["drops", "corrupt", "quarantine", "blizzard"];

/// What "failing" means to the shrinker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosProperty {
    /// `approximate` returns an error (budget blown, round cap hit, …).
    RunError,
    /// The run completes but the degradation report is not clean.
    NotClean,
    /// The run completes but at least one walk was lost to faults.
    WalksLost,
}

impl ChaosProperty {
    /// The CLI name (`run-error` / `not-clean` / `walks-lost`).
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosProperty::RunError => "run-error",
            ChaosProperty::NotClean => "not-clean",
            ChaosProperty::WalksLost => "walks-lost",
        }
    }

    /// Parses a CLI name.
    pub fn from_str_opt(s: &str) -> Option<ChaosProperty> {
        match s {
            "run-error" => Some(ChaosProperty::RunError),
            "not-clean" => Some(ChaosProperty::NotClean),
            "walks-lost" => Some(ChaosProperty::WalksLost),
            _ => None,
        }
    }
}

/// The fixed pipeline workload a plan is judged against: small enough
/// that a shrink run's dozens of re-checks stay fast, deterministic so
/// failure is a pure function of the plan.
#[derive(Debug, Clone)]
pub struct ChaosWorkload {
    /// Node count of the connected G(n, p) instance.
    pub n: usize,
    /// Master seed (graph + pipeline).
    pub seed: u64,
    /// Walks per node.
    pub walks: usize,
    /// Walk truncation length.
    pub length: usize,
    /// Run both phases behind the (checksummed) reliable adapter.
    pub reliable: bool,
}

impl Default for ChaosWorkload {
    fn default() -> ChaosWorkload {
        // Seed chosen so the default graph contains edges 0-1 and 1-2 —
        // the links the presets schedule faults on must actually exist.
        ChaosWorkload {
            n: 24,
            seed: 10,
            walks: 6,
            length: 24,
            reliable: false,
        }
    }
}

impl ChaosWorkload {
    /// Builds the workload's graph deterministically.
    pub fn build_graph(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6AF7);
        connected_gnp(self.n, 0.25, 100, &mut rng).expect("chaos workload graph")
    }

    /// Builds the pipeline config with `plan` installed.
    pub fn build_config(&self, plan: &FaultPlan) -> DistributedConfig {
        let mut cfg = DistributedConfig::builder()
            .walks(self.walks)
            .length(self.length)
            .seed(self.seed)
            .target(TargetStrategy::Fixed(0))
            .reliable(self.reliable)
            .checksums(self.reliable)
            .build()
            .expect("chaos workload params");
        cfg.sim = SimConfig::default()
            .with_bandwidth_coeff(24)
            .with_max_rounds(50_000)
            .with_faults(plan.clone());
        cfg
    }

    /// Runs the workload under `plan` and reports whether `property`
    /// holds (i.e. the plan still "fails").
    pub fn fails(&self, plan: &FaultPlan, property: ChaosProperty) -> bool {
        let graph = self.build_graph();
        let cfg = self.build_config(plan);
        match approximate(&graph, &cfg) {
            Err(_) => true, // an error is the strongest failure of all
            Ok(run) => match property {
                ChaosProperty::RunError => false,
                ChaosProperty::NotClean => !run.degradation.is_clean(),
                ChaosProperty::WalksLost => run.degradation.walks_lost > 0,
            },
        }
    }
}

/// Result of a shrink: the minimal failing plan plus the trail that
/// got there.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest plan that still fails the property.
    pub plan: FaultPlan,
    /// Accepted simplification steps, in order.
    pub steps: Vec<String>,
    /// Total pipeline runs spent (accepted + rejected candidates).
    pub tests: usize,
}

/// Rebuilds a plan with one Bernoulli probability replaced.
type ProbSetter = fn(FaultPlan, f64) -> FaultPlan;

/// Candidate simplifications of `plan`, most aggressive first. Each is
/// strictly simpler, so the greedy loop terminates.
fn candidates(plan: &FaultPlan) -> Vec<(String, FaultPlan)> {
    let mut out = Vec::new();
    let probs: [(&str, f64, ProbSetter); 4] = [
        ("drop", plan.drop_probability, |p, v| {
            p.with_drop_probability(v)
        }),
        ("duplicate", plan.duplicate_probability, |p, v| {
            p.with_duplicate_probability(v)
        }),
        ("delay", plan.delay_probability, |p, v| {
            p.with_delay_probability(v)
        }),
        ("corrupt", plan.corrupt_probability, |p, v| {
            p.with_corrupt_probability(v)
        }),
    ];
    for (name, value, set) in probs {
        if value > 0.0 {
            out.push((
                format!("zero {name}_probability (was {value})"),
                set(plan.clone(), 0.0),
            ));
        }
        if value > 0.01 {
            out.push((
                format!("halve {name}_probability ({value} -> {})", value / 2.0),
                set(plan.clone(), value / 2.0),
            ));
        }
    }
    for i in 0..plan.outages.len() {
        let mut p = plan.clone();
        let o = p.outages.remove(i);
        out.push((format!("drop outage {}-{}", o.u, o.v), p));
    }
    for i in 0..plan.corruptions.len() {
        let mut p = plan.clone();
        let c = p.corruptions.remove(i);
        out.push((format!("drop corruption {}-{}", c.u, c.v), p));
    }
    for i in 0..plan.crashes.len() {
        let mut p = plan.clone();
        let c = p.crashes.remove(i);
        out.push((format!("drop crash of node {}", c.node), p));
    }
    // Window narrowing: halve bounded windows from the back.
    for i in 0..plan.outages.len() {
        let o = &plan.outages[i];
        if o.until_round != usize::MAX && o.until_round > o.from_round + 1 {
            let mid = o.from_round + (o.until_round - o.from_round) / 2;
            let mut p = plan.clone();
            p.outages[i].until_round = mid;
            out.push((format!("narrow outage {}-{} to round {mid}", o.u, o.v), p));
        }
    }
    for i in 0..plan.corruptions.len() {
        let c = &plan.corruptions[i];
        if c.until_round != usize::MAX && c.until_round > c.from_round + 1 {
            let mid = c.from_round + (c.until_round - c.from_round) / 2;
            let mut p = plan.clone();
            p.corruptions[i].until_round = mid;
            out.push((
                format!("narrow corruption {}-{} to round {mid}", c.u, c.v),
                p,
            ));
        }
    }
    out
}

/// Greedily minimizes a failing plan: keep applying the first candidate
/// simplification that still fails, until none does (or `max_tests`
/// pipeline runs are spent). The input plan must itself fail, or the
/// result is just the input.
pub fn shrink_plan(
    workload: &ChaosWorkload,
    plan: &FaultPlan,
    property: ChaosProperty,
    max_tests: usize,
) -> ShrinkOutcome {
    let mut current = plan.clone();
    let mut steps = Vec::new();
    let mut tests = 0;
    'outer: loop {
        for (desc, candidate) in candidates(&current) {
            if tests >= max_tests {
                break 'outer;
            }
            tests += 1;
            if workload.fails(&candidate, property) {
                steps.push(desc);
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkOutcome {
        plan: current,
        steps,
        tests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzing_every_codec_panics_nowhere() {
        let report = fuzz_all_codecs(0xF422, 60);
        assert_eq!(report.codecs.len(), 13);
        for codec in &report.codecs {
            assert!(
                codec.panics.is_empty(),
                "codec {} panicked: {:?}",
                codec.name,
                codec.panics
            );
            assert_eq!(codec.cases, 60);
            // A codec that accepts everything isn't being stressed.
            assert!(codec.rejected > 0, "codec {} rejected nothing", codec.name);
        }
        assert!(report.is_clean());
        assert_eq!(report.total_cases(), 13 * 60);
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let a = fuzz_all_codecs(99, 30);
        let b = fuzz_all_codecs(99, 30);
        for (x, y) in a.codecs.iter().zip(&b.codecs) {
            assert_eq!(x.accepted, y.accepted);
            assert_eq!(x.rejected, y.rejected);
        }
    }

    #[test]
    fn plan_json_round_trips() {
        let (plan, _) = preset("blizzard").unwrap();
        let doc = plan_to_json(&plan);
        let back = plan_from_json(&Json::parse(&doc.to_json()).unwrap()).unwrap();
        assert_eq!(back, plan);
        // `null` means forever on both sides.
        assert_eq!(back.outages[0].until_round, usize::MAX);
    }

    #[test]
    fn plan_json_rejects_malformed_fields() {
        let doc = Json::parse(r#"{"drop_probability":"lots"}"#).unwrap();
        assert!(plan_from_json(&doc).is_err());
        let doc = Json::parse(r#"{"outages":[{"u":0}]}"#).unwrap();
        assert!(plan_from_json(&doc).is_err());
        let doc =
            Json::parse(r#"{"crashes":[{"node":1,"crash_round":2,"recover_round":"x"}]}"#).unwrap();
        assert!(plan_from_json(&doc).is_err());
    }

    #[test]
    fn shrinking_a_blizzard_leaves_a_minimal_repro() {
        // Several blizzard ingredients lose walks on the raw transport
        // all by themselves, so the greedy fixpoint must land on exactly
        // ONE surviving cause (whichever the pass order reaches last) —
        // everything else shrinks away.
        let workload = ChaosWorkload::default();
        let (plan, _) = preset("blizzard").unwrap();
        assert!(workload.fails(&plan, ChaosProperty::WalksLost));
        let outcome = shrink_plan(&workload, &plan, ChaosProperty::WalksLost, 600);
        assert!(workload.fails(&outcome.plan, ChaosProperty::WalksLost));
        assert!(!outcome.steps.is_empty());
        let p = &outcome.plan;
        let live_probs = [
            p.drop_probability,
            p.duplicate_probability,
            p.delay_probability,
            p.corrupt_probability,
        ]
        .iter()
        .filter(|&&v| v > 0.0)
        .count();
        let causes = live_probs + p.outages.len() + p.corruptions.len() + p.crashes.len();
        assert_eq!(causes, 1, "not minimal: {p:?}");
    }

    #[test]
    fn quarantine_preset_fails_not_clean_under_checksums() {
        let workload = ChaosWorkload {
            reliable: true,
            ..ChaosWorkload::default()
        };
        let (plan, _) = preset("quarantine").unwrap();
        assert!(workload.fails(&plan, ChaosProperty::NotClean));
        // And an empty plan is clean — the property is about the plan.
        assert!(!workload.fails(&FaultPlan::default(), ChaosProperty::NotClean));
    }
}
