//! B1: wall-time scaling of the exact solvers (Newman's `O((n + m) n²)`
//! claim). Dense-LU vs per-source CG across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rwbc::exact::{newman_with, ExactOptions, PairSum, Solver};
use rwbc_graph::generators::connected_gnp;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_scaling");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let p = 4.0 * (n as f64).ln() / n as f64;
        let g = connected_gnp(n, p.min(0.9), 200, &mut rng).unwrap();
        for (label, solver) in [("lu", Solver::DenseLu), ("cg", Solver::ConjugateGradient)] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                b.iter(|| {
                    newman_with(
                        g,
                        &ExactOptions {
                            solver,
                            pair_sum: PairSum::Sorted,
                        },
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
