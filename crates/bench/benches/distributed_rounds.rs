//! B2: wall-time of the full distributed pipeline (Algorithms 1 + 2) vs n
//! — the simulation-side cost of the `O(n log n)`-round algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwbc::distributed::{approximate, DistributedConfig};
use rwbc_bench::suite::e4::test_graph;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_rounds");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let g = test_graph(n, n as u64);
        let k = (n as f64).log2().ceil() as usize;
        let cfg = DistributedConfig::builder()
            .walks(k)
            .length(n)
            .seed(1)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("approximate", n), &g, |b, g| {
            b.iter(|| approximate(g, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
