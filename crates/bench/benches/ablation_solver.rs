//! B4 (ablation D4/D5): the four exact-solver configurations — {dense LU,
//! CG} × {direct Θ(n²)-per-edge reduction, sorted O(n log n) reduction}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwbc::exact::{newman_with, ExactOptions, PairSum, Solver};
use rwbc_bench::suite::e4::test_graph;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solver");
    group.sample_size(10);
    let g = test_graph(48, 9);
    let combos = [
        ("lu_direct", Solver::DenseLu, PairSum::Direct),
        ("lu_sorted", Solver::DenseLu, PairSum::Sorted),
        ("cg_direct", Solver::ConjugateGradient, PairSum::Direct),
        ("cg_sorted", Solver::ConjugateGradient, PairSum::Sorted),
        ("cholesky_sorted", Solver::Cholesky, PairSum::Sorted),
    ];
    for (label, solver, pair_sum) in combos {
        group.bench_with_input(BenchmarkId::new(label, 48), &g, |b, g| {
            b.iter(|| newman_with(g, &ExactOptions { solver, pair_sum }).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
