//! B5 (ablation D3): hold-and-resend (the paper's line-6 discipline) vs
//! batched token packing. Batched drains the per-node K-token backlog
//! faster, trading message size for rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwbc::distributed::{approximate, CongestionDiscipline, DistributedConfig};
use rwbc_bench::suite::e4::test_graph;

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_congestion");
    group.sample_size(10);
    let n = 32;
    let g = test_graph(n, 4);
    for (label, discipline) in [
        ("hold_and_resend", CongestionDiscipline::HoldAndResend),
        ("batched", CongestionDiscipline::Batched),
    ] {
        let cfg = DistributedConfig::builder()
            .walks(16)
            .length(n)
            .seed(2)
            .discipline(discipline)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
            b.iter(|| approximate(g, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
