//! B7: the random walk problem — naive `Θ(l)` token forwarding vs
//! Das Sarma et al. short-walk stitching (`Õ(√(lD))`), wall-time view of
//! experiment E10.

use congest_sim::SimConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwbc::random_walk::{naive_walk, stitched_walk, StitchParams};
use rwbc_graph::generators::torus_2d;
use rwbc_graph::traversal::diameter;

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_walk");
    group.sample_size(10);
    let g = torus_2d(6, 6).unwrap();
    let d = diameter(&g).unwrap();
    for &l in &[128usize, 512] {
        group.bench_with_input(BenchmarkId::new("naive", l), &g, |b, g| {
            b.iter(|| naive_walk(g, 0, l, SimConfig::default().with_seed(1)).unwrap())
        });
        let params = StitchParams::optimized(l, d);
        group.bench_with_input(BenchmarkId::new("stitched", l), &g, |b, g| {
            b.iter(|| stitched_walk(g, 0, l, params, SimConfig::default().with_seed(1)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
