//! B6: the centrality zoo on one graph — exact RWBC vs Brandes SPBC vs
//! PageRank vs Monte-Carlo RWBC vs flow betweenness (the cost hierarchy
//! the paper's related-work section describes).

use criterion::{criterion_group, criterion_main, Criterion};
use rwbc::brandes::betweenness;
use rwbc::exact::newman;
use rwbc::flow_betweenness::flow_betweenness_sampled;
use rwbc::monte_carlo::{estimate, McConfig};
use rwbc::pagerank;
use rwbc_bench::suite::e8::test_graph;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let g = test_graph(40, 6);
    group.bench_function("rwbc_exact", |b| b.iter(|| newman(&g).unwrap()));
    group.bench_function("spbc_brandes", |b| {
        b.iter(|| betweenness(&g, true).unwrap())
    });
    group.bench_function("pagerank_power", |b| {
        b.iter(|| pagerank::power(&g, 0.15, 1e-10, 100_000).unwrap())
    });
    let mc = McConfig::new(32, 160).with_seed(1);
    group.bench_function("rwbc_monte_carlo", |b| {
        b.iter(|| estimate(&g, &mc).unwrap())
    });
    group.bench_function("flow_betweenness_sampled", |b| {
        b.iter(|| flow_betweenness_sampled(&g, 100, 2).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
