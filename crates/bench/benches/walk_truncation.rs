//! B3: Monte-Carlo estimation cost vs walk length `l` (the Theorem 1
//! knob): cost grows linearly in `l` while accuracy saturates once the
//! survival residual is small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwbc::monte_carlo::{estimate, McConfig, TargetStrategy};
use rwbc_bench::suite::e4::test_graph;

fn bench_truncation(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_truncation");
    group.sample_size(10);
    let n = 32;
    let g = test_graph(n, 3);
    for &mult in &[1usize, 2, 4, 8] {
        let cfg = McConfig::new(32, mult * n)
            .with_seed(5)
            .with_target(TargetStrategy::Fixed(n - 1));
        group.bench_with_input(BenchmarkId::new("l_over_n", mult), &g, |b, g| {
            b.iter(|| estimate(g, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_truncation);
criterion_main!(benches);
