use std::collections::BTreeSet;

use crate::{Graph, GraphError, NodeId};

/// Incremental, validating builder for [`Graph`].
///
/// Edges may be added in any order and with endpoints in either orientation;
/// the builder rejects self-loops, duplicate edges, and out-of-range ids at
/// insertion time, so that [`GraphBuilder::build`] is infallible.
///
/// # Example
///
/// ```
/// use rwbc_graph::GraphBuilder;
///
/// # fn main() -> Result<(), rwbc_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(2, 0)?;
/// b.add_edge(0, 1)?;
/// assert!(b.add_edge(1, 0).is_err()); // duplicate of (0, 1)
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the undirected edge `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u <= v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if `u >= n` or `v >= n`;
    /// * [`GraphError::SelfLoop`] if `u == v`;
    /// * [`GraphError::DuplicateEdge`] if the edge was already added.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut GraphBuilder, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { id: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { id: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !self.edges.insert(key) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        Ok(self)
    }

    /// Adds the edge if absent; returns `true` when it was newly inserted.
    ///
    /// Convenient for randomized generators that may propose repeats.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::NodeOutOfRange`] and [`GraphError::SelfLoop`];
    /// duplicates are not an error here.
    pub fn add_edge_if_absent(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(_) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Adds every edge from the iterator; stops at the first error.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<&mut GraphBuilder, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// Finalizes into a CSR [`Graph`]. Infallible: all validation happened
    /// at insertion time.
    pub fn build(&self) -> Graph {
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![0 as NodeId; 2 * self.edges.len()];
        // BTreeSet iterates (u, v) with u < v in lexicographic order, so each
        // row is filled in ascending neighbor order for the `u` side; the `v`
        // side needs a sort only if insertions interleave — they do: v rows
        // receive u's out of order. Fill then sort each row.
        for &(u, v) in &self.edges {
            adjacency[cursor[u]] = v;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            cursor[v] += 1;
        }
        for v in 0..self.n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr_unchecked(offsets, adjacency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_eagerly() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2),
            Err(GraphError::NodeOutOfRange { id: 2, n: 2 })
        ));
        assert!(matches!(
            b.add_edge(1, 1),
            Err(GraphError::SelfLoop { node: 1 })
        ));
        b.add_edge(0, 1).unwrap();
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn add_edge_if_absent_tolerates_duplicates() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_if_absent(0, 1).unwrap());
        assert!(!b.add_edge_if_absent(1, 0).unwrap());
        assert!(b.add_edge_if_absent(1, 2).unwrap());
        assert_eq!(b.edge_count(), 2);
        assert!(b.add_edge_if_absent(0, 5).is_err());
    }

    #[test]
    fn build_produces_sorted_rows() {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(4, 2), (2, 0), (2, 3), (1, 2)]).unwrap();
        let g = b.build();
        assert_eq!(g.neighbor_slice(2), &[0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
    }

    #[test]
    fn chaining_works() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert_eq!(b.edge_count(), 2);
        assert!(b.has_edge(1, 0));
    }

    #[test]
    fn default_is_empty() {
        let b = GraphBuilder::default();
        let g = b.build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
