//! Breadth-first traversal, connectivity, and distance utilities.
//!
//! The paper's complexity claims are stated in terms of the number of nodes
//! `n` and the network diameter `D` (e.g. the `Ω(n / log n + D)` lower bound
//! of Theorem 6); this module computes those structural quantities for the
//! experiment harness.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Distance value used by BFS; `None` encodes "unreachable".
pub type Distance = Option<usize>;

/// Single-source BFS distances from `source`.
///
/// Returns a vector of length `n` where entry `v` is `Some(dist(source, v))`
/// or `None` when `v` is unreachable.
///
/// # Panics
///
/// Panics if `source >= n`.
///
/// # Example
///
/// ```
/// use rwbc_graph::{Graph, traversal::bfs_distances};
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
/// let d = bfs_distances(&g, 0);
/// assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Distance> {
    assert!(source < g.node_count(), "source {source} out of range");
    let mut dist: Vec<Distance> = vec![None; g.node_count()];
    dist[source] = Some(0);
    let mut queue = VecDeque::with_capacity(g.node_count());
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS parent tree from `source`: entry `v` is the BFS parent of `v`
/// (`source` maps to itself; unreachable nodes map to `None`).
pub fn bfs_tree(g: &Graph, source: NodeId) -> Vec<Option<NodeId>> {
    assert!(source < g.node_count(), "source {source} out of range");
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    parent[source] = Some(source);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if parent[v].is_none() {
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Whether the graph is connected. The empty graph and single node count as
/// connected.
pub fn is_connected(g: &Graph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|d| d.is_some())
}

/// Connected components: returns `(component_id_per_node, component_count)`.
/// Component ids are dense, assigned in order of smallest contained node.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Eccentricity of `v`: the greatest BFS distance from `v` to any node.
///
/// Returns `None` when some node is unreachable from `v`.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<usize> {
    let d = bfs_distances(g, v);
    let mut ecc = 0;
    for dv in d {
        match dv {
            Some(x) => ecc = ecc.max(x),
            None => return None,
        }
    }
    Some(ecc)
}

/// Exact diameter `D` via all-pairs BFS in `O(nm)`.
///
/// Returns `None` for disconnected graphs and graphs with fewer than 2 nodes
/// have diameter `Some(0)`.
pub fn diameter(g: &Graph) -> Option<usize> {
    let n = g.node_count();
    if n == 0 {
        return Some(0);
    }
    let mut best = 0;
    for v in 0..n {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Fast diameter *lower bound* by the classic double-sweep heuristic:
/// BFS from `start`, then BFS from the farthest node found.
///
/// Exact on trees; a lower bound in general. Returns `None` on disconnected
/// graphs.
pub fn diameter_double_sweep(g: &Graph, start: NodeId) -> Option<usize> {
    let d1 = bfs_distances(g, start);
    let mut far = start;
    let mut best = 0;
    for (v, dv) in d1.iter().enumerate() {
        let x = (*dv)?;
        if x > best {
            best = x;
            far = v;
        }
    }
    let d2 = bfs_distances(g, far);
    let mut diam = 0;
    for dv in d2 {
        diam = diam.max(dv?);
    }
    Some(diam)
}

/// Shortest-path distance between two nodes, or `None` if disconnected.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Distance {
    bfs_distances(g, u)[v]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(distance(&g, 1, 4), Some(3));
    }

    #[test]
    fn bfs_tree_parents() {
        let g = path(4);
        let p = bfs_tree(&g, 1);
        assert_eq!(p[1], Some(1));
        assert_eq!(p[0], Some(1));
        assert_eq!(p[2], Some(1));
        assert_eq!(p[3], Some(2));
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&path(6)));
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!is_connected(&g));
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn components_of_empty_and_singletons() {
        let g = Graph::empty(3);
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp, vec![0, 1, 2]);
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&path(7)), Some(6));
        let cycle = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(diameter(&cycle), Some(3));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(diameter_double_sweep(&g, 0), None);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        // A star with one long arm: diameter is 1 + 3 = 4.
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)]).unwrap();
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(diameter_double_sweep(&g, 2), Some(4));
    }

    #[test]
    fn double_sweep_lower_bounds_diameter() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        let exact = diameter(&g).unwrap();
        let ds = diameter_double_sweep(&g, 0).unwrap();
        assert!(ds <= exact);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_panics_out_of_range() {
        bfs_distances(&path(3), 3);
    }
}
