//! Plain-text edge-list serialization.
//!
//! The format is deliberately minimal so that graphs can be exchanged with
//! other tools (networkx `read_edgelist`-compatible):
//!
//! ```text
//! # comment lines start with '#'
//! n 5          <- header: node count (required, first non-comment line)
//! 0 1
//! 1 2
//! ```

use crate::{Graph, GraphBuilder, GraphError};

/// Serializes a graph to the edge-list text format.
///
/// # Example
///
/// ```
/// use rwbc_graph::{Graph, io};
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
/// let text = io::to_edge_list(&g);
/// let h = io::from_edge_list(&text).unwrap();
/// assert_eq!(g, h);
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 8 * g.edge_count());
    out.push_str(&format!("n {}\n", g.node_count()));
    for e in g.edges() {
        out.push_str(&format!("{} {}\n", e.u, e.v));
    }
    out
}

/// Parses a graph from the edge-list text format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines or a missing header, and
/// propagates the builder's validation errors (out-of-range endpoints,
/// self-loops, duplicates) tagged with the offending line number.
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match builder.as_mut() {
            None => {
                let tag = parts.next();
                let count = parts.next();
                match (tag, count, parts.next()) {
                    (Some("n"), Some(c), None) => {
                        let n: usize = c.parse().map_err(|_| GraphError::Parse {
                            line: lineno,
                            reason: format!("invalid node count '{c}'"),
                        })?;
                        builder = Some(GraphBuilder::new(n));
                    }
                    _ => {
                        return Err(GraphError::Parse {
                            line: lineno,
                            reason: "expected header 'n <count>'".to_string(),
                        })
                    }
                }
            }
            Some(b) => {
                let u = parse_endpoint(parts.next(), lineno)?;
                let v = parse_endpoint(parts.next(), lineno)?;
                if parts.next().is_some() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        reason: "expected exactly two endpoints".to_string(),
                    });
                }
                b.add_edge(u, v).map_err(|e| GraphError::Parse {
                    line: lineno,
                    reason: e.to_string(),
                })?;
            }
        }
    }
    match builder {
        Some(b) => Ok(b.build()),
        None => Err(GraphError::Parse {
            line: 0,
            reason: "missing header 'n <count>'".to_string(),
        }),
    }
}

fn parse_endpoint(tok: Option<&str>, line: usize) -> Result<usize, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        reason: "expected two endpoints".to_string(),
    })?;
    tok.parse().map_err(|_| GraphError::Parse {
        line,
        reason: format!("invalid endpoint '{tok}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3)]).unwrap();
        let text = to_edge_list(&g);
        assert_eq!(from_edge_list(&text).unwrap(), g);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\n\nn 3\n# edge next\n0 1\n\n1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn missing_header_is_error() {
        let err = from_edge_list("0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = from_edge_list("# nothing\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 0, .. }));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_number() {
        let err = from_edge_list("n 3\n0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = from_edge_list("n 3\n0 1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = from_edge_list("n 3\n0 x\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn builder_errors_surface_as_parse_errors() {
        let err = from_edge_list("n 2\n0 1\n1 0\n").unwrap_err();
        match err {
            GraphError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("duplicate"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn empty_graph_round_trip() {
        let g = Graph::empty(7);
        assert_eq!(from_edge_list(&to_edge_list(&g)).unwrap(), g);
    }
}
