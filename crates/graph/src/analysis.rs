//! Structural summaries of graphs used when reporting experiments.

use serde::{Deserialize, Serialize};

use crate::traversal::{connected_components, diameter};
use crate::Graph;

/// Degree distribution statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m / n`.
    pub mean: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
}

/// Computes [`DegreeStats`] for a graph.
///
/// # Panics
///
/// Panics if the graph has no nodes.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.node_count();
    assert!(n > 0, "degree statistics of the empty graph are undefined");
    let degs: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mean = degs.iter().sum::<usize>() as f64 / n as f64;
    let variance = degs
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / n as f64;
    DegreeStats {
        min: *degs.iter().min().unwrap(),
        max: *degs.iter().max().unwrap(),
        mean,
        variance,
    }
}

/// Histogram of degrees: entry `d` is the number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// A one-struct structural report used in experiment logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of edges `m`.
    pub edges: usize,
    /// Number of connected components.
    pub components: usize,
    /// Exact diameter (`None` when disconnected).
    pub diameter: Option<usize>,
    /// Degree statistics.
    pub degrees: DegreeStats,
    /// Edge density.
    pub density: f64,
}

/// Builds a [`GraphSummary`]. Computes the exact diameter, so this is
/// `O(nm)`; intended for experiment-sized graphs.
///
/// # Panics
///
/// Panics if the graph has no nodes.
pub fn summarize(g: &Graph) -> GraphSummary {
    let (_, components) = connected_components(g);
    GraphSummary {
        nodes: g.node_count(),
        edges: g.edge_count(),
        components,
        diameter: diameter(g),
        degrees: degree_stats(g),
        density: g.density(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn stats_of_star() {
        // Star K_{1,4}: center degree 4, leaves degree 1.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert!(s.variance > 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 3);
    }

    #[test]
    fn summary_fields_consistent() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = summarize(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.components, 1);
        assert_eq!(s.diameter, Some(2));
        assert_eq!(s.degrees.min, 2);
        assert_eq!(s.degrees.max, 2);
        assert!((s.degrees.variance).abs() < 1e-12);
    }

    #[test]
    fn regular_graph_has_zero_variance() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(degree_stats(&g).variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn stats_of_empty_graph_panic() {
        degree_stats(&Graph::empty(0));
    }
}
