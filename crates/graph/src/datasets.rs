//! Built-in real-world datasets.
//!
//! The only data this reproduction needs are synthetic (the paper has no
//! evaluation section), but a real social network makes the examples and
//! the E8 measure-comparison experiments more convincing. Zachary's karate
//! club (Zachary 1977) is the canonical one: 34 members of a university
//! karate club, edges between members who interacted outside the club,
//! observed while the club split into two factions around the instructor
//! ("Mr. Hi", node 0) and the officer ("John A.", node 33).

use crate::{Graph, NodeId};

/// Faction labels for [`karate_club`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KarateLabels {
    /// The instructor, "Mr. Hi" (node 0).
    pub instructor: NodeId,
    /// The club officer, "John A." (node 33).
    pub officer: NodeId,
    /// Members who sided with the instructor after the split.
    pub mr_hi_faction: Vec<NodeId>,
    /// Members who sided with the officer.
    pub officer_faction: Vec<NodeId>,
}

/// Zachary's karate club: 34 nodes, 78 edges (the standard edge list).
///
/// # Example
///
/// ```
/// use rwbc_graph::datasets::karate_club;
/// let (g, labels) = karate_club();
/// assert_eq!(g.node_count(), 34);
/// assert_eq!(g.edge_count(), 78);
/// assert_eq!(g.degree(labels.instructor), 16);
/// assert_eq!(g.degree(labels.officer), 17);
/// ```
pub fn karate_club() -> (Graph, KarateLabels) {
    const EDGES: [(NodeId, NodeId); 78] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    let graph = Graph::from_edges(34, EDGES).expect("the canonical edge list is simple");
    let mr_hi: Vec<NodeId> = vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 17, 19, 21];
    let officer: Vec<NodeId> = (0..34).filter(|v| !mr_hi.contains(v)).collect();
    (
        graph,
        KarateLabels {
            instructor: 0,
            officer: 33,
            mr_hi_faction: mr_hi,
            officer_faction: officer,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn karate_shape_matches_the_literature() {
        let (g, l) = karate_club();
        assert_eq!(g.node_count(), 34);
        assert_eq!(g.edge_count(), 78);
        assert!(is_connected(&g));
        // Known structural facts about the karate club graph.
        assert_eq!(diameter(&g), Some(5));
        assert_eq!(g.degree(l.instructor), 16);
        assert_eq!(g.degree(l.officer), 17);
        assert_eq!(g.degree(32), 12);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 17);
    }

    #[test]
    fn factions_partition_the_club() {
        let (g, l) = karate_club();
        let mut all: Vec<_> = l
            .mr_hi_faction
            .iter()
            .chain(&l.officer_faction)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..g.node_count()).collect::<Vec<_>>());
        assert!(l.mr_hi_faction.contains(&l.instructor));
        assert!(l.officer_faction.contains(&l.officer));
        assert_eq!(l.mr_hi_faction.len(), 17);
        assert_eq!(l.officer_faction.len(), 17);
    }

    #[test]
    fn leaders_do_not_interact_directly() {
        // The famous detail: the instructor and officer have no edge.
        let (g, l) = karate_club();
        assert!(!g.has_edge(l.instructor, l.officer));
    }
}
