//! Undirected-graph substrate for the reproduction of *"Distributively
//! Computing Random Walk Betweenness Centrality in Linear Time"* (ICDCS 2017).
//!
//! The paper's algorithms operate on simple, connected, undirected graphs
//! `G = (V, E)` with `|V| = n` and `|E| = m` (Section III-A of the paper).
//! This crate provides:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) representation with
//!   `O(1)` degree queries and cache-friendly neighbor iteration, the shape
//!   every other crate in the workspace consumes;
//! * [`GraphBuilder`] — an incremental, validating builder;
//! * [`generators`] — the synthetic graph families used throughout the
//!   experiment suite (Erdős–Rényi, Barabási–Albert, random regular,
//!   lattices, classic families, the paper's Fig. 1 two-community graph, and
//!   more);
//! * [`traversal`] — BFS, connected components, diameter and eccentricities;
//! * [`analysis`] — degree statistics and structural summaries;
//! * [`io`] — a plain edge-list text format for persisting graphs.
//!
//! # Example
//!
//! ```
//! use rwbc_graph::{Graph, GraphBuilder};
//!
//! # fn main() -> Result<(), rwbc_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1)?;
//! b.add_edge(1, 2)?;
//! b.add_edge(2, 3)?;
//! let g: Graph = b.build();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 3);
//! assert_eq!(g.degree(1), 2);
//! assert!(g.neighbors(1).eq([0, 2]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;

pub mod analysis;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod traversal;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeRef, Edges, Graph, Neighbors, NodeId};
