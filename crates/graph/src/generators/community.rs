//! Community-structured graphs, including the paper's Fig. 1 example.

use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Node roles in the [`fig1_graph`] construction.
///
/// The paper's Fig. 1 argues that bridge nodes `A` and `B` have high
/// *shortest-path* betweenness, while the bypass node `C` has essentially
/// none — yet `C` should matter for information flow, which is exactly what
/// *random-walk* betweenness captures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig1Labels {
    /// Bridge node attached to the left group.
    pub a: NodeId,
    /// Bridge node attached to the right group.
    pub b: NodeId,
    /// Bypass node adjacent to both `A` and `B` (on no shortest path).
    pub c: NodeId,
    /// Members of the left group.
    pub left: Vec<NodeId>,
    /// Members of the right group.
    pub right: Vec<NodeId>,
}

/// The two-community bridge graph of the paper's Fig. 1.
///
/// Two cliques of `group_size` nodes each; node `A` is adjacent to every
/// left-group node, `B` to every right-group node, the edge `A—B` carries
/// all shortest inter-group paths, and `C` is adjacent to `A` and `B` only.
/// Every inter-group shortest path goes `... — A — B — ...` (length through
/// `C` is one longer), so `C` lies on **no** shortest path, but random walks
/// detour through it.
///
/// Node layout: `0..g` left group, `g..2g` right group, then `A = 2g`,
/// `B = 2g + 1`, `C = 2g + 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `group_size < 2`.
///
/// # Example
///
/// ```
/// use rwbc_graph::generators::fig1_graph;
/// let (g, labels) = fig1_graph(4).unwrap();
/// assert!(g.has_edge(labels.a, labels.b));
/// assert!(g.has_edge(labels.c, labels.a));
/// assert_eq!(g.degree(labels.c), 2);
/// ```
pub fn fig1_graph(group_size: usize) -> Result<(Graph, Fig1Labels), GraphError> {
    if group_size < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "fig1_graph requires groups of at least 2 nodes".to_string(),
        });
    }
    let g = group_size;
    let (a, b, c) = (2 * g, 2 * g + 1, 2 * g + 2);
    let n = 2 * g + 3;
    let mut builder = GraphBuilder::new(n);
    for u in 0..g {
        for v in (u + 1)..g {
            builder.add_edge(u, v)?;
        }
        builder.add_edge(u, a)?;
    }
    for u in g..2 * g {
        for v in (u + 1)..2 * g {
            builder.add_edge(u, v)?;
        }
        builder.add_edge(u, b)?;
    }
    builder.add_edge(a, b)?;
    builder.add_edge(a, c)?;
    builder.add_edge(b, c)?;
    Ok((
        builder.build(),
        Fig1Labels {
            a,
            b,
            c,
            left: (0..g).collect(),
            right: (g..2 * g).collect(),
        },
    ))
}

/// Planted-partition random graph: `k` communities of `size` nodes each;
/// intra-community edges appear with probability `p_in`, inter-community
/// edges with `p_out`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for probabilities outside
/// `[0, 1]`, `k == 0`, or `size == 0`.
pub fn planted_partition<R: Rng + ?Sized>(
    k: usize,
    size: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k == 0 || size == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "planted_partition requires k >= 1 and size >= 1".to_string(),
        });
    }
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter {
                reason: format!("{name} = {p} must lie in [0, 1]"),
            });
        }
    }
    let n = k * size;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if u / size == v / size { p_in } else { p_out };
            if rng.gen_bool(p) {
                b.add_edge(u, v)?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_distances, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_structure() {
        let (g, l) = fig1_graph(3).unwrap();
        assert_eq!(g.node_count(), 9);
        assert!(is_connected(&g));
        // A touches all left nodes and B; degree = group + 2 (B and C).
        assert_eq!(g.degree(l.a), 3 + 2);
        assert_eq!(g.degree(l.b), 3 + 2);
        assert_eq!(g.degree(l.c), 2);
        assert!(g.has_edge(l.a, l.b));
        // No direct edges between groups.
        for &u in &l.left {
            for &v in &l.right {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn fig1_c_is_on_no_shortest_inter_group_path() {
        let (g, l) = fig1_graph(4).unwrap();
        // dist(left, right) via A-B is 3; any path through C has length >= 4.
        let d_from_left = bfs_distances(&g, l.left[0]);
        assert_eq!(d_from_left[l.right[0]], Some(3));
        // C is at distance 2 from left[0] (via A) and 2 from right[0] (via
        // B), so a path through C has length >= 4 > 3: C is on no shortest
        // inter-group path.
        assert_eq!(d_from_left[l.c], Some(2));
        let d_from_right = bfs_distances(&g, l.right[0]);
        assert_eq!(d_from_right[l.c], Some(2));
    }

    #[test]
    fn fig1_rejects_tiny_groups() {
        assert!(fig1_graph(1).is_err());
    }

    #[test]
    fn planted_partition_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = planted_partition(3, 10, 0.9, 0.05, &mut rng).unwrap();
        assert_eq!(g.node_count(), 30);
        // Count intra vs inter community edges: intra should dominate.
        let mut intra = 0;
        let mut inter = 0;
        for e in g.edges() {
            if e.u / 10 == e.v / 10 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn planted_partition_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(planted_partition(0, 5, 0.5, 0.5, &mut rng).is_err());
        assert!(planted_partition(2, 0, 0.5, 0.5, &mut rng).is_err());
        assert!(planted_partition(2, 5, 1.5, 0.5, &mut rng).is_err());
        assert!(planted_partition(2, 5, 0.5, -0.1, &mut rng).is_err());
    }

    #[test]
    fn planted_partition_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = planted_partition(2, 4, 1.0, 0.0, &mut rng).unwrap();
        // Two disjoint K_4s.
        assert_eq!(g.edge_count(), 2 * 6);
        assert!(!is_connected(&g));
    }
}
