//! Randomized graph families. All take an explicit RNG for reproducibility.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::traversal::is_connected;
use crate::{Graph, GraphBuilder, GraphError};

/// Erdős–Rényi `G(n, p)`: each of the `C(n, 2)` edges present independently
/// with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]` or
/// `n == 0`.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rwbc_graph::generators::gnp;
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = gnp(50, 0.2, &mut rng).unwrap();
/// assert_eq!(g.node_count(), 50);
/// ```
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    validate_n(n)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability p = {p} must lie in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v)?;
            }
        }
    }
    Ok(b.build())
}

/// Uniform random graph with exactly `m` edges (`G(n, m)`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m > C(n, 2)` or `n == 0`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GraphError> {
    validate_n(n)?;
    let max = n * (n - 1) / 2;
    if m > max {
        return Err(GraphError::InvalidParameter {
            reason: format!("m = {m} exceeds the maximum {max} for n = {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    // Dense regime: sample by shuffling all pairs; sparse: rejection sample.
    if m * 3 > max {
        let mut pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        pairs.shuffle(rng);
        for &(u, v) in pairs.iter().take(m) {
            b.add_edge(u, v)?;
        }
    } else {
        while b.edge_count() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge_if_absent(u, v)?;
            }
        }
    }
    Ok(b.build())
}

/// `G(n, p)` conditioned on connectivity: resamples until connected.
///
/// The paper's algorithms assume a connected network (a random walk must be
/// able to reach the absorbing target from every source). Use a `p` above
/// the `ln n / n` connectivity threshold or this may loop for many attempts.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] on invalid `n`/`p`, or when no
/// connected sample is found within `max_attempts`.
pub fn connected_gnp<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    for _ in 0..max_attempts {
        let g = gnp(n, p, rng)?;
        if is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameter {
        reason: format!(
            "no connected G({n}, {p}) sample within {max_attempts} attempts; increase p"
        ),
    })
}

/// Barabási–Albert preferential attachment: starts from a star on `m0 + 1`
/// nodes, then each new node attaches to `m_attach` distinct existing nodes
/// chosen proportionally to degree.
///
/// Always connected.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `m_attach == 0` or
/// `n <= m_attach`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m_attach: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m_attach == 0 || n <= m_attach {
        return Err(GraphError::InvalidParameter {
            reason: format!("barabasi_albert requires 0 < m_attach < n (got m={m_attach}, n={n})"),
        });
    }
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoints urn: sampling an entry uniformly is degree-biased.
    let mut urn: Vec<usize> = Vec::with_capacity(4 * n * m_attach.max(1));
    // Seed: star on nodes 0..=m_attach keeps the urn non-empty and connected.
    for v in 1..=m_attach {
        b.add_edge(0, v)?;
        urn.extend([0, v]);
    }
    for new in (m_attach + 1)..n {
        let mut chosen = Vec::with_capacity(m_attach);
        while chosen.len() < m_attach {
            let pick = urn[rng.gen_range(0..urn.len())];
            if pick != new && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            b.add_edge(new, t)?;
            urn.extend([new, t]);
        }
    }
    Ok(b.build())
}

/// Random `d`-regular graph via the configuration (pairing) model with
/// restarts on collisions.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n * d` is odd, `d >= n`,
/// or no simple pairing is found within `max_attempts`.
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    validate_n(n)?;
    if d >= n || !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("no {d}-regular simple graph on {n} nodes (need d < n and n*d even)"),
        });
    }
    'attempt: for _ in 0..max_attempts {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut b = GraphBuilder::new(n);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            if !b.add_edge_if_absent(u, v)? {
                continue 'attempt;
            }
        }
        return Ok(b.build());
    }
    Err(GraphError::InvalidParameter {
        reason: format!("pairing model failed to produce a simple {d}-regular graph on {n} nodes"),
    })
}

/// Uniformly random labeled tree on `n` nodes, decoded from a random Prüfer
/// sequence. Always connected with `n - 1` edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Graph, GraphError> {
    validate_n(n)?;
    if n == 1 {
        return Ok(Graph::empty(1));
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Min-heap over current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &x in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a tree always has a leaf");
        b.add_edge(leaf, x)?;
        degree[x] -= 1;
        if degree[x] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(u) = leaves.pop().expect("two nodes remain");
    let std::cmp::Reverse(v) = leaves.pop().expect("two nodes remain");
    b.add_edge(u, v)?;
    Ok(b.build())
}

/// Watts–Strogatz small world: ring lattice where each node connects to its
/// `k/2` nearest neighbors on each side, then each edge is rewired with
/// probability `beta` (keeping the graph simple).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `k` is even,
/// `2 <= k < n`, and `beta` is in `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k < 2 || !k.is_multiple_of(2) || k >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("watts_strogatz requires even k with 2 <= k < n (got k={k}, n={n})"),
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter {
            reason: format!("rewiring probability beta = {beta} must lie in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-neighbor (retry a few times; fall
                // back to the lattice edge if the node is saturated).
                let mut rewired = false;
                for _ in 0..4 * n {
                    let w = rng.gen_range(0..n);
                    if w != u && !b.has_edge(u, w) {
                        b.add_edge(u, w)?;
                        rewired = true;
                        break;
                    }
                }
                if !rewired && !b.has_edge(u, v) {
                    b.add_edge(u, v)?;
                }
            } else if !b.has_edge(u, v) {
                b.add_edge(u, v)?;
            }
        }
    }
    Ok(b.build())
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs within Euclidean distance `radius` — the canonical model
/// of wireless/ad-hoc networks in the distributed-computing literature.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n == 0` or `radius` is
/// not in `(0, sqrt(2)]`.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use rwbc_graph::generators::random_geometric;
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = random_geometric(50, 0.3, &mut rng).unwrap();
/// assert_eq!(g.node_count(), 50);
/// ```
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    validate_n(n)?;
    if !(radius > 0.0 && radius * radius <= 2.0 + 1e-12) {
        return Err(GraphError::InvalidParameter {
            reason: format!("radius = {radius} must lie in (0, sqrt(2)]"),
        });
    }
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u, v)?;
            }
        }
    }
    Ok(b.build())
}

fn validate_n(n: usize) -> Result<(), GraphError> {
    if n == 0 {
        Err(GraphError::InvalidParameter {
            reason: "graph must have at least one node".to_string(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng(1);
        let g0 = gnp(10, 0.0, &mut r).unwrap();
        assert_eq!(g0.edge_count(), 0);
        let g1 = gnp(10, 1.0, &mut r).unwrap();
        assert_eq!(g1.edge_count(), 45);
        assert!(gnp(10, 1.5, &mut r).is_err());
        assert!(gnp(0, 0.5, &mut r).is_err());
    }

    #[test]
    fn gnp_is_deterministic_under_seed() {
        let a = gnp(30, 0.3, &mut rng(42)).unwrap();
        let b = gnp(30, 0.3, &mut rng(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut r = rng(2);
        for &m in &[0usize, 5, 20, 45] {
            let g = gnm(10, m, &mut r).unwrap();
            assert_eq!(g.edge_count(), m);
        }
        assert!(gnm(10, 46, &mut r).is_err());
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut r = rng(3);
        let g = connected_gnp(40, 0.15, 100, &mut r).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn ba_edge_count_and_connectivity() {
        let mut r = rng(4);
        let g = barabasi_albert(50, 3, &mut r).unwrap();
        assert_eq!(g.node_count(), 50);
        // Seed star has 3 edges; each of the 46 later nodes adds 3.
        assert_eq!(g.edge_count(), 3 + 46 * 3);
        assert!(is_connected(&g));
        assert!(barabasi_albert(3, 3, &mut r).is_err());
        assert!(barabasi_albert(5, 0, &mut r).is_err());
    }

    #[test]
    fn ba_hubs_emerge() {
        let mut r = rng(5);
        let g = barabasi_albert(200, 2, &mut r).unwrap();
        // Preferential attachment should create a hub noticeably above the
        // mean degree (~4).
        assert!(g.max_degree() >= 10, "max degree {}", g.max_degree());
    }

    #[test]
    fn regular_graph_is_regular() {
        let mut r = rng(6);
        let g = random_regular(20, 4, 200, &mut r).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(random_regular(5, 3, 10, &mut r).is_err()); // n*d odd
        assert!(random_regular(4, 4, 10, &mut r).is_err()); // d >= n
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut r = rng(7);
        for n in [1usize, 2, 3, 10, 60] {
            let g = random_tree(n, &mut r).unwrap();
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn random_geometric_shape() {
        let mut r = rng(9);
        // Radius sqrt(2) connects everything.
        let g = random_geometric(12, 2.0f64.sqrt(), &mut r).unwrap();
        assert_eq!(g.edge_count(), 12 * 11 / 2);
        // Tiny radius connects (almost) nothing.
        let g = random_geometric(12, 1e-6, &mut r).unwrap();
        assert!(g.edge_count() <= 1);
        assert!(random_geometric(0, 0.5, &mut r).is_err());
        assert!(random_geometric(5, 0.0, &mut r).is_err());
        assert!(random_geometric(5, 3.0, &mut r).is_err());
    }

    #[test]
    fn random_geometric_is_deterministic() {
        let a = random_geometric(30, 0.3, &mut rng(4)).unwrap();
        let b = random_geometric(30, 0.3, &mut rng(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn watts_strogatz_degrees() {
        let mut r = rng(8);
        let g = watts_strogatz(30, 4, 0.0, &mut r).unwrap();
        // beta = 0: pure ring lattice, all degrees k.
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        let g = watts_strogatz(30, 4, 0.5, &mut r).unwrap();
        assert_eq!(g.node_count(), 30);
        assert!(g.edge_count() <= 60);
        assert!(watts_strogatz(10, 3, 0.1, &mut r).is_err());
        assert!(watts_strogatz(10, 4, 1.5, &mut r).is_err());
    }
}
