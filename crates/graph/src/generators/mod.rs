//! Synthetic graph generators.
//!
//! The paper evaluates nothing empirically, so the reproduction's experiment
//! suite (see `EXPERIMENTS.md` at the workspace root) runs on standard
//! synthetic families plus the two graphs the paper itself draws:
//!
//! * [`fig1_graph`] — the motivating example of the paper's Fig. 1 (two
//!   dense groups bridged by `A—B`, with a bypass node `C`);
//! * the lower-bound gadget of Figs. 2–5 lives in the `rwbc` crate
//!   (`rwbc::lower_bound`), since it needs the exact solver to verify
//!   Lemma 4.
//!
//! Deterministic families are plain functions; randomized families take an
//! `&mut impl Rng` so experiments stay reproducible under a fixed seed.

mod classic;
mod community;
mod lattice;
mod random;

pub use classic::{barbell, binary_tree, complete, complete_bipartite, cycle, path, star, wheel};
pub use community::{fig1_graph, planted_partition, Fig1Labels};
pub use lattice::{grid_2d, hypercube, torus_2d};
pub use random::{
    barabasi_albert, connected_gnp, gnm, gnp, random_geometric, random_regular, random_tree,
    watts_strogatz,
};
