//! Deterministic classic graph families.

use crate::{Graph, GraphBuilder, GraphError};

/// Path graph `P_n`: nodes `0..n` with edges `(i, i+1)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n == 0`.
///
/// # Example
///
/// ```
/// use rwbc_graph::generators::path;
/// let g = path(4).unwrap();
/// assert_eq!(g.edge_count(), 3);
/// ```
pub fn path(n: usize) -> Result<Graph, GraphError> {
    require(n >= 1, "path requires n >= 1")?;
    Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
}

/// Cycle graph `C_n` (`n >= 3`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    require(n >= 3, "cycle requires n >= 3")?;
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// Complete graph `K_n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    require(n >= 1, "complete graph requires n >= 1")?;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v)?;
        }
    }
    Ok(b.build())
}

/// Star `K_{1,k}`: node 0 is the hub, nodes `1..=k` are leaves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `k == 0`.
pub fn star(k: usize) -> Result<Graph, GraphError> {
    require(k >= 1, "star requires at least one leaf")?;
    Graph::from_edges(k + 1, (1..=k).map(|v| (0, v)))
}

/// Wheel `W_n`: a cycle on nodes `1..=n` plus hub node 0 adjacent to all.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n < 3`.
pub fn wheel(n: usize) -> Result<Graph, GraphError> {
    require(n >= 3, "wheel requires a rim of at least 3 nodes")?;
    let mut b = GraphBuilder::new(n + 1);
    for i in 1..=n {
        b.add_edge(0, i)?;
        let next = if i == n { 1 } else { i + 1 };
        b.add_edge(i, next)?;
    }
    Ok(b.build())
}

/// Complete bipartite graph `K_{a,b}`: parts `0..a` and `a..a+b`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when either part is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph, GraphError> {
    require(a >= 1 && b >= 1, "both parts must be non-empty")?;
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v)?;
        }
    }
    Ok(builder.build())
}

/// Complete binary tree with `n` nodes in heap order: node `i` has children
/// `2i + 1` and `2i + 2` when they exist.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `n == 0`.
pub fn binary_tree(n: usize) -> Result<Graph, GraphError> {
    require(n >= 1, "binary tree requires n >= 1")?;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                b.add_edge(i, c)?;
            }
        }
    }
    Ok(b.build())
}

/// Barbell graph: two cliques `K_k` joined by a path of `bridge` extra nodes
/// (`bridge == 0` joins the cliques by a single edge).
///
/// Layout: left clique `0..k`, bridge `k..k+bridge`, right clique at the end.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `k < 2`.
pub fn barbell(k: usize, bridge: usize) -> Result<Graph, GraphError> {
    require(k >= 2, "barbell cliques need k >= 2")?;
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v)?;
        }
    }
    let right = k + bridge;
    for u in right..n {
        for v in (u + 1)..n {
            b.add_edge(u, v)?;
        }
    }
    // Chain: last node of left clique -> bridge nodes -> first of right clique.
    let mut prev = k - 1;
    for w in k..k + bridge {
        b.add_edge(prev, w)?;
        prev = w;
    }
    b.add_edge(prev, right)?;
    Ok(b.build())
}

fn require(cond: bool, reason: &str) -> Result<(), GraphError> {
    if cond {
        Ok(())
    } else {
        Err(GraphError::InvalidParameter {
            reason: reason.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(diameter(&g), Some(4));
        assert!(path(0).is_err());
        assert_eq!(path(1).unwrap().edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete(6).unwrap();
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn star_shape() {
        let g = star(7).unwrap();
        assert_eq!(g.degree(0), 7);
        assert!((1..=7).all(|v| g.degree(v) == 1));
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.degree(0), 5);
        assert!((1..=5).all(|v| g.degree(v) == 3));
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(2), 2);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2).unwrap();
        assert_eq!(g.node_count(), 10);
        // 2 * C(4,2) clique edges + 3 chain edges.
        assert_eq!(g.edge_count(), 15);
        assert!(is_connected(&g));
        assert!(g.has_edge(3, 4));
        assert!(g.has_edge(4, 5));
        assert!(g.has_edge(5, 6));
    }

    #[test]
    fn barbell_zero_bridge() {
        let g = barbell(3, 0).unwrap();
        assert_eq!(g.node_count(), 6);
        assert!(g.has_edge(2, 3));
        assert!(is_connected(&g));
    }
}
