//! Lattice-like deterministic families: grids, tori, hypercubes.
//!
//! Lattices have large diameter relative to `n`, which stresses the
//! walk-truncation experiments (E2): the spectral gap of the transition
//! matrix is small, so walks take close to the paper's `l = O(n)` bound to
//! be absorbed.

use crate::{Graph, GraphBuilder, GraphError};

/// 2-D grid with `rows x cols` nodes; node `(r, c)` has index `r * cols + c`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when either dimension is 0.
///
/// # Example
///
/// ```
/// use rwbc_graph::generators::grid_2d;
/// let g = grid_2d(3, 4).unwrap();
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
/// ```
pub fn grid_2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    require(rows >= 1 && cols >= 1, "grid dimensions must be positive")?;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1)?;
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols)?;
            }
        }
    }
    Ok(b.build())
}

/// 2-D torus (grid with wraparound). Requires both dimensions `>= 3` so the
/// wrap edges do not duplicate grid edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when either dimension is `< 3`.
pub fn torus_2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    require(rows >= 3 && cols >= 3, "torus dimensions must be >= 3")?;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            b.add_edge_if_absent(v, right)?;
            b.add_edge_if_absent(v, down)?;
        }
    }
    Ok(b.build())
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes; nodes adjacent iff their
/// indices differ in exactly one bit.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] when `d == 0` or `d > 20`
/// (over a million nodes — guard against accidental blowup).
pub fn hypercube(d: u32) -> Result<Graph, GraphError> {
    require(
        (1..=20).contains(&d),
        "hypercube dimension must be in 1..=20",
    )?;
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u)?;
            }
        }
    }
    Ok(b.build())
}

fn require(cond: bool, reason: &str) -> Result<(), GraphError> {
    if cond {
        Ok(())
    } else {
        Err(GraphError::InvalidParameter {
            reason: reason.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn grid_shape() {
        let g = grid_2d(3, 3).unwrap();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(4), 4); // center
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(diameter(&g), Some(4));
        assert!(grid_2d(0, 3).is_err());
    }

    #[test]
    fn grid_1xn_is_path() {
        let g = grid_2d(1, 5).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus_2d(4, 5).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 2 * 20);
        assert!(is_connected(&g));
        assert!(torus_2d(2, 5).is_err());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 32);
        assert_eq!(diameter(&g), Some(4));
        assert!(hypercube(0).is_err());
        assert!(hypercube(21).is_err());
    }

    #[test]
    fn hypercube_adjacency_is_single_bit() {
        let g = hypercube(3).unwrap();
        for e in g.edges() {
            assert_eq!((e.u ^ e.v).count_ones(), 1);
        }
    }
}
