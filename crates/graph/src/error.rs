use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing graphs.
///
/// Every fallible operation in this crate returns `Result<_, GraphError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint referenced a node id `id` that is outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        id: usize,
        /// The number of nodes in the graph being built.
        n: usize,
    },
    /// A self-loop `(u, u)` was supplied; the paper's model uses simple graphs.
    SelfLoop {
        /// The node at both endpoints.
        node: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// Smaller endpoint.
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
    /// A generator was asked for a graph that cannot exist
    /// (e.g. a 3-regular graph on 3 nodes, or `p` outside `[0, 1]`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An edge-list document could not be parsed.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of the problem on that line.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { id, n } => {
                write!(f, "node id {id} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} not allowed in a simple graph")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate undirected edge ({u}, {v})")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { id: 9, n: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert_eq!(s, s.trim());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn self_loop_display() {
        assert_eq!(
            GraphError::SelfLoop { node: 3 }.to_string(),
            "self-loop at node 3 not allowed in a simple graph"
        );
    }
}
