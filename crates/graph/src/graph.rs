use serde::{Deserialize, Serialize};

use crate::{GraphBuilder, GraphError};

/// Identifier of a node: plain `usize` index in `0..n`.
///
/// The paper assumes each node has a unique `O(log n)`-bit identifier
/// (Section III-A); a dense index is the canonical such labeling and is what
/// the CONGEST simulator's bit-accounting layer charges for.
pub type NodeId = usize;

/// An immutable simple undirected graph in compressed-sparse-row form.
///
/// Construction goes through [`GraphBuilder`] (or the convenience
/// constructors such as [`Graph::from_edges`]), which validate that the graph
/// is simple. Neighbor lists are sorted ascending, enabling `O(log d)`
/// adjacency tests via [`Graph::has_edge`].
///
/// # Example
///
/// ```
/// use rwbc_graph::Graph;
///
/// # fn main() -> Result<(), rwbc_graph::GraphError> {
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// assert_eq!(g.degree_sum(), 2 * g.edge_count());
/// assert!(g.has_edge(1, 0));
/// assert!(!g.has_edge(0, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// CSR row offsets; length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists; length `2m`.
    adjacency: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an iterator of undirected edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if any edge references a node `>= n`, is a
    /// self-loop, or repeats an earlier edge.
    ///
    /// # Example
    ///
    /// ```
    /// use rwbc_graph::Graph;
    /// let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
    /// assert_eq!(triangle.degree(0), 2);
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Internal constructor used by [`GraphBuilder`]; inputs must already be
    /// a valid CSR of a simple graph with sorted rows.
    pub(crate) fn from_csr_unchecked(offsets: Vec<usize>, adjacency: Vec<NodeId>) -> Graph {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), adjacency.len());
        Graph { offsets, adjacency }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Graph {
        Graph {
            offsets: vec![0; n + 1],
            adjacency: Vec::new(),
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Degree `d(v)` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sum of all degrees (equals `2m`; the handshake lemma).
    #[inline]
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Maximum degree over all nodes, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all nodes, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator over the neighbors of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        Neighbors {
            inner: self.neighbor_slice(v).iter(),
        }
    }

    /// The `i`-th neighbor of `v` (0-based, ascending order).
    ///
    /// Used by random-walk code to pick a uniform neighbor by index without
    /// materializing the list.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` or `i >= degree(v)`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        self.neighbor_slice(v)[i]
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log d(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        self.neighbor_slice(u).binary_search(&v).is_ok()
    }

    /// Iterator over all nodes `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`,
    /// in lexicographic order.
    ///
    /// ```
    /// use rwbc_graph::Graph;
    /// let g = Graph::from_edges(3, [(2, 0), (0, 1)]).unwrap();
    /// let edges: Vec<_> = g.edges().map(|e| (e.u, e.v)).collect();
    /// assert_eq!(edges, vec![(0, 1), (0, 2)]);
    /// ```
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            node: 0,
            idx: 0,
        }
    }

    /// Collects all edges as `(u, v)` pairs with `u < v`.
    pub fn edge_vec(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().map(|e| (e.u, e.v)).collect()
    }

    /// Returns the graph with node labels permuted: new node `perm[v]`
    /// takes the role of old node `v`.
    ///
    /// Useful for testing label-invariance of centrality measures.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[NodeId]) -> Graph {
        let n = self.node_count();
        assert_eq!(perm.len(), n, "permutation length must equal node count");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "perm must be a permutation of 0..n");
            seen[p] = true;
        }
        let edges = self
            .edges()
            .map(|e| (perm[e.u], perm[e.v]))
            .collect::<Vec<_>>();
        Graph::from_edges(n, edges).expect("relabeling a simple graph stays simple")
    }

    /// Returns a copy of the graph with node `t` and all incident edges
    /// removed; remaining nodes are re-indexed densely, preserving order.
    ///
    /// This realizes the paper's `A_t` / `D_t` / `M_t` "remove the `t`-th row
    /// and column" operation (Section IV) at the graph level. The second
    /// return value maps old ids to new ids (`None` for `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t >= n`.
    pub fn remove_node(&self, t: NodeId) -> (Graph, Vec<Option<NodeId>>) {
        let n = self.node_count();
        assert!(t < n, "node {t} out of range");
        let mut map: Vec<Option<NodeId>> = Vec::with_capacity(n);
        let mut next = 0;
        for v in 0..n {
            if v == t {
                map.push(None);
            } else {
                map.push(Some(next));
                next += 1;
            }
        }
        let edges = self
            .edges()
            .filter(|e| e.u != t && e.v != t)
            .map(|e| (map[e.u].unwrap(), map[e.v].unwrap()))
            .collect::<Vec<_>>();
        let g = Graph::from_edges(n - 1, edges).expect("node removal keeps the graph simple");
        (g, map)
    }

    /// Disjoint union of two graphs: nodes of `other` are shifted by
    /// `self.node_count()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.node_count();
        let n = shift + other.node_count();
        let edges = self
            .edges()
            .map(|e| (e.u, e.v))
            .chain(other.edges().map(|e| (e.u + shift, e.v + shift)))
            .collect::<Vec<_>>();
        Graph::from_edges(n, edges).expect("disjoint union of simple graphs is simple")
    }

    /// Density `2m / (n (n - 1))`, or 0 when `n < 2`.
    pub fn density(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
    }
}

/// Iterator over the neighbors of a node; see [`Graph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, NodeId>,
}

impl<'a> Iterator for Neighbors<'a> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// A single undirected edge yielded by [`Graph::edges`], with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
}

/// Iterator over all undirected edges; see [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    node: NodeId,
    idx: usize,
}

impl<'a> Iterator for Edges<'a> {
    type Item = EdgeRef;

    fn next(&mut self) -> Option<EdgeRef> {
        let n = self.graph.node_count();
        while self.node < n {
            let row = self.graph.neighbor_slice(self.node);
            while self.idx < row.len() {
                let v = row[self.idx];
                self.idx += 1;
                if v > self.node {
                    return Some(EdgeRef { u: self.node, v });
                }
            }
            self.node += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree_sum(), 6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(4, [(2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbor_slice(2), &[0, 1, 3]);
        assert_eq!(g.neighbor(2, 1), 1);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_lexicographic_once() {
        let g = Graph::from_edges(4, [(3, 1), (0, 2), (1, 0)]).unwrap();
        let es = g.edge_vec();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert!(matches!(
            Graph::from_edges(3, [(0, 3)]),
            Err(GraphError::NodeOutOfRange { id: 3, n: 3 })
        ));
        assert!(matches!(
            Graph::from_edges(3, [(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        ));
        assert!(matches!(
            Graph::from_edges(3, [(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = path4();
        let perm = vec![3, 2, 1, 0];
        let h = g.relabel(&perm);
        assert_eq!(h.edge_count(), 3);
        assert!(h.has_edge(3, 2));
        assert!(h.has_edge(2, 1));
        assert!(h.has_edge(1, 0));
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn relabel_rejects_non_permutation() {
        path4().relabel(&[0, 0, 1, 2]);
    }

    #[test]
    fn remove_node_reindexes() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let (h, map) = g.remove_node(1);
        assert_eq!(h.node_count(), 3);
        // Old edges (2,3) and (0,3) survive as (1,2) and (0,2).
        assert_eq!(h.edge_vec(), vec![(0, 2), (1, 2)]);
        assert_eq!(map, vec![Some(0), None, Some(1), Some(2)]);
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = Graph::from_edges(2, [(0, 1)]).unwrap();
        let b = Graph::from_edges(3, [(0, 2)]).unwrap();
        let u = a.disjoint_union(&b);
        assert_eq!(u.node_count(), 5);
        assert_eq!(u.edge_vec(), vec![(0, 1), (2, 4)]);
    }

    #[test]
    fn density_of_complete_triangle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_preserves_equality() {
        let g = path4();
        let json = serde_json_like(&g);
        assert!(json.contains("offsets"));
    }

    // Minimal serde smoke test without pulling serde_json: serialize to the
    // debug of the Serialize impl via a token check is overkill; instead just
    // ensure the type implements the traits (compile-time check).
    fn serde_json_like<T: serde::Serialize>(_t: &T) -> String {
        "offsets".to_string()
    }
}
