//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rwbc_graph::generators::{self, gnp};
use rwbc_graph::traversal::{bfs_distances, connected_components, diameter, is_connected};
use rwbc_graph::{io, Graph, GraphBuilder};

/// Strategy: a small random simple graph described by (n, edge set).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    let _ = b.add_edge_if_absent(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
    }

    #[test]
    fn edges_iter_matches_has_edge(g in arb_graph()) {
        let mut count = 0;
        for e in g.edges() {
            prop_assert!(e.u < e.v);
            prop_assert!(g.has_edge(e.u, e.v));
            prop_assert!(g.has_edge(e.v, e.u));
            count += 1;
        }
        prop_assert_eq!(count, g.edge_count());
    }

    #[test]
    fn neighbor_lists_sorted_and_loop_free(g in arb_graph()) {
        for v in g.nodes() {
            let row = g.neighbor_slice(v);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!row.contains(&v));
        }
    }

    #[test]
    fn edge_list_round_trip(g in arb_graph()) {
        let text = io::to_edge_list(&g);
        let h = io::from_edge_list(&text).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn relabel_by_reverse_preserves_edge_count(g in arb_graph()) {
        let n = g.node_count();
        let perm: Vec<usize> = (0..n).rev().collect();
        let h = g.relabel(&perm);
        prop_assert_eq!(g.edge_count(), h.edge_count());
        for e in g.edges() {
            prop_assert!(h.has_edge(perm[e.u], perm[e.v]));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(g in arb_graph()) {
        if g.node_count() == 0 { return Ok(()); }
        let d = bfs_distances(&g, 0);
        for e in g.edges() {
            if let (Some(du), Some(dv)) = (d[e.u], d[e.v]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // Endpoints of one edge are in the same component.
                prop_assert!(d[e.u].is_none() && d[e.v].is_none());
            }
        }
    }

    #[test]
    fn component_count_consistent_with_connectivity(g in arb_graph()) {
        let (_, k) = connected_components(&g);
        prop_assert_eq!(k == 1, is_connected(&g));
    }

    #[test]
    fn remove_node_drops_exactly_incident_edges(g in arb_graph()) {
        if g.node_count() < 2 { return Ok(()); }
        let t = g.node_count() / 2;
        let (h, map) = g.remove_node(t);
        prop_assert_eq!(h.node_count(), g.node_count() - 1);
        prop_assert_eq!(h.edge_count(), g.edge_count() - g.degree(t));
        prop_assert!(map[t].is_none());
    }

    #[test]
    fn gnp_seeded_determinism(n in 2usize..30, denom in 1u32..10, seed in 0u64..1000) {
        let p = f64::from(denom) / 10.0;
        let a = gnp(n, p, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = gnp(n, p, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn random_tree_always_tree(n in 1usize..40, seed in 0u64..500) {
        let g = generators::random_tree(n, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn grid_diameter_is_manhattan(r in 1usize..6, c in 1usize..6) {
        let g = generators::grid_2d(r, c).unwrap();
        prop_assert_eq!(diameter(&g), Some(r - 1 + c - 1));
    }
}
