//! Free functions on `&[f64]` vectors.
//!
//! Kept as plain functions (rather than a wrapper type) because callers in
//! this workspace overwhelmingly own `Vec<f64>` buffers they want to reuse.

/// Dot product. Panics if lengths differ.
///
/// # Panics
///
/// Panics when `a.len() != b.len()`.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics when `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute entry (∞-norm); 0 for the empty vector.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// Sum of absolute entries (1-norm).
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Scales every entry in place.
pub fn scale(alpha: f64, a: &mut [f64]) {
    for x in a {
        *x *= alpha;
    }
}

/// `a - b` as a new vector.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 41.0]);
    }

    #[test]
    fn scale_and_sub() {
        let mut a = vec![1.0, -2.0];
        scale(-3.0, &mut a);
        assert_eq!(a, vec![-3.0, 6.0]);
        assert_eq!(sub(&[5.0, 5.0], &[2.0, 7.0]), vec![3.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
