use crate::vector::{axpy, dot, norm2};
use crate::{CsrMatrix, LinalgError};

/// Preconditioner choice for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preconditioner {
    /// No preconditioning.
    #[default]
    None,
    /// Jacobi (diagonal) preconditioning — effective for Laplacians of
    /// graphs with heterogeneous degrees.
    Jacobi,
}

/// Options for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Stop once `‖r‖₂ <= tolerance * ‖b‖₂`.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Preconditioner.
    pub preconditioner: Preconditioner,
}

impl Default for CgOptions {
    fn default() -> CgOptions {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: 10_000,
            preconditioner: Preconditioner::Jacobi,
        }
    }
}

/// Outcome of a successful CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final **true** residual `‖b − A x‖₂` (recomputed from `x`, not
    /// the recurrence value, which drifts as rounding accumulates).
    pub residual: f64,
}

/// Solves `A x = b` for symmetric positive-definite `A` by (preconditioned)
/// conjugate gradient.
///
/// The grounded Laplacian `D_t − A_t` of a connected graph is SPD, so this
/// gives a sparse `O(m · √κ)`-ish alternative to the dense LU path of the
/// exact RWBC solver (design decision D4 in `DESIGN.md`).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `A` is not square or `b` has the
///   wrong length;
/// * [`LinalgError::NoConvergence`] if the tolerance is not reached within
///   `max_iterations`;
/// * [`LinalgError::InvalidParameter`] if Jacobi preconditioning is asked
///   for but some diagonal entry is not strictly positive.
///
/// # Example
///
/// ```
/// use rwbc_linalg::{conjugate_gradient, CgOptions, CsrMatrix};
///
/// # fn main() -> Result<(), rwbc_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)])?;
/// let r = conjugate_gradient(&a, &[1.0, 0.0], &CgOptions::default())?;
/// assert!((r.x[0] - 2.0 / 3.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    options: &CgOptions,
) -> Result<CgResult, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "conjugate gradient".into(),
            left: (a.rows(), a.cols()),
            right: (a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "conjugate gradient".into(),
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    let inv_diag: Option<Vec<f64>> = match options.preconditioner {
        Preconditioner::None => None,
        Preconditioner::Jacobi => {
            let d = a.diagonal();
            if d.iter().any(|&x| x <= 0.0) {
                return Err(LinalgError::InvalidParameter {
                    reason: "jacobi preconditioner requires strictly positive diagonal".into(),
                });
            }
            Some(d.into_iter().map(|x| 1.0 / x).collect())
        }
    };
    let apply_m = |r: &[f64]| -> Vec<f64> {
        match &inv_diag {
            None => r.to_vec(),
            Some(inv) => r.iter().zip(inv).map(|(x, w)| x * w).collect(),
        }
    };

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(CgResult {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }
    let target = options.tolerance * b_norm;

    // The true residual b − A x, recomputed from scratch. The recurrence
    // residual inside the loop drifts away from this as rounding
    // accumulates, so convergence is only *accepted* against this value
    // and it is what `CgResult::residual` reports.
    let true_residual = |x: &[f64]| -> Result<Vec<f64>, LinalgError> {
        let ax = a.matvec(x)?;
        Ok(b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect())
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = apply_m(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);

    for iter in 0..options.max_iterations {
        let res = norm2(&r);
        if res <= target {
            // The recurrence thinks we converged; trust but verify.
            let tr = true_residual(&x)?;
            let true_res = norm2(&tr);
            if true_res <= target {
                return Ok(CgResult {
                    x,
                    iterations: iter,
                    residual: true_res,
                });
            }
            // Drift: restart the recurrence from the true residual and
            // keep iterating toward the real target.
            r = tr;
            z = apply_m(&r);
            p = z.clone();
            rz = dot(&r, &z);
        }
        let ap = a.matvec(&p)?;
        let pap = dot(&p, &ap);
        if !pap.is_finite() || pap <= 0.0 {
            // Breakdown: the matrix is not positive definite along p
            // (zero/negative curvature, e.g. an ungrounded Laplacian's
            // null space) or the iteration produced a non-finite value.
            // Bail out before alpha = rz/pap poisons x.
            return Err(LinalgError::NoConvergence {
                iterations: iter,
                residual: res,
            });
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        z = apply_m(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    let tr = true_residual(&x)?;
    let res = norm2(&tr);
    if res <= target {
        Ok(CgResult {
            x,
            iterations: options.max_iterations,
            residual: res,
        })
    } else {
        Err(LinalgError::NoConvergence {
            iterations: options.max_iterations,
            residual: res,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LuDecomposition, Matrix};

    fn spd_example() -> CsrMatrix {
        // Grounded Laplacian of a path 0-1-2-3 with node 3 removed.
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn cg_matches_lu() {
        let a = spd_example();
        let b = vec![1.0, 2.0, 3.0];
        let cg = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        let lu = LuDecomposition::new(&a.to_dense()).unwrap();
        let direct = lu.solve(&b).unwrap();
        for (x, y) in cg.x.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn cg_without_preconditioner() {
        let a = spd_example();
        let opts = CgOptions {
            preconditioner: Preconditioner::None,
            ..CgOptions::default()
        };
        let r = conjugate_gradient(&a, &[1.0, 0.0, 0.0], &opts).unwrap();
        assert!(r.residual <= 1e-9);
    }

    #[test]
    fn cg_exact_in_n_iterations() {
        // CG on an SPD n x n system converges in at most n iterations
        // (exact arithmetic); allow a little slack for floating point.
        let a = spd_example();
        let r = conjugate_gradient(&a, &[0.5, -1.0, 2.0], &CgOptions::default()).unwrap();
        assert!(r.iterations <= 4, "took {} iterations", r.iterations);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spd_example();
        let r = conjugate_gradient(&a, &[0.0, 0.0, 0.0], &CgOptions::default()).unwrap();
        assert_eq!(r.x, vec![0.0; 3]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = spd_example();
        assert!(conjugate_gradient(&a, &[1.0], &CgOptions::default()).is_err());
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(conjugate_gradient(&rect, &[1.0, 1.0, 1.0], &CgOptions::default()).is_err());
    }

    #[test]
    fn jacobi_requires_positive_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let err = conjugate_gradient(&a, &[1.0, 1.0], &CgOptions::default()).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidParameter { .. }));
    }

    #[test]
    fn no_convergence_reported() {
        let a = spd_example();
        let opts = CgOptions {
            tolerance: 1e-14,
            max_iterations: 1,
            preconditioner: Preconditioner::None,
        };
        let err = conjugate_gradient(&a, &[1.0, 2.0, 3.0], &opts).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NoConvergence { iterations: 1, .. }
        ));
    }

    #[test]
    fn semi_definite_ungrounded_laplacian_breaks_down() {
        // The *ungrounded* Laplacian of the path 0-1 is only positive
        // SEMI-definite: its null space is spanned by the all-ones
        // vector. Driving CG with b in that null-space direction makes
        // p'Ap hit exactly zero on the first step; the guard must turn
        // that into a typed error instead of x = 0/0 everywhere.
        let a = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.0)],
        )
        .unwrap();
        let opts = CgOptions {
            preconditioner: Preconditioner::None,
            ..CgOptions::default()
        };
        let err = conjugate_gradient(&a, &[1.0, 1.0], &opts).unwrap_err();
        assert!(
            matches!(err, LinalgError::NoConvergence { iterations: 0, .. }),
            "expected first-iteration breakdown, got {err:?}"
        );
    }

    #[test]
    fn non_finite_curvature_breaks_down() {
        // Entries near f64::MAX make p'Ap overflow to +inf (and further
        // arithmetic would turn x into NaN soup). The old `pap <= 0`
        // guard waved non-finite values through, since NaN/inf
        // comparisons are false; the guard must catch them.
        let a = CsrMatrix::from_triplets(
            2,
            2,
            &[
                (0, 0, f64::MAX),
                (0, 1, f64::MAX),
                (1, 0, f64::MAX),
                (1, 1, f64::MAX),
            ],
        )
        .unwrap();
        let opts = CgOptions {
            preconditioner: Preconditioner::None,
            ..CgOptions::default()
        };
        let err = conjugate_gradient(&a, &[1.0, 1.0], &opts).unwrap_err();
        assert!(matches!(err, LinalgError::NoConvergence { .. }));
    }

    #[test]
    fn reported_residual_is_the_true_residual() {
        let a = spd_example();
        let b = vec![1.0, 2.0, 3.0];
        let result = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        let ax = a.matvec(&result.x).unwrap();
        let true_res = norm2(
            &b.iter()
                .zip(&ax)
                .map(|(bi, axi)| bi - axi)
                .collect::<Vec<_>>(),
        );
        assert!(
            (result.residual - true_res).abs() <= 1e-15 + 1e-12 * true_res,
            "reported {} vs recomputed {}",
            result.residual,
            true_res
        );
        assert!(true_res <= CgOptions::default().tolerance * norm2(&b));
    }

    #[test]
    fn indefinite_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).unwrap();
        let s = CsrMatrix::from_dense(&a);
        let opts = CgOptions {
            preconditioner: Preconditioner::None,
            ..CgOptions::default()
        };
        let err = conjugate_gradient(&s, &[0.0, 1.0], &opts).unwrap_err();
        assert!(matches!(err, LinalgError::NoConvergence { .. }));
    }
}
