//! Linear-algebra substrate for the RWBC reproduction.
//!
//! Newman's matrix expressions for random-walk betweenness (Section IV of
//! the paper) require inverting the *grounded Laplacian* `D_t − A_t`
//! (Eq. 3) and reasoning about powers of the absorbing transition matrix
//! `M_t` (Theorem 1). This crate implements, from scratch:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the operations the
//!   exact solver needs (products, 1-norm of Theorem 1, etc.);
//! * [`LuDecomposition`] — LU factorization with partial pivoting, the
//!   workhorse behind `(D_t − A_t)^{-1}`;
//! * [`CsrMatrix`] — compressed sparse row matrices for large systems;
//! * [`conjugate_gradient`] — (Jacobi-preconditioned) CG, exploiting that
//!   the grounded Laplacian is symmetric positive definite on connected
//!   graphs;
//! * [`power_iteration`] — dominant-eigenvalue estimation, used to predict
//!   the walk-survival decay rate `ρ(M_t)^l` that Theorem 1 bounds.
//!
//! # Example
//!
//! ```
//! use rwbc_linalg::{LuDecomposition, Matrix};
//!
//! # fn main() -> Result<(), rwbc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod cholesky;
mod dense;
mod error;
mod lu;
mod power;
mod sparse;

pub mod vector;

pub use cg::{conjugate_gradient, CgOptions, CgResult, Preconditioner};
pub use cholesky::CholeskyDecomposition;
pub use dense::Matrix;
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use power::{power_iteration, PowerOptions, PowerResult};
pub use sparse::CsrMatrix;
